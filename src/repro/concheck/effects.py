"""Interprocedural effect inference over the worker-reachable universe.

Every function the orchestrator can reach is classified onto a small
effect lattice::

    pure  <  deterministic  <  io  <  global-mutating

* ``pure`` — no observable effects, and every resolvable callee is
  pure.  Calls into unindexed code (numpy, stdlib math) demote to
  ``deterministic``, never below: external code is *assumed*
  deterministic-given-inputs, which is the contract numpy keeps.
* ``deterministic`` — may allocate, loop, call external numeric code;
  result depends only on the arguments.
* ``io`` — reads environment-dependent state: wall clock, environment
  variables, hostname.  Advisory in workers (REPRO603) because the
  result can differ between serial and parallel runs even when the
  maths agree — e.g. wall-clock timing fields.
* ``global-mutating`` — writes process-global state: ``global`` names,
  module attributes, class attributes, ``os.environ``.  Blocking in
  workers (REPRO601): a fork worker mutates its *copy*, the parent
  never sees it, and serial/parallel runs diverge.

The fixpoint propagates levels up the call graph, so a pure-looking
job that calls a helper that calls ``time.time()`` is still ``io``.
Violations are reported at the local hazard site with the worker
root chain and the escape set (which globals leak) in the message.

Scoped save/restore is exempt from REPRO601: ``__enter__``/``__exit__``
pairs (the ``no_grad`` pattern) and writes inside a ``finally:`` block
that restore a value saved in the matching ``try:`` body — mutation
that provably unwinds is not an escape.

REPRO602 (blocking) is the sibling hazard: mutable default arguments
and ``nonlocal`` accumulation give a function call-to-call memory that
each worker process evolves independently.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.rules import LintDiagnostic

from .callgraph import CallGraph
from .index import FunctionInfo, PackageIndex

__all__ = ["EFFECT_LATTICE", "infer_effects"]

EFFECT_LATTICE = ("pure", "deterministic", "io", "global-mutating")
_RANK = {level: i for i, level in enumerate(EFFECT_LATTICE)}

# Callables whose results depend on ambient process/host state.
_ENV_TIME_CALLS = {
    "time.time": "wall clock",
    "time.perf_counter": "wall clock",
    "time.monotonic": "wall clock",
    "time.process_time": "process clock",
    "time.time_ns": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "time.monotonic_ns": "wall clock",
    "datetime.now": "wall clock",
    "datetime.utcnow": "wall clock",
    "datetime.today": "wall clock",
    "date.today": "wall clock",
    "os.getenv": "environment variable",
    "os.environ.get": "environment variable",
    "getenv": "environment variable",
    "socket.gethostname": "hostname",
    "platform.node": "hostname",
    "os.getpid": "process id",
    "os.cpu_count": "host cpu count",
}

# Builtins that keep a function pure.
_PURE_BUILTINS = frozenset({
    "abs", "min", "max", "sum", "len", "round", "range", "enumerate",
    "zip", "map", "filter", "sorted", "reversed", "list", "tuple", "dict",
    "set", "frozenset", "str", "int", "float", "bool", "bytes", "repr",
    "isinstance", "issubclass", "getattr", "hasattr", "setattr", "iter",
    "next", "divmod", "pow", "any", "all", "id", "hash", "format", "type",
    "ValueError", "TypeError", "KeyError", "RuntimeError", "IndexError",
    "AttributeError", "NotImplementedError", "OSError", "StopIteration",
    "super", "print", "vars", "slice", "object", "Exception",
})

_MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                                    "OrderedDict", "Counter", "deque"})


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class _LocalEffects:
    """What one function body does, before callee propagation."""

    level: str = "pure"
    escapes: list[str] = field(default_factory=list)
    # (node, code, message) hazards to report if worker-reachable
    hazards: list[tuple[ast.AST, str, str]] = field(default_factory=list)

    def raise_to(self, level: str) -> None:
        if _RANK[level] > _RANK[self.level]:
            self.level = level


def _finally_restored_targets(fn_node: ast.AST) -> set[str]:
    """Targets written inside any ``finally:`` block of the function.

    A write in a ``finally`` is the unwind half of a save/restore pair;
    the matching save-side write in the ``try`` body is exempt too, so
    the whole *target* is treated as scoped within this function.
    """
    restored: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AugAssign)):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for tgt in targets:
                            name = _dotted(tgt) or getattr(tgt, "id", "")
                            if name:
                                restored.add(name)
    return restored


def _is_scoped_ctx_method(fn: FunctionInfo, index: PackageIndex) -> bool:
    """``__enter__``/``__exit__`` of a context manager: save/restore."""
    if fn.cls is None or fn.name not in ("__enter__", "__exit__"):
        return False
    module = index.modules.get(fn.module)
    if module is None:
        return False
    methods = module.classes.get(fn.cls, {})
    return "__enter__" in methods and "__exit__" in methods


def _local_effects(fn: FunctionInfo, index: PackageIndex) -> _LocalEffects:
    out = _LocalEffects()
    module = index.modules.get(fn.module)
    scoped_ctx = _is_scoped_ctx_method(fn, index)
    restored = _finally_restored_targets(fn.node)

    global_names: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)

    # -- REPRO602: call-to-call memory ---------------------------------------
    args_node = fn.node.args
    defaults = list(args_node.defaults) + [
        d for d in args_node.kw_defaults if d is not None
    ]
    for default in defaults:
        mutable = isinstance(
            default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                      ast.DictComp, ast.SetComp)
        )
        if isinstance(default, ast.Call):
            callee = _dotted(default.func)
            mutable = mutable or callee.rsplit(".", 1)[-1] in _MUTABLE_DEFAULT_CALLS
        if mutable:
            out.hazards.append((
                default,
                "REPRO602",
                f"mutable default argument in {fn.qualname} gives the "
                "function call-to-call memory that diverges per worker "
                "process; default to None and allocate inside the body",
            ))

    for node in ast.walk(fn.node):
        # -- REPRO601: process-global writes ---------------------------------
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for tgt in targets:
                escape = _escape_target(tgt, fn, index, module, global_names)
                if escape is None:
                    continue
                name = _dotted(tgt) or getattr(tgt, "id", "?")
                if scoped_ctx or name in restored:
                    continue  # save/restore pair: provably unwound
                out.raise_to("global-mutating")
                out.escapes.append(escape)
                out.hazards.append((
                    node,
                    "REPRO601",
                    f"{fn.qualname} mutates process-global state "
                    f"({escape}); a fork worker mutates its own copy and "
                    "serial/parallel runs diverge — thread the value "
                    "through arguments/results instead",
                ))
        elif isinstance(node, ast.Call):
            callee = _dotted(node.func)
            tail2 = ".".join(callee.split(".")[-2:])
            if callee in _ENV_TIME_CALLS or tail2 in _ENV_TIME_CALLS:
                what = _ENV_TIME_CALLS.get(callee) or _ENV_TIME_CALLS[tail2]
                out.raise_to("io")
                out.hazards.append((
                    node,
                    "REPRO603",
                    f"{fn.qualname} reads the {what} via {callee}(); the "
                    "value differs between serial and parallel runs — keep "
                    "it out of result payloads that parity compares",
                ))
            elif callee.startswith("os.environ") or callee in (
                "os.putenv", "os.unsetenv"
            ):
                out.raise_to("global-mutating")
                out.escapes.append("os.environ")
                out.hazards.append((
                    node,
                    "REPRO601",
                    f"{fn.qualname} mutates os.environ; environment writes "
                    "in a fork worker never reach the parent or siblings",
                ))
            elif callee and "." not in callee and callee not in _PURE_BUILTINS:
                resolved = index.resolve(fn.module, callee)
                if resolved is None:
                    out.raise_to("deterministic")
            elif "." in callee:
                head = callee.split(".")[0]
                resolved = index.resolve(fn.module, head)
                external = resolved is None or (
                    resolved[0] == "module"
                    and resolved[1] not in index.modules
                )
                if external and head != "self":
                    out.raise_to("deterministic")
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            target = _dotted(node.value)
            if target in ("os.environ", "environ"):
                out.raise_to("global-mutating")
                out.escapes.append("os.environ")
                out.hazards.append((
                    node,
                    "REPRO601",
                    f"{fn.qualname} assigns into os.environ; environment "
                    "writes in a fork worker never reach the parent",
                ))
    return out


def _escape_target(
    tgt: ast.AST,
    fn: FunctionInfo,
    index: PackageIndex,
    module,
    global_names: set[str],
) -> str | None:
    """Describe the escaping location if ``tgt`` is process-global."""
    if isinstance(tgt, ast.Name) and tgt.id in global_names:
        return f"module global {fn.module}.{tgt.id}"
    if not isinstance(tgt, ast.Attribute):
        return None
    base = tgt.value
    if isinstance(base, ast.Name):
        if base.id == "self" or base.id == "cls" and fn.cls is None:
            return None
        if base.id == "cls" and fn.cls is not None:
            return f"class attribute {fn.module}:{fn.cls}.{tgt.attr}"
        resolved = index.resolve(fn.module, base.id)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "class":
            return f"class attribute {target}.{tgt.attr}"
        if kind == "module":
            return f"module attribute {target}.{tgt.attr}"
        return None
    dotted = _dotted(base)
    if dotted and module is not None:
        head = dotted.split(".")[0]
        resolved = index.resolve(fn.module, head)
        if resolved is not None and resolved[0] == "module":
            return f"module attribute {dotted}.{tgt.attr}"
    return None


def infer_effects(index: PackageIndex, graph: CallGraph) -> dict:
    """Fixpoint effect classification + REPRO601-603 findings.

    Returns ``{"effects", "escapes", "findings", "summary"}`` where
    ``effects`` maps every worker-reachable qualname to its lattice
    level and ``escapes`` lists the global locations it (transitively)
    writes.
    """
    local: dict[str, _LocalEffects] = {}
    for qualname in graph.reachable:
        fn = index.functions.get(qualname)
        if fn is not None:
            local[qualname] = _local_effects(fn, index)

    effects = {q: eff.level for q, eff in local.items()}
    escapes = {q: list(eff.escapes) for q, eff in local.items()}
    changed = True
    while changed:
        changed = False
        for qualname in local:
            level = effects[qualname]
            merged = set(escapes[qualname])
            for callee in graph.callees(qualname):
                if callee not in effects:
                    continue
                if _RANK[effects[callee]] > _RANK[level]:
                    level = effects[callee]
                before = len(merged)
                merged.update(escapes[callee])
                if len(merged) != before:
                    changed = True
            if level != effects[qualname]:
                effects[qualname] = level
                changed = True
            escapes[qualname] = sorted(merged)

    findings: list[LintDiagnostic] = []
    for qualname, eff in sorted(local.items()):
        fn = index.functions[qualname]
        module = index.modules.get(fn.module)
        chain = " -> ".join(graph.chain(qualname))
        for node, code, message in eff.hazards:
            line = getattr(node, "lineno", fn.lineno)
            if module is not None and module.suppressed(line, code):
                continue
            trail = sorted(set(escapes[qualname])) if code == "REPRO601" else []
            suffix = f" [escapes: {', '.join(trail)}]" if trail else ""
            findings.append(
                LintDiagnostic(
                    fn.path,
                    line,
                    getattr(node, "col_offset", 0),
                    code,
                    f"{message}{suffix} [worker-reachable via {chain}]",
                )
            )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))

    summary = {level: 0 for level in EFFECT_LATTICE}
    for level in effects.values():
        summary[level] += 1
    return {
        "effects": effects,
        "escapes": {q: e for q, e in escapes.items() if e},
        "findings": findings,
        "summary": summary,
    }
