"""Whole-package AST index: modules, functions, classes, imports.

The analyzer never imports the code it certifies — a module whose
import has side effects (exactly what REPRO609 exists to catch) must
not get to run them inside the checker.  Everything downstream (call
graph, effect inference, durability lint) therefore works off this
parsed index of the package source tree.

Qualified names follow the dotted-reference convention the orchestrator
resolves at dispatch (:func:`repro.orchestrate.worker.resolve_callable`):
``"package.module:fn"`` for module-level functions and
``"package.module:Class.method"`` for methods, so an indexed name *is*
a valid ``JobSpec.fn`` string and vice versa.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.rules import _noqa_lines

__all__ = ["FunctionInfo", "ModuleInfo", "PackageIndex", "build_index"]


@dataclass
class FunctionInfo:
    """One analyzable unit: a module-level function or a method.

    Nested ``def``\\ s and lambdas are *not* separate units — their
    bodies belong to the enclosing unit, which is the conservative
    reading for reachability (defining a closure in reachable code
    means it may run there).
    """

    qualname: str  # "pkg.mod:fn" or "pkg.mod:Class.fn"
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    decorators: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Parsed facts about one module file."""

    name: str  # dotted module name
    path: str
    tree: ast.Module
    noqa: dict[int, set[str] | None]
    # import alias -> dotted module ("np" -> "numpy", "journal" -> ...)
    imports: dict[str, str] = field(default_factory=dict)
    # local name -> (dotted module, attr) from ``from X import Y [as Z]``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    # class name -> method name -> FunctionInfo
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    # module-level simple assignments: name -> value expression
    assigns: dict[str, ast.expr] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        """True when ``# noqa`` / ``# noqa: CODE`` silences this line."""
        codes = self.noqa.get(line, ())
        return codes is None or (bool(codes) and code in codes)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = []
        while isinstance(target, ast.Attribute):
            parts.append(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            parts.append(target.id)
        names.append(".".join(reversed(parts)))
    return tuple(names)


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Resolve ``from ..x import y`` against the importing module."""
    # The package of a module file is the module minus its last part;
    # level 1 = that package, each extra level strips one more.
    parts = module.split(".")
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _index_module(name: str, path: Path, is_package: bool) -> ModuleInfo | None:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    info = ModuleInfo(name=name, path=str(path), tree=tree, noqa=_noqa_lines(source))
    # Relative imports resolve against the *package* for __init__ files
    # and against the containing package for plain modules; encode that
    # by resolving levels against a synthetic child for packages.
    anchor = name + "._" if is_package else name

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                info.imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname is None:
                    # ``import a.b`` binds ``a``; remember the full path
                    # too so dotted attribute chains can resolve.
                    info.imports.setdefault(alias.name, alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = (
                _resolve_relative(anchor, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.from_imports[bound] = (target, alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                qualname=f"{name}:{node.name}",
                module=name,
                name=node.name,
                cls=None,
                node=node,
                path=str(path),
                lineno=node.lineno,
                decorators=_decorator_names(node),
            )
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, FunctionInfo] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = FunctionInfo(
                        qualname=f"{name}:{node.name}.{item.name}",
                        module=name,
                        name=item.name,
                        cls=node.name,
                        node=item,
                        path=str(path),
                        lineno=item.lineno,
                        decorators=_decorator_names(item),
                    )
            info.classes[node.name] = methods
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    info.assigns[tgt.id] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                info.assigns[node.target.id] = node.value
    return info


@dataclass
class PackageIndex:
    """Every module of one package tree, parsed and cross-linked."""

    package: str
    root: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    # method bare name -> qualnames across every indexed class (for the
    # bounded class-hierarchy fallback in the call graph)
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)

    def module_of(self, dotted: str) -> ModuleInfo | None:
        return self.modules.get(dotted)

    def resolve(
        self, module: str, name: str, _seen: frozenset = frozenset()
    ) -> tuple[str, str] | None:
        """Resolve ``name`` as seen from ``module``.

        Chases ``from X import Y`` re-export chains across the index
        (the ``__init__`` barrel-module pattern) and returns one of
        ``("func", qualname)``, ``("class", "module:Class")`` or
        ``("module", dotted)`` — or ``None`` for anything external.
        """
        key = (module, name)
        if key in _seen:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return ("func", info.functions[name].qualname)
        if name in info.classes:
            return ("class", f"{module}:{name}")
        if name in info.from_imports:
            target_mod, attr = info.from_imports[name]
            if target_mod in self.modules:
                resolved = self.resolve(target_mod, attr, _seen | {key})
                if resolved is not None:
                    return resolved
            # ``from . import submodule`` / ``from pkg import submodule``
            if f"{target_mod}.{attr}" in self.modules:
                return ("module", f"{target_mod}.{attr}")
            return None
        if name in info.imports:
            return ("module", info.imports[name])
        return None

    def resolve_dotted_ref(self, ref: str) -> FunctionInfo | None:
        """Resolve a ``"module:attr.path"`` job reference, if indexed.

        Mirrors :func:`repro.orchestrate.worker.resolve_callable` but
        over the static index: returns the target function when the
        module is part of this package and the attribute path lands on
        a module-level function or a method of a module-level class.
        """
        module_path, _, attr_path = ref.partition(":")
        info = self.modules.get(module_path)
        if info is None or not attr_path:
            return None
        parts = attr_path.split(".")
        if len(parts) == 1:
            return info.functions.get(parts[0])
        if len(parts) == 2 and parts[0] in info.classes:
            return info.classes[parts[0]].get(parts[1])
        return None


def build_index(root: str | Path, package: str | None = None) -> PackageIndex:
    """Parse every ``*.py`` under ``root`` into a :class:`PackageIndex`.

    ``package`` is the dotted prefix of the tree (defaults to the root
    directory's name, which is correct for ``src/repro``-style layouts).
    """
    root = Path(root).resolve()
    package = package or root.name
    index = PackageIndex(package=package, root=str(root))
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = list(rel.parts)
        is_package = parts[-1] == "__init__.py"
        if is_package:
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        dotted = ".".join([package] + parts)
        info = _index_module(dotted, path, is_package)
        if info is None:
            continue
        index.modules[dotted] = info
        for fn in info.functions.values():
            index.functions[fn.qualname] = fn
        for methods in info.classes.values():
            for fn in methods.values():
                index.functions[fn.qualname] = fn
                index.methods_by_name.setdefault(fn.name, []).append(fn.qualname)
    return index
