"""Call graph + worker-reachable universe, re-derived from source.

Like :mod:`repro.schedule.verify`, this is translation validation: the
analyzer does **not** ask the runtime which functions are jobs — it
re-derives the worker-entry universe from scratch by scanning every
module for

* ``JobSpec(...)`` construction sites (the ``fn=`` dotted reference,
  following a simple name to its module-level string constant), and
* any string literal of the ``"package.module:attr"`` shape that
  resolves to an indexed function (this is how ``team_source``
  factories and ad-hoc dotted refs enter workers).

From those roots it computes the transitive closure over a
conservatively over-approximated call graph:

* direct calls through local defs, imports and ``from``-import
  re-export chains (the ``__init__`` barrel pattern);
* ``self.method()`` within a class;
* constructor calls (edge to ``__init__``) plus flow-insensitive local
  type inference (``x = Cls(...); x.m()`` resolves to ``Cls.m``);
* a *bounded class-hierarchy fallback* for method calls on values of
  unknown type: the call resolves to every indexed class that defines
  a method of that name — unless the name collides with a builtin
  collection method, which would drag the whole package in.

Over-approximation is the safe direction for a certifier: an edge too
many can only make the analysis check more code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from .index import FunctionInfo, PackageIndex

__all__ = ["CallGraph", "build_call_graph", "DOTTED_REF_RE"]

DOTTED_REF_RE = re.compile(r"^[A-Za-z_][\w.]*:[A-Za-z_][\w.]*$")

# Method names never resolved through the class-hierarchy fallback:
# they are overwhelmingly builtin-collection calls, and resolving them
# to user classes would connect everything to everything.
_CHA_SKIP = frozenset({
    "append", "extend", "add", "update", "pop", "clear", "remove", "discard",
    "insert", "get", "setdefault", "keys", "values", "items", "copy", "sort",
    "reverse", "count", "index", "join", "split", "rsplit", "strip", "rstrip",
    "lstrip", "startswith", "endswith", "format", "replace", "encode",
    "decode", "lower", "upper", "partition", "rpartition", "splitlines",
    "read", "write", "close", "open", "flush", "readline", "readlines",
    "astype", "reshape", "ravel", "sum", "mean", "max", "min", "tolist",
    "item", "fill", "dot", "transpose", "squeeze", "clip", "round", "all",
    "any", "argmax", "argmin", "cumsum", "flatten", "nonzero", "repeat",
    "std", "var", "take", "view", "tobytes", "putmask", "searchsorted",
})


@dataclass
class CallGraph:
    """Edges, dotted-ref roots and the reachable closure over them."""

    index: PackageIndex
    edges: dict[str, set[str]] = field(default_factory=dict)
    # qualname -> (ref string, path, line) for every dotted-ref root
    roots: dict[str, tuple[str, str, int]] = field(default_factory=dict)
    # dotted refs that point into the package but do NOT resolve —
    # fuel for REPRO608 (a worker would crash or worse at dispatch)
    unresolved_refs: list[tuple[str, str, int, str]] = field(default_factory=list)
    # JobSpec(...) construction sites: (path, line, call node, module)
    jobspec_sites: list[tuple[str, int, ast.Call, str]] = field(default_factory=list)
    reachable: dict[str, str | None] = field(default_factory=dict)  # fn -> caller

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def chain(self, qualname: str, limit: int = 6) -> list[str]:
        """Call path from a worker root to ``qualname`` (root first)."""
        path = [qualname]
        seen = {qualname}
        while path[0] in self.reachable:
            parent = self.reachable[path[0]]
            if parent is None or parent in seen:
                break
            path.insert(0, parent)
            seen.add(parent)
        if len(path) > limit:
            path = path[:2] + ["..."] + path[-(limit - 3):]
        return path

    def worker_modules(self) -> set[str]:
        """Modules a worker imports: every module owning reachable code."""
        return {
            self.index.functions[q].module
            for q in self.reachable
            if q in self.index.functions
        }


def _dotted_parts(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class _FunctionScanner:
    """Extract call edges from one function body."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.index = graph.index
        self.fn = fn
        self.var_types: dict[str, str] = {}  # local var -> "module:Class"

    def _add_edge(self, target_qualname: str) -> None:
        self.graph.edges.setdefault(self.fn.qualname, set()).add(target_qualname)

    def _class_methods(self, class_key: str) -> dict[str, FunctionInfo]:
        module, _, cls = class_key.partition(":")
        info = self.index.modules.get(module)
        if info is None:
            return {}
        return info.classes.get(cls, {})

    def _edge_to_class(self, class_key: str) -> None:
        methods = self._class_methods(class_key)
        for name in ("__init__", "__post_init__"):
            if name in methods:
                self._add_edge(methods[name].qualname)

    def _resolve_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.index.resolve(self.fn.module, func.id)
            if resolved is None:
                return
            kind, target = resolved
            if kind == "func":
                self._add_edge(target)
            elif kind == "class":
                self._edge_to_class(target)
            return
        if not isinstance(func, ast.Attribute):
            return
        parts = _dotted_parts(func)
        if not parts:
            # ``Cls(...).m()`` — resolve through the constructor's class;
            # only an unknown receiver falls back to hierarchy resolution.
            if isinstance(func.value, ast.Call):
                cls_key = self._call_class(func.value)
                if cls_key is not None:
                    methods = self._class_methods(cls_key)
                    if func.attr in methods:
                        self._add_edge(methods[func.attr].qualname)
                        return
            self._cha(func.attr)
            return
        base, attr = parts[0], parts[-1]
        if base == "self" and self.fn.cls is not None:
            own = self._class_methods(f"{self.fn.module}:{self.fn.cls}")
            if attr in own:
                self._add_edge(own[attr].qualname)
            else:
                self._cha(attr)
            return
        if base in self.var_types:
            methods = self._class_methods(self.var_types[base])
            if attr in methods:
                self._add_edge(methods[attr].qualname)
                return
        # Module-attribute chains: ``pkg.mod.fn(...)`` / ``alias.fn(...)``.
        for split in range(len(parts) - 1, 0, -1):
            prefix = parts[:split]
            resolved = self.index.resolve(self.fn.module, prefix[0])
            if resolved is None or resolved[0] == "func":
                continue
            if resolved[0] == "class" and split == len(parts) - 1:
                methods = self._class_methods(resolved[1])
                if attr in methods:
                    self._add_edge(methods[attr].qualname)
                    return
            if resolved[0] == "module":
                dotted = ".".join([resolved[1]] + prefix[1:])
                target = (
                    self.index.resolve(dotted, parts[split])
                    if split == len(parts) - 1 else None
                )
                if target and target[0] == "func":
                    self._add_edge(target[1])
                    return
                if target and target[0] == "class":
                    self._edge_to_class(target[1])
                    return
        self._cha(attr)

    def _cha(self, method_name: str) -> None:
        """Bounded class-hierarchy fallback for unknown receivers."""
        if method_name in _CHA_SKIP or method_name.startswith("__"):
            return
        for qualname in self.graph.index.methods_by_name.get(method_name, ()):
            self._add_edge(qualname)

    def scan(self) -> None:
        # First pass: flow-insensitive local constructor types.
        for node in ast.walk(self.fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                target_cls = self._call_class(node.value)
                if target_cls is not None:
                    self.var_types[node.targets[0].id] = target_cls
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                self._resolve_call(node)

    def _call_class(self, call: ast.Call) -> str | None:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        resolved = self.index.resolve(self.fn.module, name)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None


def _literal_ref(call: ast.Call, module, index: PackageIndex) -> tuple[str | None, ast.AST]:
    """The ``fn=`` dotted reference of a JobSpec call, if recoverable."""
    node: ast.AST | None = None
    if len(call.args) >= 2:
        node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "fn":
            node = kw.value
    if node is None:
        return None, call
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node
    if isinstance(node, ast.Name):
        # Follow a module-level string constant (DEFAULT_TEAM_SOURCE).
        value = module.assigns.get(node.id)
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value, node
    return None, node


def build_call_graph(index: PackageIndex) -> CallGraph:
    """Scan every indexed function, discover roots, close reachability."""
    graph = CallGraph(index=index)
    for fn in index.functions.values():
        _FunctionScanner(graph, fn).scan()

    package_prefix = index.package + "."
    for module in index.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                callee = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else ""
                )
                if callee == "JobSpec":
                    graph.jobspec_sites.append(
                        (module.path, node.lineno, node, module.name)
                    )
                    ref, ref_node = _literal_ref(node, module, index)
                    if ref is not None:
                        _register_ref(graph, ref, module.path, ref_node)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if DOTTED_REF_RE.match(node.value):
                    _register_ref(graph, node.value, module.path, node)

    # Transitive closure, tracking one witness caller per function so
    # findings can print a root -> ... -> hazard chain.
    frontier = list(graph.roots)
    for qualname in frontier:
        graph.reachable.setdefault(qualname, None)
    while frontier:
        current = frontier.pop()
        for callee in sorted(graph.edges.get(current, ())):
            if callee not in graph.reachable:
                graph.reachable[callee] = current
                frontier.append(callee)
    return graph


def _register_ref(graph: CallGraph, ref: str, path: str, node: ast.AST) -> None:
    index = graph.index
    module_path = ref.partition(":")[0]
    in_package = module_path == index.package or module_path.startswith(
        index.package + "."
    )
    if not in_package:
        return  # external refs are not certifiable (or not ours)
    target = index.resolve_dotted_ref(ref)
    line = getattr(node, "lineno", 0)
    if target is None:
        graph.unresolved_refs.append(
            (ref, path, line, "does not resolve to a module-level callable")
        )
        return
    graph.roots.setdefault(target.qualname, (ref, path, line))
