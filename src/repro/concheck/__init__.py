"""Static concurrency-safety & cross-process determinism analyzer.

:mod:`repro.orchestrate` promises that a parallel run is bitwise
identical to the serial reference and that a SIGKILL at any instant
loses no committed state.  Both guarantees rest on conventions in the
*job code* — no process-global mutation in fork workers, no global RNG,
picklable payloads, atomic durable writes — that nothing enforced until
now.  ``repro.concheck`` proves them statically, the same way
:mod:`repro.schedule.verify` proves plan legality: it re-derives the
worker-reachable universe from scratch (scanning every dotted
``"module:attr"`` job reference and ``JobSpec`` site in the source, not
trusting the runtime's registry), builds a whole-program call graph,
and runs four pass families over it:

* **effect inference** (:mod:`.effects`) — an interprocedural fixpoint
  classifying every worker-reachable function as ``pure`` /
  ``deterministic`` / ``io`` / ``global-mutating``, reporting the
  escape set per violation (REPRO601-603);
* **RNG & ordering discipline** (:mod:`.rng`) — global/legacy RNG,
  non-``SeedSequence`` generators and unordered iteration anywhere in
  worker-reachable code: REPRO104/105 extended from intra-procedural
  to call-graph-deep (REPRO604-606);
* **fork/pickle safety** (:mod:`.forksafety`) — unpicklable job
  payloads, dotted refs that cannot resolve in a fresh worker,
  import-time side effects in worker modules and fork-inherited
  resources (REPRO607-610);
* **durability lint** (:mod:`.durability`) — durable-path writes that
  skip the temp-file + fsync + rename idiom the journal's
  crash-recovery proof depends on (REPRO611-612).

Every finding uses the shared diagnostic format, honours
``# noqa: REPROxxx`` and reports through the central
:mod:`repro.diagnostics` registry.  CLI: ``repro concheck``; baseline:
``benchmarks/concheck_baseline.json``; docs: ``docs/CONCURRENCY.md``.
"""

from repro.diagnostics import codes_for

from .callgraph import CallGraph, build_call_graph
from .durability import check_durability
from .effects import EFFECT_LATTICE, infer_effects
from .forksafety import check_fork_safety
from .index import FunctionInfo, ModuleInfo, PackageIndex, build_index
from .report import (
    SCHEMA,
    baseline_from_concheck,
    check_concheck_baseline,
    concheck,
)
from .rng import check_rng_discipline

CONCHECK_RULES = codes_for("concheck")

__all__ = [
    "SCHEMA",
    "CONCHECK_RULES",
    "EFFECT_LATTICE",
    "PackageIndex",
    "ModuleInfo",
    "FunctionInfo",
    "CallGraph",
    "build_index",
    "build_call_graph",
    "infer_effects",
    "check_rng_discipline",
    "check_fork_safety",
    "check_durability",
    "concheck",
    "baseline_from_concheck",
    "check_concheck_baseline",
]
