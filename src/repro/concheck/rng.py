"""Call-graph-deep RNG and iteration-order discipline (REPRO604-606).

:mod:`repro.ir.determinism` already flags global RNG and unordered
iteration *within* the training/placement packages (REPRO104/105).
These checks lift the same discipline to the worker-reachable closure:
a helper three calls below a job entry point that touches
``np.random.shuffle`` breaks serial/parallel parity exactly as surely
as the job function itself would, but no intra-file audit of the job's
module can see it.

* ``REPRO604`` (blocking) — legacy/global RNG deep in worker code:
  ``np.random.*`` module-level API, stdlib ``random.*`` globals, and
  ``os.urandom``.  Global RNG state is per-process; fork workers
  inherit one snapshot and then diverge from the serial order.
* ``REPRO605`` (blocking) — a fresh ``default_rng()`` /
  ``SeedSequence()`` with no argument (OS entropy) or an argument that
  is itself entropy/time-derived.  The parity contract requires every
  worker generator to descend from the run's root ``SeedSequence`` by
  spawn index (see ``repro.orchestrate.runtime``); a seed threaded in
  through parameters or config is accepted.
* ``REPRO606`` (blocking) — unordered iteration (sets, ``os.listdir``)
  anywhere in worker-reachable code, where the visit order can differ
  per process and reach reduction results.

Every finding carries the worker-root chain so the reader can see
*why* the function is in the worker universe.
"""

from __future__ import annotations

import ast

from repro.ir.determinism import _LEGACY_NP_RANDOM, _STDLIB_RANDOM
from repro.lint.rules import LintDiagnostic

from .callgraph import CallGraph
from .index import PackageIndex

__all__ = ["check_rng_discipline"]

_ENTROPY_SOURCES = ("urandom", "time", "perf_counter", "monotonic",
                    "getpid", "time_ns", "entropy")


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _entropy_derived(node: ast.AST) -> bool:
    """Seed expressions that smuggle entropy in: ``default_rng(time())``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = _dotted(sub.func)
            tail = name.rsplit(".", 1)[-1]
            if tail in _ENTROPY_SOURCES:
                return True
            if name in ("SeedSequence",) and not sub.args and not sub.keywords:
                return True
    return False


def _order_hazard(node: ast.AST) -> str | None:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        if name.endswith(("os.listdir", "listdir")) and name.count(".") <= 1:
            return "os.listdir(...) (filesystem order)"
        if name.endswith((".union", ".intersection", ".difference",
                          ".symmetric_difference")):
            return f"{name.rsplit('.', 1)[-1]}(...) of sets"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        if _order_hazard(node.left) or _order_hazard(node.right):
            return "a set expression"
    return None


def check_rng_discipline(index: PackageIndex, graph: CallGraph) -> list[LintDiagnostic]:
    """REPRO604-606 over every worker-reachable function."""
    findings: list[LintDiagnostic] = []
    for qualname in sorted(graph.reachable):
        fn = index.functions.get(qualname)
        if fn is None:
            continue
        module = index.modules.get(fn.module)
        chain = " -> ".join(graph.chain(qualname))

        def report(node: ast.AST, code: str, message: str) -> None:
            line = getattr(node, "lineno", fn.lineno)
            if module is not None and module.suppressed(line, code):
                return
            findings.append(
                LintDiagnostic(
                    fn.path,
                    line,
                    getattr(node, "col_offset", 0),
                    code,
                    f"{message} [worker-reachable via {chain}]",
                )
            )

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                tail = name.rsplit(".", 1)[-1]
                if tail in ("default_rng", "SeedSequence"):
                    if not node.args and not node.keywords:
                        report(
                            node,
                            "REPRO605",
                            f"{tail}() with no seed draws from OS entropy "
                            "inside worker-reachable code; derive the seed "
                            "from the run's root SeedSequence (spawn per "
                            "job) so parallel replays are bitwise stable",
                        )
                    elif any(_entropy_derived(a) for a in node.args) or any(
                        kw.value is not None and _entropy_derived(kw.value)
                        for kw in node.keywords
                    ):
                        report(
                            node,
                            "REPRO605",
                            f"{tail}(...) seeded from an entropy/time source "
                            "is still nondeterministic; derive the seed from "
                            "the run's root SeedSequence instead",
                        )
                elif name.startswith(("np.random.", "numpy.random.")):
                    if tail in _LEGACY_NP_RANDOM:
                        report(
                            node,
                            "REPRO604",
                            f"legacy global np.random.{tail}() in worker code "
                            "shares per-process state; fork workers inherit "
                            "one snapshot and diverge from the serial order — "
                            "use the SeedSequence-derived Generator the "
                            "runtime passes to each job",
                        )
                elif name.startswith("random.") and name.split(".")[1] in _STDLIB_RANDOM:
                    report(
                        node,
                        "REPRO604",
                        f"stdlib {name}() in worker code uses the global "
                        "random state; use a SeedSequence-derived "
                        "np.random.default_rng Generator",
                    )
                elif tail == "urandom":
                    report(
                        node,
                        "REPRO604",
                        "os.urandom() in worker code draws OS entropy; no "
                        "two runs (or workers) see the same bytes",
                    )
            hazard = None
            site: ast.AST = node
            if isinstance(node, ast.For):
                hazard = _order_hazard(node.iter)
                site = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                for comp in node.generators:
                    hazard = hazard or _order_hazard(comp.iter)
                    if hazard:
                        site = comp.iter
                        break
            if hazard:
                report(
                    site,
                    "REPRO606",
                    f"iteration over {hazard} in worker-reachable code has "
                    "no defined order; per-process hash randomization can "
                    "reorder it — wrap in sorted(...)",
                )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return findings
