"""Single allocation point for every ``REPROxxx`` diagnostic code.

Five analysis components share one code namespace — the AST lint rules
(:mod:`repro.lint`, ``REPRO0xx``), the forward-IR passes
(:mod:`repro.ir`, ``REPRO1xx``), the adjoint/backward passes
(:mod:`repro.adjoint`, ``REPRO2xx``), the static performance
analyzer (:mod:`repro.perf`, ``REPRO3xx``) and the execution-plan
verifier (:mod:`repro.schedule`, ``REPRO4xx``).  Before this registry each
component kept its own table, which is exactly how two PRs end up
assigning the same code to different rules.  Now every code is declared
here, :func:`register_code` raises on a duplicate assignment, and the
component tables (``repro.lint.rules.RULES``,
``repro.ir.passes.IR_RULES``, ``repro.adjoint.ADJOINT_RULES``,
``repro.perf.PERF_RULES``) are views produced by :func:`codes_for`.

Severity: ``blocking`` findings fail gates (``repro lint`` /
``repro analyze`` / ``repro gradcheck`` exit non-zero,
``build_model(analyze=True)`` raises); non-blocking codes report
*opportunities* and never fail anything.  Every finding, whatever its
component, honours ``# noqa: REPROxxx`` suppression on its source line.

The orchestration runtime (:mod:`repro.orchestrate`, ``REPRO5xx``) is
the one component whose codes label *runtime incidents* rather than
static findings: a blocking 5xx code means the parallel run could not
deliver a complete result (a job was quarantined), a non-blocking one
records a fault the supervisor recovered from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DiagnosticSpec",
    "register_code",
    "codes_for",
    "all_codes",
    "spec_of",
    "is_blocking",
]


@dataclass(frozen=True)
class DiagnosticSpec:
    """One registered rule: its code, summary and severity."""

    code: str
    message: str
    component: str  # "lint" | "ir" | "adjoint" | "perf" | "schedule"
    blocking: bool = True


_REGISTRY: dict[str, DiagnosticSpec] = {}


def register_code(
    code: str, message: str, *, component: str, blocking: bool = True
) -> DiagnosticSpec:
    """Claim ``code`` for ``component``; a second claim is an error."""
    if code in _REGISTRY:
        existing = _REGISTRY[code]
        raise ValueError(
            f"diagnostic code {code} already assigned to "
            f"{existing.component} ({existing.message!r}); "
            f"cannot reassign to {component}"
        )
    spec = DiagnosticSpec(code, message, component, blocking)
    _REGISTRY[code] = spec
    return spec


def codes_for(component: str) -> dict[str, str]:
    """``{code: message}`` table for one component (insertion-ordered)."""
    return {
        code: spec.message
        for code, spec in _REGISTRY.items()
        if spec.component == component
    }


def all_codes() -> dict[str, DiagnosticSpec]:
    """Every registered code (a copy; mutating it changes nothing)."""
    return dict(_REGISTRY)


def spec_of(code: str) -> DiagnosticSpec:
    return _REGISTRY[code]


def is_blocking(code: str) -> bool:
    """Whether findings with ``code`` fail gates (unknown codes do)."""
    spec = _REGISTRY.get(code)
    return True if spec is None else spec.blocking


# -- the one and only code table ----------------------------------------------
# AST lint rules (repro.lint.rules) — 0xx.
register_code(
    "REPRO001",
    "gradient accumulated without _unbroadcast in broadcastable op",
    component="lint",
)
register_code("REPRO002", "tape detached inside Module.forward", component="lint")
register_code(
    "REPRO003",
    "graph node wired without consulting is_grad_enabled()",
    component="lint",
)
register_code("REPRO004", "mutable default argument", component="lint")
register_code(
    "REPRO005",
    "in-place mutation of Tensor data in forward/backward",
    component="lint",
)
register_code(
    "REPRO006",
    "channel mismatch between consecutive Sequential layers",
    component="lint",
)
register_code("REPRO007", "unused module-level import", component="lint")
register_code(
    "REPRO008",
    "backward closure captures a loop variable or mutates out.grad in place",
    component="lint",
)

# Forward-IR passes (repro.ir) — 1xx.
register_code(
    "REPRO101",
    "exp() reachable with unbounded positive input (overflow)",
    component="ir",
)
register_code(
    "REPRO102",
    "log/division/negative power reachable with zero in range",
    component="ir",
)
register_code(
    "REPRO103",
    "implicit mixed-float promotion widens an array operand",
    component="ir",
)
register_code(
    "REPRO104", "random numbers drawn without an explicit seed", component="ir"
)
register_code(
    "REPRO105",
    "unordered iteration can leak into numeric results",
    component="ir",
)
register_code(
    "REPRO106",
    "dead subgraph (computed but unused in inference)",
    component="ir",
    blocking=False,
)
register_code(
    "REPRO107",
    "duplicate subgraph (CSE opportunity)",
    component="ir",
    blocking=False,
)

# Adjoint/backward passes (repro.adjoint) — 2xx.
register_code(
    "REPRO201",
    "adjoint shape/dtype does not match the primal input",
    component="adjoint",
)
register_code(
    "REPRO202",
    "broadcast operand gradient inconsistent with _unbroadcast rules",
    component="adjoint",
)
register_code(
    "REPRO203",
    "requires_grad parent not accumulated exactly once per backward",
    component="adjoint",
)
register_code(
    "REPRO204",
    "analytic vjp disagrees with central-difference derivative",
    component="adjoint",
)
register_code(
    "REPRO205",
    "gradient path provably vanishes or explodes (interval analysis)",
    component="adjoint",
)
register_code(
    "REPRO206",
    "dead ReLU / saturated activation blocks all gradient flow",
    component="adjoint",
)
register_code(
    "REPRO207",
    "trainable parameter provably disconnected from the loss (detach/no_grad)",
    component="adjoint",
)

# Static performance analyzer (repro.perf) — 3xx.  Blocking codes mark
# measured/provable waste that must be fixed or ``# noqa``-justified;
# the rest are advisories ranked by their modelled byte/FLOP cost.
register_code(
    "REPRO301",
    "float64 value escapes into a float32 hot path (doubles memory traffic)",
    component="perf",
)
register_code(
    "REPRO302",
    "array allocated at numpy's default float64 in a float32 pipeline",
    component="perf",
)
register_code(
    "REPRO303",
    "redundant defensive copy (source is never mutated or already fresh)",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO304",
    "broadcast materialization blowup (output far larger than any input buffer)",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO305",
    "unfused elementwise chain materializes avoidable transient buffers",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO306",
    "Python-level loop over ndarray elements in a hot call-graph",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO307",
    "cast churn: value widened then cast straight back (or cast to same dtype)",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO308",
    "array allocation inside a loop body (hoist or reuse the buffer)",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO309",
    "same-dtype astype() call produces a needless full copy",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO310",
    "predicted cost claim failed measured validation (time/tracemalloc)",
    component="perf",
)
register_code(
    "REPRO311",
    "contraction operand not in GEMM layout forces workspace copies",
    component="perf",
    blocking=False,
)
register_code(
    "REPRO312",
    "ufunc.at scatter risks the unbuffered per-element fallback "
    "(mixed dtypes); keep operand dtypes equal or use bincount",
    component="perf",
    blocking=False,
)

# Execution-plan verifier (repro.schedule.verify) — 4xx.  Every code is
# blocking: a plan that trips any of these is unsafe to replay and the
# executor must fall back to eager evaluation.  The verifier re-derives
# each property from the traced graph alone — it shares no legality
# reasoning with the compiler, so a compiler bug cannot also blind the
# check that would have caught it.
register_code(
    "REPRO401",
    "overlapping live ranges assigned overlapping arena addresses",
    component="schedule",
)
register_code(
    "REPRO402",
    "fusion group crosses an aliasing or multi-consumer edge",
    component="schedule",
)
register_code(
    "REPRO403",
    "elided copy whose source is read or retained after the copy",
    component="schedule",
)
register_code(
    "REPRO404",
    "plan/graph topology mismatch (missing, dead, unknown or misclaimed node)",
    component="schedule",
)
register_code(
    "REPRO405",
    "plan ordering is not the canonical deterministic schedule",
    component="schedule",
)
register_code(
    "REPRO406",
    "arena size exceeds the memory planner's peak bound",
    component="schedule",
)
register_code(
    "REPRO407",
    "dtype pin contradicts the traced dtype lattice",
    component="schedule",
)
register_code(
    "REPRO408",
    "stale plan: fingerprint does not match the graph or plan content",
    component="schedule",
)

# Fault-tolerant orchestration runtime (repro.orchestrate) — 5xx.
# These are *runtime incidents*, not static findings: non-blocking codes
# record faults the supervisor recovered from (the run still produced a
# complete result), blocking codes mean a job was lost and the run is
# partial.
register_code(
    "REPRO501",
    "worker process crashed or was killed mid-job; job re-dispatched",
    component="orchestrate",
    blocking=False,
)
register_code(
    "REPRO502",
    "job exceeded its deadline or stopped heartbeating; worker killed",
    component="orchestrate",
    blocking=False,
)
register_code(
    "REPRO503",
    "poison job quarantined; run result is partial",
    component="orchestrate",
)
register_code(
    "REPRO504",
    "journal recovered with a truncated or corrupt tail (crash mid-append)",
    component="orchestrate",
    blocking=False,
)
register_code(
    "REPRO505",
    "job retry budget exhausted",
    component="orchestrate",
)
register_code(
    "REPRO506",
    "result payload failed validation; attempt discarded and retried",
    component="orchestrate",
    blocking=False,
)

# Static concurrency-safety analyzer (repro.concheck) — 6xx.  Unlike
# the 5xx runtime incidents these are *static proofs-of-hazard* over
# the worker-reachable call graph: blocking codes break the parity or
# crash-recovery contract outright; advisory codes flag environment
# reads and fork-inherited resources that are legitimate in parent-only
# paths but worth eyes whenever they sit in worker-reachable code.
register_code(
    "REPRO601",
    "worker-reachable code mutates process-global state (module global, "
    "class attribute, os.environ)",
    component="concheck",
)
register_code(
    "REPRO602",
    "worker-reachable function has call-to-call memory (mutable default "
    "argument / nonlocal accumulation)",
    component="concheck",
)
register_code(
    "REPRO603",
    "worker-reachable code reads environment-dependent state (wall clock, "
    "env vars, hostname)",
    component="concheck",
    blocking=False,
)
register_code(
    "REPRO604",
    "global/legacy RNG (np.random.*, random.*, os.urandom) reachable from "
    "a worker entry point",
    component="concheck",
)
register_code(
    "REPRO605",
    "fresh default_rng()/SeedSequence() without a SeedSequence-derived "
    "seed in worker-reachable code",
    component="concheck",
)
register_code(
    "REPRO606",
    "unordered iteration (set, os.listdir) in worker-reachable code",
    component="concheck",
)
register_code(
    "REPRO607",
    "JobSpec payload contains an unpicklable value (lambda, closure, "
    "generator, handle, lock)",
    component="concheck",
)
register_code(
    "REPRO608",
    "dotted job reference does not resolve to a module-level callable",
    component="concheck",
)
register_code(
    "REPRO609",
    "worker module performs IO/RNG/thread/environ side effects at import "
    "time",
    component="concheck",
)
register_code(
    "REPRO610",
    "fork-unsafe resource (thread, lock, socket, pool, handle) created at "
    "module scope in a worker module",
    component="concheck",
    blocking=False,
)
register_code(
    "REPRO611",
    "durable write skips the temp-file + fsync + rename idiom",
    component="concheck",
)
register_code(
    "REPRO612",
    "rename into place without fsync of the written temp file",
    component="concheck",
)
register_code(
    "REPRO701",
    "traced node's cost exponent exceeds its op-kind budget",
    component="scaling",
)
register_code(
    "REPRO702",
    "stage or model cost exponent exceeds the stage budget",
    component="scaling",
)
register_code(
    "REPRO703",
    "fitted peak-memory envelope misses the planner at the held-out grid "
    "by more than 10%",
    component="scaling",
)
register_code(
    "REPRO704",
    "grid-indexed loop nest exceeds the flow module's complexity budget",
    component="scaling",
)
register_code(
    "REPRO705",
    "per-element Python loop over a grid-sized array reachable from the "
    "hot placer loop",
    component="scaling",
)
register_code(
    "REPRO706",
    "O(n) list primitive (pop(k), 'in' on list) inside a grid-order loop",
    component="scaling",
)
register_code(
    "REPRO707",
    "traced cost sequence admits no exact polynomial fit over the grid "
    "ladder",
    component="scaling",
)
register_code(
    "REPRO708",
    "traced graph structure varies between structurally-equal ladder "
    "grids",
    component="scaling",
)
register_code(
    "REPRO709",
    "measured training-step peak deviates from the fitted envelope at "
    "the held-out grid",
    component="scaling",
)
register_code(
    "REPRO710",
    "superlinear-in-area stages dominate the model's asymptotic cost",
    component="scaling",
    blocking=False,
)
register_code(
    "REPRO801",
    "certified rounding-error envelope exceeds the relative-error budget",
    component="numcheck",
)
register_code(
    "REPRO802",
    "catastrophic cancellation: interval analysis proves subtraction of "
    "near-equal operands with incoming rounding error",
    component="numcheck",
    blocking=False,
)
register_code(
    "REPRO803",
    "ill-conditioned reduction: mixed-sign summands whose total can "
    "cancel to zero",
    component="numcheck",
    blocking=False,
)
register_code(
    "REPRO804",
    "planned fusion group or summation-order change is not error-neutral",
    component="numcheck",
)
register_code(
    "REPRO805",
    "float32 dtype pin breaks the certified error budget",
    component="numcheck",
)
register_code(
    "REPRO806",
    "float32 accumulator (cumsum/bincount weights) over a grid-sized "
    "array in flow code",
    component="numcheck",
)
register_code(
    "REPRO807",
    "unpaired exp/log in flow code: exponential without a max-shift, "
    "clip or log-domain pairing",
    component="numcheck",
    blocking=False,
)
register_code(
    "REPRO808",
    "tolerance literal tighter than the certified float32 error bound",
    component="numcheck",
    blocking=False,
)
register_code(
    "REPRO809",
    "shadow execution measured error above the certified envelope",
    component="numcheck",
)
register_code(
    "REPRO810",
    "certified envelope is vacuous: more than 100x slack over the "
    "measured error",
    component="numcheck",
    blocking=False,
)
