"""U-Net congestion predictor — the [6] baseline.

Szentimrey et al. [6] apply a plain U-Net to grid-based placement
features for FPGA congestion prediction.  This is the vanilla
encoder/decoder with double-conv stages, max-pool downsampling, nearest
upsampling and skip concatenations — no residual blocks, no attention,
no transformer — which is exactly the capability gap the paper's
Table I ablates against.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .base import NUM_CLASSES, CongestionModel

__all__ = ["DoubleConv", "UNet"]


class DoubleConv(nn.Module):
    """(3×3 conv → BN → ReLU) × 2, the classic U-Net stage."""

    def __init__(
        self, in_ch: int, out_ch: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.block = nn.Sequential(
            nn.ConvBNReLU(in_ch, out_ch, kernel_size=3, rng=rng),
            nn.ConvBNReLU(out_ch, out_ch, kernel_size=3, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class UNet(CongestionModel):
    """Plain U-Net with 4 encoder/decoder levels and 8-level output."""

    def __init__(
        self,
        in_channels: int = 6,
        base_channels: int = 12,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        c = base_channels
        self.base_channels = c

        self.enc1 = DoubleConv(in_channels, c, rng=rng)
        self.enc2 = DoubleConv(c, 2 * c, rng=rng)
        self.enc3 = DoubleConv(2 * c, 4 * c, rng=rng)
        self.enc4 = DoubleConv(4 * c, 8 * c, rng=rng)
        self.pool = nn.MaxPool2d(2)

        self.up3 = nn.UpsampleNearest(2)
        self.dec3 = DoubleConv(8 * c + 4 * c, 4 * c, rng=rng)
        self.up2 = nn.UpsampleNearest(2)
        self.dec2 = DoubleConv(4 * c + 2 * c, 2 * c, rng=rng)
        self.up1 = nn.UpsampleNearest(2)
        self.dec1 = DoubleConv(2 * c + c, c, rng=rng)
        self.head = nn.Conv2d(c, NUM_CLASSES, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        e1 = self.enc1(x)  # [c, H]
        e2 = self.enc2(self.pool(e1))  # [2c, H/2]
        e3 = self.enc3(self.pool(e2))  # [4c, H/4]
        e4 = self.enc4(self.pool(e3))  # [8c, H/8]

        d3 = self.dec3(nn.concatenate([self.up3(e4), e3], axis=1))
        d2 = self.dec2(nn.concatenate([self.up2(d3), e2], axis=1))
        d1 = self.dec1(nn.concatenate([self.up1(d2), e1], axis=1))
        return self.head(d1)
