"""PROS 2.0-style congestion predictor — the [8] baseline.

Chen et al.'s PROS 2.0 pairs a ResNet feature extractor with a U-Net
style decoder and trains on real global-routing results.  We reproduce
that architecture family: residual downsampling stages (stronger than
the plain U-Net encoder of [6]) feeding a skip-connected decoder —
still pure CNN, with neither the MFA attention nor the transformer of
the proposed model, which is the comparison Table I makes.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .base import NUM_CLASSES, CongestionModel
from .ours import ResNetDown, UpBlock

__all__ = ["ResidualStage", "ProsNet"]


class ResidualStage(nn.Module):
    """A stride-2 ResNet block followed by a stride-1 ResNet block."""

    def __init__(
        self, in_ch: int, out_ch: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.down = ResNetDown(in_ch, out_ch, rng=rng)
        self.conv1 = nn.Conv2d(out_ch, out_ch, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_ch)
        self.conv2 = nn.Conv2d(out_ch, out_ch, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        x = self.down(x)
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + x).relu()


class ProsNet(CongestionModel):
    """ResNet encoder + U-Net decoder (PROS 2.0 architecture family)."""

    def __init__(
        self,
        in_channels: int = 6,
        base_channels: int = 14,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        c = base_channels
        self.base_channels = c

        self.stage1 = ResidualStage(in_channels, c, rng=rng)  # H/2
        self.stage2 = ResidualStage(c, 2 * c, rng=rng)  # H/4
        self.stage3 = ResidualStage(2 * c, 4 * c, rng=rng)  # H/8
        self.stage4 = ResidualStage(4 * c, 8 * c, rng=rng)  # H/16

        self.up1 = UpBlock(8 * c, 4 * c, 4 * c, rng=rng)  # H/8
        self.up2 = UpBlock(4 * c, 2 * c, 2 * c, rng=rng)  # H/4
        self.up3 = UpBlock(2 * c, c, c, rng=rng)  # H/2
        self.up4 = UpBlock(c, 0, NUM_CLASSES, rng=rng)  # H

    def forward(self, x: Tensor) -> Tensor:
        s1 = self.stage1(x)
        s2 = self.stage2(s1)
        s3 = self.stage3(s2)
        s4 = self.stage4(s3)
        u1 = self.up1(s4, s3)
        u2 = self.up2(u1, s2)
        u3 = self.up3(u2, s1)
        return self.up4(u3)
