"""Congestion prediction model zoo (Table I contenders)."""

from .base import NUM_CLASSES, CongestionModel
from .mfa import ChannelAttention, MFABlock, PositionAttention
from .ours import MFATransformerNet, ResNetDown, UpBlock
from .pgnn import GridGraphConv, PGNNNet
from .predictor import ModelEstimator
from .pros import ProsNet, ResidualStage
from .registry import MODEL_NAMES, PRESETS, build_model
from .unet import DoubleConv, UNet

__all__ = [
    "NUM_CLASSES",
    "CongestionModel",
    "MFABlock",
    "PositionAttention",
    "ChannelAttention",
    "MFATransformerNet",
    "ResNetDown",
    "UpBlock",
    "UNet",
    "DoubleConv",
    "PGNNNet",
    "GridGraphConv",
    "ProsNet",
    "ResidualStage",
    "ModelEstimator",
    "MODEL_NAMES",
    "PRESETS",
    "build_model",
]
