"""The paper's congestion prediction model (Section III, Figs. 2 & 5).

Architecture, following Fig. 5 exactly:

* **Encoder** — four ResNet-style CNN downsampling layers; layer ``k``
  halves H and W and outputs ``C·2^(k-1)`` channels, so the multiscale
  pyramid is ``[C, H/2] → [2C, H/4] → [4C, H/8] → [8C, H/16]``.
* **MFA blocks** — one after every CNN layer (feeding the skip
  connections) plus one more before the transformer.
* **Vision transformer** — the ``[8C, H/16, W/16]`` map is embedded to
  ``C_t``-dimensional tokens and refined by ``L`` transformer layers
  (paper default 12), then projected back to ``[8C, H/16, W/16]``.
* **Decoder** — four upsampling blocks (upsample ×2, concat the skip's
  MFA output, 3×3 conv + BN + ReLU) with output dims
  ``[2C, H/8] → [C, H/4] → [C/2, H/2] → [8, H, W]``; the final 8-channel
  map goes through softmax to produce per-level probabilities, and the
  congestion level map is its (arg)max, size ``1 × H × W``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .base import NUM_CLASSES, CongestionModel
from .mfa import MFABlock

__all__ = ["ResNetDown", "UpBlock", "MFATransformerNet"]


class ResNetDown(nn.Module):
    """ResNet basic block with stride-2 downsampling (an encoder layer)."""

    def __init__(
        self, in_ch: int, out_ch: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_ch, out_ch, 3, stride=2, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_ch)
        self.conv2 = nn.Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_ch)
        self.shortcut = nn.Conv2d(in_ch, out_ch, 1, stride=2, bias=False, rng=rng)
        self.bn_sc = nn.BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        residual = self.bn_sc(self.shortcut(x))
        return (out + residual).relu()


class UpBlock(nn.Module):
    """Decoder block: upsample ×2, concat skip, 3×3 conv + BN + ReLU."""

    def __init__(
        self,
        in_ch: int,
        skip_ch: int,
        out_ch: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.skip_ch = skip_ch
        self.up = nn.UpsampleNearest(2)
        self.fuse = nn.ConvBNReLU(in_ch + skip_ch, out_ch, kernel_size=3, rng=rng)

    def forward(self, x: Tensor, skip: Tensor | None = None) -> Tensor:
        x = self.up(x)
        if skip is not None:
            x = nn.concatenate([x, skip], axis=1)
        return self.fuse(x)


class MFATransformerNet(CongestionModel):
    """The proposed MFA + transformer congestion prediction model.

    Parameters
    ----------
    in_channels:
        Number of grid-based input features (6 in the paper).
    base_channels:
        ``C`` of Fig. 5.
    num_transformer_layers:
        ``L`` of Section III-C3 (paper: 12).
    embed_dim:
        ``C_t``; defaults to ``8 · base_channels``.
    grid:
        Input H = W; must be divisible by 16.
    use_mfa:
        Ablation switch: ``False`` replaces every MFA block with the
        identity (plain skip connections, as in a vanilla U-Net).
    num_transformer_layers:
        ``0`` ablates the transformer entirely (the bottleneck passes
        through unchanged).
    """

    def __init__(
        self,
        in_channels: int = 6,
        base_channels: int = 16,
        num_transformer_layers: int = 12,
        embed_dim: int | None = None,
        num_heads: int = 4,
        grid: int = 64,
        max_attention_tokens: int = 4096,
        use_mfa: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if grid % 16:
            raise ValueError(f"grid must be divisible by 16, got {grid}")
        rng = np.random.default_rng(seed)
        c = base_channels
        self.grid = grid
        self.base_channels = c
        self.num_classes = NUM_CLASSES
        self.use_mfa = use_mfa

        # Encoder (Fig. 5 "Down" stack).
        self.down1 = ResNetDown(in_channels, c, rng=rng)
        self.down2 = ResNetDown(c, 2 * c, rng=rng)
        self.down3 = ResNetDown(2 * c, 4 * c, rng=rng)
        self.down4 = ResNetDown(4 * c, 8 * c, rng=rng)

        # MFA on every skip connection + one before the transformer.
        if use_mfa:
            self.mfa1 = MFABlock(c, max_tokens=max_attention_tokens, rng=rng)
            self.mfa2 = MFABlock(2 * c, max_tokens=max_attention_tokens, rng=rng)
            self.mfa3 = MFABlock(4 * c, max_tokens=max_attention_tokens, rng=rng)
            self.mfa4 = MFABlock(8 * c, max_tokens=max_attention_tokens, rng=rng)
            self.mfa_bottleneck = MFABlock(
                8 * c, max_tokens=max_attention_tokens, rng=rng
            )
        else:
            self.mfa1 = nn.Identity()
            self.mfa2 = nn.Identity()
            self.mfa3 = nn.Identity()
            self.mfa4 = nn.Identity()
            self.mfa_bottleneck = nn.Identity()

        tokens = (grid // 16) ** 2
        if num_transformer_layers > 0:
            self.transformer = nn.TransformerStack(
                in_channels=8 * c,
                embed_dim=embed_dim or 8 * c,
                num_layers=num_transformer_layers,
                tokens=tokens,
                num_heads=num_heads,
                rng=rng,
            )
        else:
            self.transformer = nn.Identity()

        # Decoder (Fig. 5 "Up" stack): [2C,H/8], [C,H/4], [C/2,H/2], 8×H×W.
        half_c = max(1, c // 2)
        self.up1 = UpBlock(8 * c, 4 * c, 2 * c, rng=rng)
        self.up2 = UpBlock(2 * c, 2 * c, c, rng=rng)
        self.up3 = UpBlock(c, c, half_c, rng=rng)
        self.up4 = UpBlock(half_c, 0, NUM_CLASSES, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Return per-level logits of shape ``(N, 8, H, W)``."""
        d1 = self.down1(x)  # [C, H/2]
        d2 = self.down2(d1)  # [2C, H/4]
        d3 = self.down3(d2)  # [4C, H/8]
        d4 = self.down4(d3)  # [8C, H/16]

        s1 = self.mfa1(d1)
        s2 = self.mfa2(d2)
        s3 = self.mfa3(d3)
        s4 = self.mfa4(d4)

        z = self.transformer(self.mfa_bottleneck(s4))  # [8C, H/16]

        u1 = self.up1(z, s3)  # [2C, H/8]
        u2 = self.up2(u1, s2)  # [C, H/4]
        u3 = self.up3(u2, s1)  # [C/2, H/2]
        return self.up4(u3)  # [8, H, W] logits
