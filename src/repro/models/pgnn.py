"""PGNN-style congestion predictor — the [7] baseline.

Baek et al.'s PGNN combines a GNN over the *pin proximity graph* (for
pin accessibility) with a U-Net over grid features for DRC-hotspot /
congestion prediction.  Substitution note (DESIGN.md §2): our features
are already rasterized, so the pin-proximity GNN is realized as a
graph convolution network over the **grid graph** (4-neighbour
adjacency) applied to the pin-carrying channels — aggregation over
neighbouring grid cells is exactly mean message passing on that graph,
and is expressible as a fixed cross-shaped stencil followed by learned
1×1 mixing.  The GNN embeddings are concatenated to the raw features
and fed to a U-Net, preserving PGNN's two-branch structure.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import CongestionModel
from .unet import UNet

__all__ = ["GridGraphConv", "PGNNNet"]

# Mean aggregation over the 4-neighbourhood of the grid graph.
_STENCIL = np.array(
    [[0.0, 0.25, 0.0], [0.25, 0.0, 0.25], [0.0, 0.25, 0.0]]
)


class GridGraphConv(nn.Module):
    """One GCN layer on the grid graph: aggregate neighbours, mix, ReLU.

    ``h' = ReLU(W_self · h + W_neigh · mean_{j∈N(i)} h_j)`` where the
    neighbour mean is the fixed cross stencil and both ``W`` are learned
    1×1 convolutions.
    """

    def __init__(
        self, in_ch: int, out_ch: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.in_ch = in_ch
        stencil = np.zeros((in_ch, in_ch, 3, 3))
        for ch in range(in_ch):
            stencil[ch, ch] = _STENCIL
        # Fixed aggregation kernel (not a Parameter: message passing
        # weights in a GCN are the learned 1x1 mixes, not the adjacency).
        self._aggregate = nn.Tensor(stencil)
        self.w_self = nn.Conv2d(in_ch, out_ch, 1, rng=rng)
        self.w_neigh = nn.Conv2d(in_ch, out_ch, 1, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        neigh = F.conv2d(x, self._aggregate, stride=1, padding=1)
        return (self.w_self(x) + self.w_neigh(neigh)).relu()


class PGNNNet(CongestionModel):
    """Grid-graph GNN branch + U-Net trunk (PGNN architecture family)."""

    def __init__(
        self,
        in_channels: int = 6,
        gnn_channels: int = 8,
        gnn_layers: int = 2,
        base_channels: int = 12,
        seed: int = 0,
    ) -> None:
        super().__init__()
        # Independent child streams for the two branches (rather than
        # seed arithmetic, which risks stream collisions between models
        # built from nearby seeds).
        gnn_seq, unet_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(gnn_seq)
        self.gnn = nn.ModuleList()
        ch = in_channels
        for _ in range(gnn_layers):
            self.gnn.append(GridGraphConv(ch, gnn_channels, rng=rng))
            ch = gnn_channels
        self.unet = UNet(
            in_channels=in_channels + gnn_channels,
            base_channels=base_channels,
            seed=unet_seq,
        )

    def forward(self, x: Tensor) -> Tensor:
        h = x
        for layer in self.gnn:
            h = layer(h)
        return self.unet(nn.concatenate([x, h], axis=1))
