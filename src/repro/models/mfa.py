"""Multiscale Feature Attention block (Section III-C2, Fig. 3).

The MFA block combines the two attention modules of the dual attention
network the paper cites [14]:

* **PAM** (position attention): spatial self-attention — every position
  re-weights every other position (Eqs. 4–5).
* **CAM** (channel attention): channel self-attention — every channel
  re-weights every other channel (Eqs. 6–7).

Per Fig. 3, the block first reduces channels by 1/16 with a convolution
for each branch, runs PAM/CAM, sums the branch outputs and restores the
original channel count with a final convolution, wrapped in a residual
connection.  (The paper's Eq. 4/6 subscripts contain typos; we implement
the canonical DANet formulation — see DESIGN.md §5.)

For large feature maps the full ``L × L`` spatial attention matrix
(``L = H·W``) is quadratic in memory; PAM therefore optionally pools its
key/query/value maps so ``L`` stays below ``max_tokens``, matching how
DANet-style models are deployed at high resolution.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["PositionAttention", "ChannelAttention", "MFABlock"]


class PositionAttention(nn.Module):
    """PAM: spatial self-attention with a learnable residual gain α."""

    def __init__(
        self,
        channels: int,
        max_tokens: int = 4096,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.max_tokens = max_tokens
        inter = max(1, channels // 8)
        self.query_conv = nn.Conv2d(channels, inter, 1, rng=rng)
        self.key_conv = nn.Conv2d(channels, inter, 1, rng=rng)
        self.value_conv = nn.Conv2d(channels, channels, 1, rng=rng)
        self.alpha = nn.Parameter(np.zeros(1))

    def _pool_factor(self, h: int, w: int) -> int:
        factor = 1
        while (h // factor) * (w // factor) > self.max_tokens and factor < min(h, w):
            factor *= 2
        return factor

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        factor = self._pool_factor(h, w)
        att_in = F.avg_pool2d(x, factor) if factor > 1 else x
        ah, aw = att_in.shape[2], att_in.shape[3]
        tokens = ah * aw

        # B, C, D of Eqs. 4–5.
        q = self.query_conv(att_in).reshape(n, -1, tokens).transpose((0, 2, 1))
        k = self.key_conv(att_in).reshape(n, -1, tokens)
        v = self.value_conv(att_in).reshape(n, c, tokens)

        energy = q @ k  # (n, L, L): influence of position i on position j
        attention = F.softmax(energy, axis=-1)
        out = v @ attention.transpose((0, 2, 1))  # Eq. 5: D · P^T
        out = out.reshape(n, c, ah, aw)
        if factor > 1:
            out = F.upsample_nearest(out, factor)
            # Crop in case pooling truncated odd dimensions.
            if out.shape[2] != h or out.shape[3] != w:
                out = out[:, :, :h, :w]
        return self.alpha * out + x


class ChannelAttention(nn.Module):
    """CAM: channel self-attention with a learnable residual gain β."""

    def __init__(self, channels: int) -> None:
        super().__init__()
        self.channels = channels
        self.beta = nn.Parameter(np.zeros(1))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        flat = x.reshape(n, c, h * w)
        energy = flat @ flat.transpose((0, 2, 1))  # (n, C, C)
        # DANet subtracts from the rowwise max before softmax to avoid a
        # degenerate all-self attention; keep that stabilization.
        energy_max = energy.max(axis=-1, keepdims=True)
        attention = F.softmax(energy_max - energy, axis=-1)
        out = attention @ flat  # Eq. 7: C · M
        out = out.reshape(n, c, h, w)
        return self.beta * out + x


class MFABlock(nn.Module):
    """Fig. 3: channel-reduced PAM + CAM branches, summed and restored.

    Input and output shapes are identical (``[channels, H, W]``), which
    is what lets the block sit on every skip connection of Fig. 5.
    """

    def __init__(
        self,
        channels: int,
        reduction: int = 16,
        max_tokens: int = 4096,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        inter = max(1, channels // reduction)
        self.pam_reduce = nn.ConvBNReLU(channels, inter, kernel_size=3, rng=rng)
        self.cam_reduce = nn.ConvBNReLU(channels, inter, kernel_size=3, rng=rng)
        self.pam = PositionAttention(inter, max_tokens=max_tokens, rng=rng)
        self.cam = ChannelAttention(inter)
        self.restore = nn.Conv2d(inter, channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        p = self.pam(self.pam_reduce(x))
        c = self.cam(self.cam_reduce(x))
        fused = self.restore(p + c)
        return fused + x
