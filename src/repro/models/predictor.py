"""Model-backed congestion estimator for the placement flow.

Adapts a trained :class:`~repro.models.base.CongestionModel` to the
``estimator(design, x, y) -> level map`` interface the Fig. 6 flow's
inflation step consumes (Section IV: "we utilize our trained congestion
prediction model … to predict congestion map Y_out instead of the
original RUDY method").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features import FeatureExtractor, resize_map
from ..netlist import Design
from .base import CongestionModel

__all__ = ["ModelEstimator"]


@dataclass
class ModelEstimator:
    """Wrap a trained model as a placement-flow congestion estimator.

    Parameters
    ----------
    model:
        A trained congestion model.
    model_grid:
        The H = W the model was trained at; features are extracted at
        ``out_grid`` and resized to this before inference.
    out_grid:
        Resolution of the returned level map (defaults to model_grid).
    mode:
        ``"expected"`` returns the probability-weighted real-valued
        level (the paper's ``Y_out ∈ R_+``); ``"argmax"`` returns hard
        levels, which trigger the Eq. 11 threshold (Y > 3) more readily
        when the softmax is diffuse.
    lookahead_legalize:
        When true, features are extracted from a *legalized preview* of
        the queried placement (SimPL-style lookahead) instead of the raw
        mid-GP positions.  The model is trained on legalized placements,
        so this removes the distribution shift between training and the
        in-flow query.
    """

    model: CongestionModel
    model_grid: int = 64
    out_grid: int | None = None
    mode: str = "expected"
    lookahead_legalize: bool = False

    def __call__(self, design: Design, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.mode not in ("expected", "argmax"):
            raise ValueError(
                f"unknown mode {self.mode!r}; use 'expected' or 'argmax'"
            )
        if self.lookahead_legalize:
            from ..placement.legalize import legalize

            preview = legalize(design, x, y)
            x, y = preview.x, preview.y
        out_grid = self.out_grid or self.model_grid
        extractor = FeatureExtractor(grid=self.model_grid)
        features = extractor(design, x, y)[None]  # (1, 6, G, G)
        if self.mode == "expected":
            levels = self.model.predict_expected(features)[0]
        else:
            levels = self.model.predict_levels(features)[0].astype(np.float64)
        if levels.shape != (out_grid, out_grid):
            levels = resize_map(levels, out_grid, out_grid)
        return levels
