"""Model registry: the four Table-I contenders by name, with presets.

``build_model(name, preset)`` constructs each model at one of three
sizes: ``"tiny"`` (unit tests), ``"fast"`` (benchmark harness) and
``"paper"`` (the paper's configuration — C=16-ish channels, 12
transformer layers, 256-capable).
"""

from __future__ import annotations

from .base import CongestionModel
from .ours import MFATransformerNet
from .pgnn import PGNNNet
from .pros import ProsNet
from .unet import UNet

__all__ = ["MODEL_NAMES", "PRESETS", "build_model"]

MODEL_NAMES = ("unet", "pgnn", "pros2", "ours")
PRESETS = ("tiny", "fast", "paper")


def build_model(
    name: str, preset: str = "fast", grid: int = 64, seed: int = 0
) -> CongestionModel:
    """Construct one of the Table-I models.

    Parameters
    ----------
    name:
        One of ``unet``, ``pgnn``, ``pros2``, ``ours``.
    preset:
        ``tiny`` / ``fast`` / ``paper`` capacity preset.
    grid:
        Input resolution (``ours`` requires a multiple of 16).
    """
    if name not in MODEL_NAMES:
        raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; expected one of {PRESETS}")

    sizes = {
        "tiny": {"unet": 4, "pgnn": 4, "pros2": 4, "ours": 4, "layers": 2, "gnn": 4},
        "fast": {"unet": 8, "pgnn": 8, "pros2": 10, "ours": 12, "layers": 4, "gnn": 8},
        "paper": {"unet": 12, "pgnn": 12, "pros2": 14, "ours": 16, "layers": 12, "gnn": 8},
    }[preset]

    if name == "unet":
        return UNet(base_channels=sizes["unet"], seed=seed)
    if name == "pgnn":
        return PGNNNet(
            gnn_channels=sizes["gnn"], base_channels=sizes["pgnn"], seed=seed
        )
    if name == "pros2":
        return ProsNet(base_channels=sizes["pros2"], seed=seed)
    return MFATransformerNet(
        base_channels=sizes["ours"],
        num_transformer_layers=sizes["layers"],
        grid=grid,
        seed=seed,
    )
