"""Model registry: the four Table-I contenders by name, with presets.

``build_model(name, preset)`` constructs each model at one of three
sizes: ``"tiny"`` (unit tests), ``"fast"`` (benchmark harness) and
``"paper"`` (the paper's configuration — C=16-ish channels, 12
transformer layers, 256-capable).
"""

from __future__ import annotations

from .base import CongestionModel
from .ours import MFATransformerNet
from .pgnn import PGNNNet
from .pros import ProsNet
from .unet import UNet

__all__ = ["MODEL_NAMES", "PRESETS", "build_model"]

MODEL_NAMES = ("unet", "pgnn", "pros2", "ours")
PRESETS = ("tiny", "fast", "paper")


def build_model(
    name: str,
    preset: str = "fast",
    grid: int = 64,
    seed: int = 0,
    in_channels: int = 6,
    validate: bool = True,
    analyze: bool = False,
) -> CongestionModel:
    """Construct one of the Table-I models.

    Parameters
    ----------
    name:
        One of ``unet``, ``pgnn``, ``pros2``, ``ours``.
    preset:
        ``tiny`` / ``fast`` / ``paper`` capacity preset.
    grid:
        Input resolution (``ours`` requires a multiple of 16).
    in_channels:
        Number of grid feature channels (6 in the paper).
    validate:
        Statically check every layer shape, channel count and
        encoder/decoder skip connection with
        :func:`repro.lint.validate_model` before returning — pure shape
        arithmetic, no numerics.  Raises
        :class:`~repro.lint.shapes.ShapeError` on an inconsistent
        architecture instead of failing mid-training.
    analyze:
        Trace the constructed model through the symbolic IR
        (:mod:`repro.ir`) and run the numerical-stability and
        determinism passes on it.  Raises
        :class:`~repro.ir.AnalysisError` if any blocking finding
        (``REPRO101``–``105``) survives ``# noqa`` suppression.
        Costs one data-free symbolic forward; off by default.
    """
    if name not in MODEL_NAMES:
        raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; expected one of {PRESETS}")

    sizes = {
        "tiny": {"unet": 4, "pgnn": 4, "pros2": 4, "ours": 4, "layers": 2, "gnn": 4},
        "fast": {"unet": 8, "pgnn": 8, "pros2": 10, "ours": 12, "layers": 4, "gnn": 8},
        "paper": {"unet": 12, "pgnn": 12, "pros2": 14, "ours": 16, "layers": 12, "gnn": 8},
    }[preset]

    if name == "unet":
        model: CongestionModel = UNet(
            in_channels=in_channels, base_channels=sizes["unet"], seed=seed
        )
    elif name == "pgnn":
        model = PGNNNet(
            in_channels=in_channels,
            gnn_channels=sizes["gnn"],
            base_channels=sizes["pgnn"],
            seed=seed,
        )
    elif name == "pros2":
        model = ProsNet(
            in_channels=in_channels, base_channels=sizes["pros2"], seed=seed
        )
    else:
        model = MFATransformerNet(
            in_channels=in_channels,
            base_channels=sizes["ours"],
            num_transformer_layers=sizes["layers"],
            grid=grid,
            seed=seed,
        )
    if validate:
        from ..lint.shapes import validate_model

        validate_model(model, (1, in_channels, grid, grid))
    if analyze:
        from ..ir import AnalysisError, analyze_graph, trace
        from ..lint.rules import LintDiagnostic

        graph = trace(model, (1, in_channels, grid, grid),
                      input_vrange=(0.0, 1.0), name=name)
        graph.meta.update(model=name, preset=preset, grid=grid, batch=1)
        report = analyze_graph(graph, determinism=True)
        if report["failures"]:
            findings = [
                LintDiagnostic(f["path"], f["line"], f["col"], f["code"], f["message"])
                for f in report["stability"]["findings"]
                + report["determinism"]["findings"]
            ]
            raise AnalysisError(findings)
    return model
