"""Shared interface of all congestion prediction models.

Every model maps a ``(N, in_channels, H, W)`` feature batch to
``(N, 8, H, W)`` per-level logits; the helpers here turn logits into the
outputs the rest of the system consumes (hard level maps for metrics,
expected real-valued levels for Eq. 11 inflation).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["NUM_CLASSES", "CongestionModel"]

NUM_CLASSES = 8


class CongestionModel(nn.Module):
    """Base class: logits-producing module with prediction helpers."""

    num_classes: int = NUM_CLASSES

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax level probabilities, ``(N, 8, H, W)``."""
        self.eval()
        with nn.no_grad():
            logits = self(Tensor(np.asarray(features, dtype=np.float64)))
            return F.softmax(logits, axis=1).data

    def predict_levels(self, features: np.ndarray) -> np.ndarray:
        """Hard level map ``(N, H, W)`` (integer levels 0–7)."""
        return self.predict_proba(features).argmax(axis=1)

    def predict_expected(self, features: np.ndarray) -> np.ndarray:
        """Probability-weighted level map ``(N, H, W)`` (``Y_out ∈ R_+``)."""
        proba = self.predict_proba(features)
        levels = np.arange(self.num_classes).reshape(1, -1, 1, 1)
        return (proba * levels).sum(axis=1)
