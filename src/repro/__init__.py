"""repro — reproduction of "Multiscale Feature Attention and Transformer
Based Congestion Prediction for Routability-Driven FPGA Macro Placement"
(DATE 2025).

Subpackages
-----------
``repro.nn``
    Pure-numpy deep-learning substrate (autograd, conv/attention layers,
    Adam) — the PyTorch substitute.
``repro.arch``
    XCVU3P-like device model: site columns, interconnect tiles,
    cascade-shape and region constraints.
``repro.netlist``
    Netlist containers and the synthetic MLCAD-2023-like benchmark
    generator (the ten Table-I designs).
``repro.placement``
    Electrostatics-based routability-driven macro placement flow
    (Fig. 6), incl. Eq. 11-13 instance inflation and legalization.
``repro.routing``
    Global router with negotiated congestion, the Fig. 1 congestion
    levels, and the detailed-routing effort model.
``repro.features``
    The six grid-based input feature maps (Section III-B).
``repro.models``
    The MFA+transformer model (Figs. 2-5) and the U-Net / PGNN /
    PROS 2.0 baselines.
``repro.train``
    Dataset generation with rotation augmentation, the training loop and
    the ACC/R2/NRMS metrics of Table I.
``repro.contest``
    MLCAD 2023 scoring (Eqs. 1-3), the Table-II teams, and the
    evaluation harness.
``repro.resilience``
    Fault tolerance: atomic resumable checkpoints, divergence
    recovery, estimator fallback, and deterministic fault injection.
``repro.analysis``
    Feature-congestion correlation analysis and report export.

Quickstart
----------
>>> from repro.netlist import generate_design, MLCAD2023_SPECS
>>> from repro.placement import place_design
>>> from repro.routing import route_design, congestion_report
>>> design = generate_design(MLCAD2023_SPECS["Design_116"], scale=1 / 256)
>>> outcome = place_design(design)
>>> report = congestion_report(route_design(design))
"""

__version__ = "1.0.0"

from . import (
    analysis,
    arch,
    contest,
    features,
    models,
    netlist,
    nn,
    placement,
    resilience,
    routing,
    train,
)

__all__ = [
    "analysis",
    "arch",
    "contest",
    "features",
    "models",
    "netlist",
    "nn",
    "placement",
    "resilience",
    "routing",
    "train",
    "__version__",
]
