"""Routing substrate: global router, congestion levels, detailed-routing model."""

from .congestion import (
    DIRECTIONS,
    NUM_LEVELS,
    CongestionReport,
    congestion_report,
    utilization_to_level,
)
from .detailed import DetailedRoutingModel, DetailedRoutingOutcome
from .maze import MazeRefiner, astar_route, path_edges
from .router import GlobalRouter, RouterConfig, RoutingResult, route_design

__all__ = [
    "GlobalRouter",
    "RouterConfig",
    "RoutingResult",
    "route_design",
    "CongestionReport",
    "congestion_report",
    "utilization_to_level",
    "NUM_LEVELS",
    "DIRECTIONS",
    "DetailedRoutingModel",
    "DetailedRoutingOutcome",
    "MazeRefiner",
    "astar_route",
    "path_edges",
]
