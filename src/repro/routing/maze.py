"""Maze (A*) rerouting fallback for overflowed connections.

Pattern routing explores at most two bends per connection; in dense
hotspots that is occasionally not enough.  This module adds the classic
global-router escape hatch: after negotiated pattern routing settles,
connections that still cross overused boundaries are ripped up one at a
time and rerouted with congestion-aware A* over the tile graph, which
can produce arbitrarily-shaped detours.

The refiner operates on explicit edge-usage arrays plus per-connection
paths, so it composes with :class:`~repro.routing.router.GlobalRouter`
(enable via ``RouterConfig(maze_fallback=True)``) and is also usable
standalone for experiments (see ``benchmarks/test_ablation_router.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["astar_route", "MazeRefiner", "path_edges"]


def astar_route(
    cost_h: np.ndarray,
    cost_v: np.ndarray,
    src: tuple[int, int],
    dst: tuple[int, int],
) -> list[tuple[int, int]]:
    """A* shortest path on the tile grid.

    ``cost_h[i, j]`` is the cost of crossing between tiles ``(i, j)`` and
    ``(i+1, j)``; ``cost_v[i, j]`` between ``(i, j)`` and ``(i, j+1)``.
    Returns the tile sequence from ``src`` to ``dst`` inclusive.  The
    heuristic is manhattan distance times the minimum edge cost, which
    is admissible, so the returned path is optimal.
    """
    gw = cost_v.shape[0]
    gh = cost_h.shape[1]
    if src == dst:
        return [src]
    min_cost = min(
        cost_h.min() if cost_h.size else np.inf,
        cost_v.min() if cost_v.size else np.inf,
    )
    min_cost = max(float(min_cost), 1e-9)

    def heuristic(x: int, y: int) -> float:
        return (abs(x - dst[0]) + abs(y - dst[1])) * min_cost

    start = src
    best_g = {start: 0.0}
    parent: dict[tuple[int, int], tuple[int, int]] = {}
    heap: list[tuple[float, tuple[int, int]]] = [
        (heuristic(*start), start)
    ]
    closed: set[tuple[int, int]] = set()
    while heap:
        f, node = heapq.heappop(heap)
        if node in closed:
            continue
        if node == dst:
            path = [node]
            while node in parent:
                node = parent[node]
                path.append(node)
            path.reverse()
            return path
        closed.add(node)
        x, y = node
        neighbours = []
        if x + 1 < gw:
            neighbours.append(((x + 1, y), float(cost_h[x, y])))
        if x - 1 >= 0:
            neighbours.append(((x - 1, y), float(cost_h[x - 1, y])))
        if y + 1 < gh:
            neighbours.append(((x, y + 1), float(cost_v[x, y])))
        if y - 1 >= 0:
            neighbours.append(((x, y - 1), float(cost_v[x, y - 1])))
        g = best_g[node]
        for nxt, step in neighbours:
            cand = g + step
            if cand < best_g.get(nxt, np.inf):
                best_g[nxt] = cand
                parent[nxt] = node
                heapq.heappush(heap, (cand + heuristic(*nxt), nxt))
    raise RuntimeError(f"no route from {src} to {dst}")  # pragma: no cover


def path_edges(
    path: list[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Split a tile path into (horizontal, vertical) boundary edges.

    A horizontal edge ``(i, j)`` is the boundary between tiles ``(i, j)``
    and ``(i+1, j)``; vertical analogous.
    """
    h_edges: list[tuple[int, int]] = []
    v_edges: list[tuple[int, int]] = []
    for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
        if y0 == y1:
            h_edges.append((min(x0, x1), y0))
        elif x0 == x1:
            v_edges.append((x0, min(y0, y1)))
        else:  # pragma: no cover - A* only makes unit steps
            raise ValueError("path contains a diagonal step")
    return h_edges, v_edges


@dataclass
class MazeRefiner:
    """Rip-up-and-reroute of connections crossing overused boundaries.

    Parameters
    ----------
    capacity:
        Boundary capacity of this wire class.
    demand_unit:
        Usage added per crossing (1 for short wires, ``1/GLOBAL_SPAN``
        for globals).
    overflow_penalty:
        Weight of the quadratic overuse term in the A* edge costs.
    max_reroutes:
        Upper bound on the number of connections ripped up per pass;
        hotspots involve few connections, so a modest cap keeps the
        Python A* loop cheap.
    """

    capacity: float
    demand_unit: float = 1.0
    overflow_penalty: float = 16.0
    max_reroutes: int = 400

    def _edge_costs(
        self, h_use: np.ndarray, v_use: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cost of routing *one more* crossing through each boundary.

        Pricing the marginal addition (usage + demand vs. capacity)
        rather than the current overuse is what stops a ripped-up
        connection from settling straight back onto a boundary that is
        exactly full.
        """
        after_h = h_use + self.demand_unit
        after_v = v_use + self.demand_unit
        over_h = np.maximum(0.0, after_h - self.capacity) / self.capacity
        over_v = np.maximum(0.0, after_v - self.capacity) / self.capacity
        return (
            1.0 + self.overflow_penalty * over_h,
            1.0 + self.overflow_penalty * over_v,
        )

    def refine(
        self,
        h_use: np.ndarray,
        v_use: np.ndarray,
        paths: list[list[tuple[int, int]]],
    ) -> tuple[np.ndarray, np.ndarray, list[list[tuple[int, int]]], int]:
        """Reroute paths through overused boundaries.

        Returns updated ``(h_use, v_use, paths, num_rerouted)``; inputs
        are not mutated.
        """
        over_h = h_use > self.capacity
        over_v = v_use > self.capacity
        if not over_h.any() and not over_v.any():
            # Nothing to reroute: the inputs pass through untouched, so
            # the no-op path allocates nothing (defensive copies happen
            # only below, once mutation is certain).
            return h_use, v_use, list(paths), 0

        h_use = h_use.copy()
        v_use = v_use.copy()
        paths = list(paths)

        offenders = []
        for idx, path in enumerate(paths):
            h_edges, v_edges = path_edges(path)
            if any(over_h[e] for e in h_edges) or any(
                over_v[e] for e in v_edges
            ):
                offenders.append(idx)
            if len(offenders) >= self.max_reroutes:
                break

        rerouted = 0
        for idx in offenders:
            path = paths[idx]
            h_edges, v_edges = path_edges(path)
            for e in h_edges:
                h_use[e] -= self.demand_unit
            for e in v_edges:
                v_use[e] -= self.demand_unit
            cost_h, cost_v = self._edge_costs(h_use, v_use)
            new_path = astar_route(cost_h, cost_v, path[0], path[-1])
            nh, nv = path_edges(new_path)
            for e in nh:
                h_use[e] += self.demand_unit
            for e in nv:
                v_use[e] += self.demand_unit
            paths[idx] = new_path
            rerouted += 1
        return h_use, v_use, paths, rerouted
