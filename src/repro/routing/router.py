"""Pattern-based global router with negotiated congestion.

This is the reproduction's stand-in for the Vivado initial router
(DESIGN.md §2): it routes every net over the device's interconnect tile
grid and reports per-tile, per-direction wire usage, from which
:mod:`repro.routing.congestion` derives the Fig. 1 congestion levels and
Eq. 1 scores, and from whose convergence behaviour
:mod:`repro.routing.detailed` models the detailed-router iteration count
(S_DR).

Algorithm
---------
* Nets are decomposed into two-pin connections with a Prim MST over
  their pin tiles.
* Short connections use *short* wires, long connections *global* wires —
  mirroring the two congestion classes of the contest metric.  A global
  wire spans several tiles, so each boundary crossing consumes
  ``1/GLOBAL_SPAN`` of a global track.
* Each iteration routes **all** connections against a congestion cost
  snapshot using 1- and 2-bend pattern candidates (costs are O(1) per
  candidate via prefix sums), then rebuilds usage and raises PathFinder
  history costs on overused edges.  Iterating this batch scheme is the
  negotiated-congestion loop; the number of iterations needed to clear
  (or the residual overuse at the cap) measures how routable the
  placement is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Design

__all__ = ["RouterConfig", "RoutingResult", "GlobalRouter", "route_design"]

GLOBAL_SPAN = 4.0  # tiles spanned by one global wire segment


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs."""

    max_iterations: int = 12
    history_gain: float = 0.4
    overflow_penalty: float = 3.0
    global_threshold: int = 5  # manhattan tile distance; beyond -> global wires
    # Per-candidate cost jitter (in base-cost units).  Batch rerouting
    # evaluates every connection against the same cost snapshot, so
    # identical connections would always pick identical paths and a
    # bundle could never split across rows; the jitter breaks those ties.
    jitter: float = 0.5
    # Rip up connections still crossing overused boundaries after pattern
    # negotiation and reroute them with congestion-aware A* (repro.routing.maze).
    # On by default: the Vivado initial router this substitutes for is a
    # full negotiated maze router, and without the fallback rare pattern-
    # routing artifacts dominate the congestion tail (DESIGN.md §2).
    maze_fallback: bool = True
    # Multi-pin net decomposition: "mst" (baseline), "stst" (single-trunk
    # Steiner) or "best" (shorter of the two per net) — see routing.topology.
    decomposition: str = "mst"
    seed: int = 0


@dataclass
class RoutingResult:
    """Usage snapshots and convergence data of one routing run.

    ``h_*``/``v_*`` arrays hold wire usage per tile boundary:
    ``h_short[i, j]`` is the short-wire demand crossing between tiles
    ``(i, j)`` and ``(i+1, j)``; ``v_short[i, j]`` between ``(i, j)`` and
    ``(i, j+1)``.  Global arrays are in *track* units (crossings divided
    by :data:`GLOBAL_SPAN`).
    """

    h_short: np.ndarray
    v_short: np.ndarray
    h_global: np.ndarray
    v_global: np.ndarray
    short_capacity: float
    global_capacity: float
    iterations: int
    converged: bool
    overuse_history: list[float] = field(default_factory=list)
    num_connections: int = 0
    total_wirelength: float = 0.0
    residual_overuse: float = 0.0  # short + global overuse after the last pass

    def max_utilization(self) -> float:
        """Worst boundary utilization across classes and orientations."""
        utils = [
            self.h_short.max(initial=0.0) / self.short_capacity,
            self.v_short.max(initial=0.0) / self.short_capacity,
            self.h_global.max(initial=0.0) / self.global_capacity,
            self.v_global.max(initial=0.0) / self.global_capacity,
        ]
        return float(max(utils))


def _net_connections(
    design: Design, grid_w: int, grid_h: int, decomposition: str = "mst"
) -> np.ndarray:
    """Two-pin tile connections for every net.

    Nets are decomposed per :mod:`repro.routing.topology` (MST by
    default).  Returns an ``(M, 4)`` int array of ``(x0, y0, x1, y1)``
    tile endpoints with zero-length connections removed.
    """
    from .topology import decompose_net

    device = design.device
    tx = np.clip(
        (design.x / device.width * grid_w).astype(np.int64), 0, grid_w - 1
    )
    ty = np.clip(
        (design.y / device.height * grid_h).astype(np.int64), 0, grid_h - 1
    )

    pieces: list[np.ndarray] = []
    order = np.argsort(design.pin_net, kind="stable")
    sorted_nets = design.pin_net[order]
    sorted_inst = design.pin_inst[order]
    boundaries = np.searchsorted(
        sorted_nets, np.arange(design.num_nets + 1)
    )
    for net in range(design.num_nets):
        lo, hi = boundaries[net], boundaries[net + 1]
        insts = sorted_inst[lo:hi]
        pts = np.stack([tx[insts], ty[insts]], axis=1)
        conns = decompose_net(pts, mode=decomposition)
        if conns.size:
            pieces.append(conns)
    if not pieces:
        return np.zeros((0, 4), dtype=np.int64)
    arr = np.concatenate(pieces, axis=0)
    keep = (arr[:, 0] != arr[:, 2]) | (arr[:, 1] != arr[:, 3])
    return arr[keep]


def _pattern_path(
    x0: int, y0: int, x1: int, y1: int, kind: int, bend: int
) -> list[tuple[int, int]]:
    """Materialize a chosen pattern as an explicit tile sequence."""

    def straight(a: tuple[int, int], b: tuple[int, int]) -> list[tuple[int, int]]:
        ax, ay = a
        bx, by = b
        if ax == bx:
            step = 1 if by >= ay else -1
            return [(ax, y) for y in range(ay, by + step, step)]
        step = 1 if bx >= ax else -1
        return [(x, ay) for x in range(ax, bx + step, step)]

    if kind == 0:  # HVH with bend column `bend`
        waypoints = [(x0, y0), (bend, y0), (bend, y1), (x1, y1)]
    else:  # VHV with bend row `bend`
        waypoints = [(x0, y0), (x0, bend), (x1, bend), (x1, y1)]
    path: list[tuple[int, int]] = [waypoints[0]]
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        path.extend(straight(a, b)[1:])
    return path


class GlobalRouter:
    """Routes a placed design on its device's interconnect tile grid."""

    def __init__(self, design: Design, config: RouterConfig | None = None):
        self.design = design
        self.config = config or RouterConfig()
        device = design.device
        self.grid_w = device.tile_cols
        self.grid_h = device.tile_rows
        self.short_cap = device.short_capacity
        self.global_cap = device.global_capacity

    # -- pattern routing core ---------------------------------------------------

    @staticmethod
    def _h_run_cost(ps: np.ndarray, xa, xb, y):
        """Cost of the horizontal run covering boundaries xa..xb-1 at row y.

        ``ps`` is the prefix sum of horizontal edge costs along axis 0
        (shape ``(grid_w, grid_h)`` with a zero row prepended).
        """
        lo = np.minimum(xa, xb)
        hi = np.maximum(xa, xb)
        return ps[hi, y] - ps[lo, y]

    @staticmethod
    def _v_run_cost(ps: np.ndarray, x, ya, yb):
        lo = np.minimum(ya, yb)
        hi = np.maximum(ya, yb)
        return ps[x, hi] - ps[x, lo]

    def _route_class(
        self,
        conns: np.ndarray,
        cap: float,
        demand_unit: float,
        iterations_used: list[int],
        overuse_log: list[float],
    ) -> tuple[np.ndarray, np.ndarray, bool, float]:
        """Negotiated pattern routing for one wire class.

        Returns ``(h_usage, v_usage, converged, wirelength)``.
        """
        cfg = self.config
        gw, gh = self.grid_w, self.grid_h
        m = conns.shape[0]
        if m == 0:
            return np.zeros((gw - 1, gh)), np.zeros((gw, gh - 1)), True, 0.0

        x0, y0, x1, y1 = conns.T
        xm_mid = (x0 + x1) // 2
        ym_mid = (y0 + y1) // 2
        # Detour bends outside the bounding box: essential for straight
        # (degenerate-box) connections, whose in-box patterns all collapse
        # onto the same path and could never escape congestion.
        x_lo = np.minimum(x0, x1)
        x_hi = np.maximum(x0, x1)
        y_lo = np.minimum(y0, y1)
        y_hi = np.maximum(y0, y1)
        x_bends = [x0, x1, xm_mid] + [
            np.clip(x_lo - d, 0, gw - 1) for d in (1, 2)
        ] + [np.clip(x_hi + d, 0, gw - 1) for d in (1, 2)]
        y_bends = [y0, y1, ym_mid] + [
            np.clip(y_lo - d, 0, gh - 1) for d in (1, 2)
        ] + [np.clip(y_hi + d, 0, gh - 1) for d in (1, 2)]

        hist_h = np.zeros((max(gw - 1, 1), gh))
        hist_v = np.zeros((gw, max(gh - 1, 1)))
        h_use = np.zeros_like(hist_h)
        v_use = np.zeros_like(hist_v)
        converged = False
        rng = np.random.default_rng(cfg.seed)

        # Pattern set: HVH with bend column in {x0, x1, mid} and VHV with
        # bend row in {y0, y1, mid} (L shapes appear twice; harmless).
        for iteration in range(cfg.max_iterations):
            over_h = np.maximum(0.0, h_use - cap)
            over_v = np.maximum(0.0, v_use - cap)
            cost_h = 1.0 + cfg.overflow_penalty * (over_h / cap) ** 2 + hist_h
            cost_v = 1.0 + cfg.overflow_penalty * (over_v / cap) ** 2 + hist_v
            # Prefix sums with a leading zero row/col for O(1) run costs.
            ps_h = np.zeros((gw, gh))
            ps_h[1:, :] = np.cumsum(cost_h, axis=0)
            ps_v = np.zeros((gw, gh))
            ps_v[:, 1:] = np.cumsum(cost_v, axis=1)

            best_cost = np.full(m, np.inf)
            best_kind = np.zeros(m, dtype=np.int64)  # 0: HVH, 1: VHV
            best_bend = np.zeros(m, dtype=np.int64)
            for xm in x_bends:
                cost = (
                    self._h_run_cost(ps_h, x0, xm, y0)
                    + self._v_run_cost(ps_v, xm, y0, y1)
                    + self._h_run_cost(ps_h, xm, x1, y1)
                ) + cfg.jitter * rng.random(m)
                better = cost < best_cost
                best_cost = np.where(better, cost, best_cost)
                best_kind = np.where(better, 0, best_kind)
                best_bend = np.where(better, xm, best_bend)
            for ym in y_bends:
                cost = (
                    self._v_run_cost(ps_v, x0, y0, ym)
                    + self._h_run_cost(ps_h, x0, x1, ym)
                    + self._v_run_cost(ps_v, x1, ym, y1)
                ) + cfg.jitter * rng.random(m)
                better = cost < best_cost
                best_cost = np.where(better, cost, best_cost)
                best_kind = np.where(better, 1, best_kind)
                best_bend = np.where(better, ym, best_bend)

            # Rebuild usage from the chosen patterns via difference arrays.
            h_diff = np.zeros((gw + 1, gh))
            v_diff = np.zeros((gw, gh + 1))
            hvh = best_kind == 0
            vhv = ~hvh

            def add_h_runs(xa, xb, yy, mask):
                lo = np.minimum(xa, xb)[mask]
                hi = np.maximum(xa, xb)[mask]
                rows = yy[mask]
                np.add.at(h_diff, (lo, rows), demand_unit)
                np.add.at(h_diff, (hi, rows), -demand_unit)

            def add_v_runs(xx, ya, yb, mask):
                lo = np.minimum(ya, yb)[mask]
                hi = np.maximum(ya, yb)[mask]
                cols = xx[mask]
                np.add.at(v_diff, (cols, lo), demand_unit)
                np.add.at(v_diff, (cols, hi), -demand_unit)

            add_h_runs(x0, best_bend, y0, hvh)
            add_v_runs(best_bend, y0, y1, hvh)
            add_h_runs(best_bend, x1, y1, hvh)
            add_v_runs(x0, y0, best_bend, vhv)
            add_h_runs(x0, x1, best_bend, vhv)
            add_v_runs(x1, best_bend, y1, vhv)

            h_use = np.cumsum(h_diff, axis=0)[: gw - 1, :]
            v_use = np.cumsum(v_diff, axis=1)[:, : gh - 1]

            total_overuse = float(
                np.maximum(0.0, h_use - cap).sum()
                + np.maximum(0.0, v_use - cap).sum()
            )
            overuse_log.append(total_overuse)
            iterations_used[0] = max(iterations_used[0], iteration + 1)
            if total_overuse <= 0.0:
                converged = True
                break
            hist_h += cfg.history_gain * np.maximum(0.0, h_use - cap) / cap
            hist_v += cfg.history_gain * np.maximum(0.0, v_use - cap) / cap

        if cfg.maze_fallback and not converged:
            from .maze import MazeRefiner

            paths = [
                _pattern_path(
                    int(x0[k]), int(y0[k]), int(x1[k]), int(y1[k]),
                    int(best_kind[k]), int(best_bend[k]),
                )
                for k in range(m)
            ]
            refiner = MazeRefiner(capacity=cap, demand_unit=demand_unit)
            h_use, v_use, paths, rerouted = refiner.refine(h_use, v_use, paths)
            total_overuse = float(
                np.maximum(0.0, h_use - cap).sum()
                + np.maximum(0.0, v_use - cap).sum()
            )
            overuse_log.append(total_overuse)
            converged = total_overuse <= 0.0

        wirelength = float(h_use.sum() + v_use.sum()) / demand_unit
        return h_use, v_use, converged, wirelength

    # -- public API --------------------------------------------------------------------

    def route(self) -> RoutingResult:
        """Route the design's current placement."""
        cfg = self.config
        conns = _net_connections(
            self.design, self.grid_w, self.grid_h, cfg.decomposition
        )
        if conns.shape[0]:
            manhattan = np.abs(conns[:, 0] - conns[:, 2]) + np.abs(
                conns[:, 1] - conns[:, 3]
            )
            is_long = manhattan > cfg.global_threshold
        else:
            is_long = np.zeros(0, dtype=bool)

        iterations = [0]
        overuse_log: list[float] = []
        h_s, v_s, conv_s, wl_s = self._route_class(
            conns[~is_long], self.short_cap, 1.0, iterations, overuse_log
        )
        h_g, v_g, conv_g, wl_g = self._route_class(
            conns[is_long],
            self.global_cap,
            1.0 / GLOBAL_SPAN,
            iterations,
            overuse_log,
        )
        residual = float(
            np.maximum(0.0, h_s - self.short_cap).sum()
            + np.maximum(0.0, v_s - self.short_cap).sum()
            + np.maximum(0.0, h_g - self.global_cap).sum()
            + np.maximum(0.0, v_g - self.global_cap).sum()
        )
        return RoutingResult(
            h_short=h_s,
            v_short=v_s,
            h_global=h_g,
            v_global=v_g,
            short_capacity=self.short_cap,
            global_capacity=self.global_cap,
            iterations=iterations[0],
            converged=conv_s and conv_g,
            overuse_history=overuse_log,
            num_connections=int(conns.shape[0]),
            total_wirelength=wl_s + wl_g * GLOBAL_SPAN,
            residual_overuse=residual,
        )


def route_design(design: Design, config: RouterConfig | None = None) -> RoutingResult:
    """Route ``design`` at its current placement."""
    return GlobalRouter(design, config).route()
