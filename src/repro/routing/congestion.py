"""Interconnect-tile congestion levels (Fig. 1) from routing usage.

The contest metric assesses congestion per interconnect tile in four
directions (east, south, west, north), separately for *short* and
*global* wires, on a 0–7 level scale where levels ≥ 4 mean overuse and
are penalized by Eq. 1.  This module quantizes router utilization into
those levels and assembles the per-tile label maps the prediction models
train on.

Level mapping (utilization → level): levels 0–3 split [0, 1] into
quarters (no overuse), and each further 30 % of overuse adds one level —
so the Eq. 1 penalty activates exactly when a boundary's demand exceeds
its capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .router import RoutingResult

__all__ = [
    "NUM_LEVELS",
    "DIRECTIONS",
    "utilization_to_level",
    "CongestionReport",
    "congestion_report",
]

NUM_LEVELS = 8
DIRECTIONS = ("east", "south", "west", "north")

_LEVEL_EDGES = np.array(
    [0.25, 0.50, 0.75, 1.00, 1.30, 1.60, 1.90], dtype=np.float64
)


def utilization_to_level(utilization: np.ndarray) -> np.ndarray:
    """Quantize utilization (demand/capacity) into integer levels 0–7."""
    return np.searchsorted(
        _LEVEL_EDGES, np.asarray(utilization, dtype=np.float64), side="left"
    ).astype(np.int64)


def _directional_utilization(
    h_use: np.ndarray, v_use: np.ndarray, cap: float, gw: int, gh: int
) -> np.ndarray:
    """Per-tile utilization in E/S/W/N order, shape ``(4, gw, gh)``.

    A tile's east utilization is that of the boundary to its east
    neighbour; border tiles have zero utilization outward.
    """
    out = np.zeros((4, gw, gh))
    if h_use.size:
        out[0, :-1, :] = h_use / cap  # east
        out[2, 1:, :] = h_use / cap  # west
    if v_use.size:
        out[3, :, :-1] = v_use / cap  # north
        out[1, :, 1:] = v_use / cap  # south
    return out


@dataclass
class CongestionReport:
    """Congestion levels of a routed placement.

    Attributes
    ----------
    short_levels, global_levels:
        ``(4, gw, gh)`` integer levels per direction (E, S, W, N).
    level_map:
        ``(gw, gh)`` per-tile level: the max over directions and wire
        classes.  This is the ground-truth label map for the prediction
        models (the paper's congestion level map).
    """

    short_levels: np.ndarray
    global_levels: np.ndarray
    level_map: np.ndarray

    def max_short_by_direction(self) -> np.ndarray:
        """``L_short,d`` of Eq. 1: the design's worst short level per direction."""
        return self.short_levels.max(axis=(1, 2))

    def max_global_by_direction(self) -> np.ndarray:
        """``L_global,d`` of Eq. 1."""
        return self.global_levels.max(axis=(1, 2))

    def congested_fraction(self, threshold: int = 4) -> float:
        """Fraction of tiles at or above ``threshold`` (penalized levels)."""
        return float((self.level_map >= threshold).mean())

    def ascii_map(self) -> str:
        """Fig.-1-style rendering: one digit per tile, origin bottom-left."""
        gw, gh = self.level_map.shape
        rows = []
        for j in reversed(range(gh)):
            rows.append("".join(str(int(self.level_map[i, j])) for i in range(gw)))
        return "\n".join(rows)

    def summary(self) -> str:
        """Vivado-report-style congestion summary text."""
        hist = np.bincount(self.level_map.ravel(), minlength=NUM_LEVELS)
        total = self.level_map.size
        lines = [
            "Congestion Report",
            "-----------------",
            f"tiles: {self.level_map.shape[0]} x {self.level_map.shape[1]}",
            "",
            f"{'level':>5} {'tiles':>7} {'%':>7}  note",
        ]
        for level, count in enumerate(hist):
            note = "penalized (Eq. 1)" if level >= 4 else ""
            lines.append(
                f"{level:>5} {int(count):>7} {count / total * 100:>6.2f}%  {note}".rstrip()
            )
        short = self.max_short_by_direction()
        global_ = self.max_global_by_direction()
        for label, levels in (("short", short), ("global", global_)):
            lines.append(
                f"max {label:<6} E={levels[0]} S={levels[1]} "
                f"W={levels[2]} N={levels[3]}"
            )
        return "\n".join(lines)


def congestion_report(result: RoutingResult) -> CongestionReport:
    """Quantize a routing result into the contest's congestion levels."""
    gw = result.h_short.shape[0] + 1 if result.h_short.size else result.v_short.shape[0]
    gh = result.v_short.shape[1] + 1 if result.v_short.size else result.h_short.shape[1]
    gw = max(gw, result.v_short.shape[0], result.h_global.shape[0] + 1)
    gh = max(gh, result.h_short.shape[1], result.v_global.shape[1] + 1)

    short_util = _directional_utilization(
        result.h_short, result.v_short, result.short_capacity, gw, gh
    )
    global_util = _directional_utilization(
        result.h_global, result.v_global, result.global_capacity, gw, gh
    )
    short_levels = utilization_to_level(short_util)
    global_levels = utilization_to_level(global_util)
    level_map = np.maximum(
        short_levels.max(axis=0), global_levels.max(axis=0)
    )
    return CongestionReport(
        short_levels=short_levels,
        global_levels=global_levels,
        level_map=level_map,
    )
