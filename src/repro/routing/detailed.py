"""Detailed-routing effort model: S_DR and T_P&R.

The contest derives ``S_DR`` from the number of iterations the Vivado
detailed router needs — more iterations mean congestion is hurting
routability.  Vivado is proprietary, so this module models that effort
from observable global-routing behaviour (DESIGN.md §2): the negotiated
-congestion iteration count, residual overuse, and the amount of
congested area all drive detailed-routing effort in the same direction
they drive Vivado's rip-up-and-reroute iterations.

The model is calibrated so well-behaved placements land near the
paper's observed floor (S_DR ≈ 6–8) and badly congested ones near its
ceiling (S_DR ≈ 11–15); ``T_P&R`` (hours) similarly spans the paper's
0.3–1.0 range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .congestion import CongestionReport
from .router import RoutingResult

__all__ = ["DetailedRoutingModel", "DetailedRoutingOutcome"]

_BASE_ITERATIONS = 5.0
_BASE_HOURS = 0.28


@dataclass
class DetailedRoutingOutcome:
    """Modeled detailed-routing effort."""

    iterations: int  # S_DR
    hours: float  # T_P&R, in hours

    @property
    def s_dr(self) -> int:
        return self.iterations


class DetailedRoutingModel:
    """Maps global-routing observables to (S_DR, T_P&R)."""

    def __init__(
        self,
        base_iterations: float = _BASE_ITERATIONS,
        base_hours: float = _BASE_HOURS,
    ) -> None:
        self.base_iterations = base_iterations
        self.base_hours = base_hours

    def evaluate(
        self, routing: RoutingResult, report: CongestionReport
    ) -> DetailedRoutingOutcome:
        # Effort drivers, each dimensionless:
        # 1. negotiation iterations the global router burned (0..max);
        negotiation = max(0, routing.iterations - 1)
        # 2. residual overuse the detailed router must untangle;
        residual_norm = routing.residual_overuse / max(routing.num_connections, 1)
        # 3. spread of penalized congestion (levels >= 4) across the die;
        hot_fraction = report.congested_fraction(threshold=4)
        # 4. worst-tile pressure beyond capacity.
        peak = max(0.0, routing.max_utilization() - 1.0)

        iterations = (
            self.base_iterations
            + 0.55 * negotiation
            + 18.0 * residual_norm
            + 25.0 * hot_fraction
            + 2.2 * peak
        )
        iterations = int(np.clip(round(iterations), 4, 20))

        # Runtime grows with both effort and die-wide congested area.
        hours = (
            self.base_hours
            + 0.032 * (iterations - self.base_iterations)
            + 1.6 * hot_fraction
            + 0.12 * peak
            + 0.02 * negotiation
        )
        hours = float(np.clip(hours, 0.15, 2.5))
        return DetailedRoutingOutcome(iterations=iterations, hours=hours)
