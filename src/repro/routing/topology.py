"""Net decomposition topologies: MST and single-trunk Steiner trees.

The router splits each multi-pin net into two-pin connections.  The
baseline is a Prim MST over the pin tiles; this module adds the classic
**single-trunk Steiner tree** (a horizontal trunk at the median pin row
with a vertical branch per pin), which inserts Steiner points and often
shortens wide nets.  ``decompose_net(pts, mode="best")`` evaluates both
and keeps the shorter — a lightweight stand-in for FLUTE-style RSMT
construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mst_connections",
    "trunk_steiner_connections",
    "connections_length",
    "decompose_net",
    "DECOMPOSITIONS",
]

DECOMPOSITIONS = ("mst", "stst", "best")


def connections_length(conns: np.ndarray) -> float:
    """Total manhattan length of a two-pin connection list."""
    if conns.size == 0:
        return 0.0
    return float(
        (np.abs(conns[:, 0] - conns[:, 2]) + np.abs(conns[:, 1] - conns[:, 3])).sum()
    )


def mst_connections(pts: np.ndarray) -> np.ndarray:
    """Prim MST over unique points; returns an ``(k-1, 4)`` edge array."""
    pts = np.unique(np.asarray(pts, dtype=np.int64), axis=0)
    k = pts.shape[0]
    if k < 2:
        return np.zeros((0, 4), dtype=np.int64)
    conns = []
    in_tree = np.zeros(k, dtype=bool)
    in_tree[0] = True
    dist = np.abs(pts[:, 0] - pts[0, 0]) + np.abs(pts[:, 1] - pts[0, 1])
    parent = np.zeros(k, dtype=np.int64)
    for _ in range(k - 1):
        masked = np.where(in_tree, np.iinfo(np.int64).max, dist)
        nxt = int(np.argmin(masked))
        in_tree[nxt] = True
        p = int(parent[nxt])
        conns.append((pts[p, 0], pts[p, 1], pts[nxt, 0], pts[nxt, 1]))
        nd = np.abs(pts[:, 0] - pts[nxt, 0]) + np.abs(pts[:, 1] - pts[nxt, 1])
        closer = nd < dist
        dist = np.where(closer, nd, dist)
        parent = np.where(closer, nxt, parent)
    return np.asarray(conns, dtype=np.int64)


def trunk_steiner_connections(pts: np.ndarray) -> np.ndarray:
    """Single-trunk Steiner tree: horizontal trunk at the median row.

    Each pin hangs off the trunk by a vertical branch at its own column;
    the trunk is split into segments between consecutive branch columns.
    Steiner points (column, trunk-row) appear as connection endpoints.
    """
    pts = np.unique(np.asarray(pts, dtype=np.int64), axis=0)
    k = pts.shape[0]
    if k < 2:
        return np.zeros((0, 4), dtype=np.int64)
    trunk_y = int(np.median(pts[:, 1]))
    columns = np.unique(pts[:, 0])
    conns: list[tuple[int, int, int, int]] = []
    # Trunk segments between consecutive branch columns.
    for xa, xb in zip(columns[:-1], columns[1:]):
        conns.append((int(xa), trunk_y, int(xb), trunk_y))
    # Vertical branches from each pin to the trunk.
    for x, y in pts:
        if y != trunk_y:
            conns.append((int(x), int(y), int(x), trunk_y))
    return np.asarray(conns, dtype=np.int64)


def decompose_net(pts: np.ndarray, mode: str = "mst") -> np.ndarray:
    """Two-pin connections for a net's pin tiles under ``mode``.

    ``mode="best"`` evaluates MST and single-trunk Steiner and returns
    the shorter decomposition.
    """
    if mode not in DECOMPOSITIONS:
        raise ValueError(f"unknown decomposition {mode!r}; use one of {DECOMPOSITIONS}")
    if mode == "mst":
        return mst_connections(pts)
    if mode == "stst":
        return trunk_steiner_connections(pts)
    mst = mst_connections(pts)
    stst = trunk_steiner_connections(pts)
    if connections_length(stst) < connections_length(mst):
        return stst
    return mst
