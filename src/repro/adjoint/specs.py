"""Machine-checkable vjp specs for every differentiable primitive.

One :class:`Case` = one concrete configuration of one primitive (op,
shapes, stride/padding/axis/keepdims, broadcast pattern) plus a builder
that produces the callable and its leaf arrays.  The registry is the
single source of truth for three consumers:

* the derivative audit harness (:mod:`repro.adjoint.gradcheck`) runs a
  central-difference check per case — O(#op-kinds), not O(#params);
* model audits (``repro gradcheck <model>``) select the cases whose
  ``op_kind`` appears on the model's captured tape;
* the coverage test (``tests/adjoint/test_gradcheck_ops.py``) asserts
  that every public op in ``repro.nn.functional.__all__`` and every
  differentiable ``Tensor`` method is targeted by at least one case.

``code`` is ``REPRO204`` for plain derivative checks and ``REPRO202``
for the dedicated broadcast configurations that exercise the
``_unbroadcast`` reduction contract.  ``scale`` relaxes the float64
tolerance model for ops with deeper accumulation chains (convolutions,
normalizations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import concatenate, stack

__all__ = [
    "Case",
    "CASES",
    "cases_for",
    "op_kinds",
    "covered_targets",
    "UNCOVERED",
]


@dataclass(frozen=True)
class Case:
    """One gradcheckable configuration of one primitive."""

    name: str  # unique, e.g. "conv2d/k3-s2-p1-bias"
    target: str  # public symbol covered ("conv2d", "Tensor.__add__", ...)
    op_kind: str  # op name this case records on the tape
    build: Callable[[np.random.Generator], tuple[Callable, tuple[np.ndarray, ...]]]
    scale: float = 1.0  # tolerance multiplier (accumulation depth)
    code: str = "REPRO204"


def _n(rng, *shape):
    return rng.standard_normal(shape)


def _away_from_zero(a, margin=0.25):
    """Shift values out of (-margin, margin): keeps FD clear of kinks."""
    return a + np.sign(a) * margin + (a == 0) * margin


def _positive(a, floor=0.5):
    return np.abs(a) + floor


CASES: list[Case] = []


def _case(name, target, op_kind, *, scale=1.0, code="REPRO204"):
    """Register the decorated builder as a :class:`Case`."""

    def decorator(build):
        CASES.append(Case(name, target, op_kind, build, scale, code))
        return build

    return decorator


# -- arithmetic ----------------------------------------------------------------


@_case("add/same-shape", "Tensor.__add__", "__add__")
def _(rng):
    return lambda a, b: a + b, (_n(rng, 3, 4), _n(rng, 3, 4))


@_case("add/radd-scalar", "Tensor.__radd__", "__add__")
def _(rng):
    return lambda a: 2.5 + a, (_n(rng, 3, 4),)


@_case("add/broadcast-(3,1,4)x(2,4)", "Tensor.__add__", "__add__", code="REPRO202")
def _(rng):
    return lambda a, b: a + b, (_n(rng, 3, 1, 4), _n(rng, 2, 4))


@_case("add/broadcast-size1-(1,1)x(3,4)", "Tensor.__add__", "__add__", code="REPRO202")
def _(rng):
    return lambda a, b: a + b, (_n(rng, 1, 1), _n(rng, 3, 4))


@_case("sub/same-shape", "Tensor.__sub__", "__sub__")
def _(rng):
    return lambda a, b: a - b, (_n(rng, 2, 5), _n(rng, 2, 5))


@_case("sub/rsub-scalar", "Tensor.__rsub__", "__sub__")
def _(rng):
    return lambda a: 1.5 - a, (_n(rng, 4),)


@_case("sub/broadcast-(3,1)x(1,4)", "Tensor.__sub__", "__sub__", code="REPRO202")
def _(rng):
    return lambda a, b: a - b, (_n(rng, 3, 1), _n(rng, 1, 4))


@_case("neg", "Tensor.__neg__", "__neg__")
def _(rng):
    return lambda a: -a, (_n(rng, 3, 4),)


@_case("mul/same-shape", "Tensor.__mul__", "__mul__")
def _(rng):
    return lambda a, b: a * b, (_n(rng, 3, 4), _n(rng, 3, 4))


@_case("mul/rmul-scalar", "Tensor.__rmul__", "__mul__")
def _(rng):
    return lambda a: 3.0 * a, (_n(rng, 2, 3),)


@_case("mul/broadcast-(2,3,1)x(3,4)", "Tensor.__mul__", "__mul__", code="REPRO202")
def _(rng):
    return lambda a, b: a * b, (_n(rng, 2, 3, 1), _n(rng, 3, 4))


@_case("div/same-shape", "Tensor.__truediv__", "__truediv__")
def _(rng):
    return lambda a, b: a / b, (_n(rng, 3, 4), _positive(_n(rng, 3, 4)))


@_case("div/rdiv-scalar", "Tensor.__rtruediv__", "__truediv__")
def _(rng):
    return lambda a: 2.0 / a, (_positive(_n(rng, 3, 4)),)


@_case("div/broadcast-(3,1,4)x(4,)", "Tensor.__truediv__", "__truediv__", code="REPRO202")
def _(rng):
    return lambda a, b: a / b, (_n(rng, 3, 1, 4), _positive(_n(rng, 4)))


@_case("pow/square", "Tensor.__pow__", "__pow__")
def _(rng):
    return lambda a: a**2, (_n(rng, 3, 4),)


@_case("pow/cube", "Tensor.__pow__", "__pow__")
def _(rng):
    return lambda a: a**3, (_n(rng, 2, 5),)


@_case("pow/half-positive-base", "Tensor.__pow__", "__pow__")
def _(rng):
    return lambda a: a**0.5, (_positive(_n(rng, 3, 4)),)


@_case("pow/fractional-positive-base", "Tensor.__pow__", "__pow__")
def _(rng):
    return lambda a: a**1.5, (_positive(_n(rng, 3, 4)),)


@_case("pow/negative-exponent", "Tensor.__pow__", "__pow__")
def _(rng):
    return lambda a: a**-1, (_positive(_n(rng, 3, 4)),)


@_case("pow/zero-exponent-with-zero-base", "Tensor.__pow__", "__pow__")
def _(rng):
    # d/dx x**0 == 0 everywhere, including x == 0 (regression: the
    # naive formula evaluates 0 * 0**-1 == nan there).
    a = _n(rng, 3, 4)
    a.flat[0] = 0.0
    return lambda t: t**0, (a,)


@_case("sqrt", "Tensor.sqrt", "__pow__")
def _(rng):
    return lambda a: a.sqrt(), (_positive(_n(rng, 3, 4)),)


@_case("matmul/2d", "Tensor.__matmul__", "__matmul__")
def _(rng):
    return lambda a, b: a @ b, (_n(rng, 3, 4), _n(rng, 4, 5))


@_case("matmul/batched", "Tensor.__matmul__", "__matmul__")
def _(rng):
    return lambda a, b: a @ b, (_n(rng, 2, 3, 4), _n(rng, 2, 4, 5))


@_case("matmul/broadcast-batch", "Tensor.__matmul__", "__matmul__", code="REPRO202")
def _(rng):
    return lambda a, b: a @ b, (_n(rng, 2, 1, 3, 4), _n(rng, 5, 4, 6))


# -- reductions ----------------------------------------------------------------


@_case("sum/all", "Tensor.sum", "sum")
def _(rng):
    return lambda a: a.sum(), (_n(rng, 3, 4),)


@_case("sum/axis1-keepdims", "Tensor.sum", "sum")
def _(rng):
    return lambda a: a.sum(axis=1, keepdims=True), (_n(rng, 3, 4, 2),)


@_case("sum/axis-tuple", "Tensor.sum", "sum")
def _(rng):
    return lambda a: a.sum(axis=(0, 2)), (_n(rng, 3, 4, 2),)


@_case("mean/all", "Tensor.mean", "sum")
def _(rng):
    return lambda a: a.mean(), (_n(rng, 3, 4),)


@_case("mean/axis-keepdims", "Tensor.mean", "sum")
def _(rng):
    return lambda a: a.mean(axis=-1, keepdims=True), (_n(rng, 2, 3, 4),)


def _distinct(rng, *shape):
    """Values with pairwise gaps: keeps FD away from max ties."""
    a = rng.permutation(np.arange(float(np.prod(shape))))
    return (a.reshape(shape) * 0.37) - 0.5 * float(np.prod(shape)) * 0.37 * 0.5


@_case("max/all", "Tensor.max", "max")
def _(rng):
    return lambda a: a.max(), (_distinct(rng, 3, 4),)


@_case("max/axis-keepdims", "Tensor.max", "max")
def _(rng):
    return lambda a: a.max(axis=1, keepdims=True), (_distinct(rng, 3, 4),)


@_case("max/neg-axis", "Tensor.max", "max")
def _(rng):
    return lambda a: a.max(axis=-1), (_distinct(rng, 2, 3, 4),)


# -- shape manipulation --------------------------------------------------------


@_case("reshape/merge", "Tensor.reshape", "reshape")
def _(rng):
    return lambda a: a.reshape(4, 6), (_n(rng, 2, 3, 4),)


@_case("reshape/infer", "Tensor.reshape", "reshape")
def _(rng):
    return lambda a: a.reshape(-1, 2), (_n(rng, 2, 3, 4),)


@_case("transpose/reverse", "Tensor.transpose", "transpose")
def _(rng):
    return lambda a: a.transpose(), (_n(rng, 2, 3, 4),)


@_case("transpose/negative-axes", "Tensor.transpose", "transpose")
def _(rng):
    return lambda a: a.transpose((0, -1, -2)), (_n(rng, 2, 3, 4),)


@_case("swapaxes", "Tensor.swapaxes", "transpose")
def _(rng):
    return lambda a: a.swapaxes(0, 2), (_n(rng, 2, 3, 4),)


@_case("getitem/strided-slice", "Tensor.__getitem__", "__getitem__")
def _(rng):
    return lambda a: a[::2, 1:], (_n(rng, 5, 4),)


@_case("getitem/int-index", "Tensor.__getitem__", "__getitem__")
def _(rng):
    return lambda a: a[1], (_n(rng, 3, 4),)


@_case("getitem/fancy-repeated", "Tensor.__getitem__", "__getitem__")
def _(rng):
    # Repeated fancy indices must scatter-ADD (np.add.at), not assign.
    idx = np.array([0, 1, 1, 2])
    return lambda a: a[idx], (_n(rng, 3, 4),)


@_case("concatenate/axis1", "concatenate", "concatenate")
def _(rng):
    return (
        lambda a, b, c: concatenate([a, b, c], axis=1),
        (_n(rng, 2, 2), _n(rng, 2, 3), _n(rng, 2, 1)),
    )


@_case("concatenate/neg-axis", "concatenate", "concatenate")
def _(rng):
    return (
        lambda a, b: concatenate([a, b], axis=-1),
        (_n(rng, 2, 3, 2), _n(rng, 2, 3, 4)),
    )


@_case("stack/axis0", "stack", "stack")
def _(rng):
    return (
        lambda a, b, c: stack([a, b, c], axis=0),
        (_n(rng, 2, 3), _n(rng, 2, 3), _n(rng, 2, 3)),
    )


@_case("stack/neg-axis", "stack", "stack")
def _(rng):
    return lambda a, b: stack([a, b], axis=-1), (_n(rng, 2, 3), _n(rng, 2, 3))


# -- elementwise nonlinearities ------------------------------------------------


@_case("exp", "Tensor.exp", "exp")
def _(rng):
    return lambda a: a.exp(), (_n(rng, 3, 4),)


@_case("log", "Tensor.log", "log")
def _(rng):
    return lambda a: a.log(), (_positive(_n(rng, 3, 4)),)


@_case("tanh", "Tensor.tanh", "tanh")
def _(rng):
    return lambda a: a.tanh(), (_n(rng, 3, 4),)


@_case("sigmoid", "Tensor.sigmoid", "sigmoid")
def _(rng):
    return lambda a: a.sigmoid(), (_n(rng, 3, 4),)


@_case("relu/away-from-kink", "Tensor.relu", "relu")
def _(rng):
    return lambda a: a.relu(), (_away_from_zero(_n(rng, 3, 4)),)


@_case("gelu", "Tensor.gelu", "gelu")
def _(rng):
    return lambda a: a.gelu(), (_n(rng, 3, 4),)


# -- nn.functional -------------------------------------------------------------


@_case("pad2d/p2", "pad2d", "pad2d")
def _(rng):
    return lambda a: F.pad2d(a, 2), (_n(rng, 2, 3, 4, 4),)


@_case("conv2d/k3-s1-p0", "conv2d", "conv2d", scale=10.0)
def _(rng):
    return (
        lambda x, w: F.conv2d(x, w),
        (_n(rng, 2, 3, 5, 5), _n(rng, 4, 3, 3, 3)),
    )


@_case("conv2d/k3-s2-p1-bias", "conv2d", "conv2d", scale=10.0)
def _(rng):
    return (
        lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
        (_n(rng, 2, 3, 6, 6), _n(rng, 4, 3, 3, 3), _n(rng, 4)),
    )


@_case("conv2d/k1-s1-p0", "conv2d", "conv2d", scale=10.0)
def _(rng):
    return (
        lambda x, w: F.conv2d(x, w),
        (_n(rng, 1, 2, 4, 4), _n(rng, 3, 2, 1, 1)),
    )


@_case("conv2d/k2-s2-p0", "conv2d", "conv2d", scale=10.0)
def _(rng):
    return (
        lambda x, w: F.conv2d(x, w, stride=2),
        (_n(rng, 2, 2, 6, 6), _n(rng, 3, 2, 2, 2)),
    )


@_case("conv_transpose2d/k3-s1-p0", "conv_transpose2d", "conv_transpose2d", scale=10.0)
def _(rng):
    return (
        lambda x, w: F.conv_transpose2d(x, w),
        (_n(rng, 2, 3, 4, 4), _n(rng, 3, 4, 3, 3)),
    )


@_case("conv_transpose2d/k3-s2-p1-bias", "conv_transpose2d", "conv_transpose2d", scale=10.0)
def _(rng):
    # The prime-suspect configuration: overlapping scatter windows at
    # stride 2 make the weight gradient easy to get subtly wrong.
    return (
        lambda x, w, b: F.conv_transpose2d(x, w, b, stride=2, padding=1),
        (_n(rng, 2, 3, 4, 4), _n(rng, 3, 4, 3, 3), _n(rng, 4)),
    )


@_case("conv_transpose2d/k2-s2-p0", "conv_transpose2d", "conv_transpose2d", scale=10.0)
def _(rng):
    return (
        lambda x, w: F.conv_transpose2d(x, w, stride=2),
        (_n(rng, 1, 2, 3, 3), _n(rng, 2, 3, 2, 2)),
    )


@_case("max_pool2d/k2", "max_pool2d", "max_pool2d")
def _(rng):
    return lambda a: F.max_pool2d(a, 2), (_distinct(rng, 2, 2, 4, 4),)


@_case("max_pool2d/k4", "max_pool2d", "max_pool2d")
def _(rng):
    return lambda a: F.max_pool2d(a, 4), (_distinct(rng, 1, 2, 4, 4),)


@_case("avg_pool2d/k2", "avg_pool2d", "avg_pool2d")
def _(rng):
    return lambda a: F.avg_pool2d(a, 2), (_n(rng, 2, 2, 4, 4),)


@_case("global_avg_pool2d", "global_avg_pool2d", "sum")
def _(rng):
    return lambda a: F.global_avg_pool2d(a), (_n(rng, 2, 3, 4, 4),)


@_case("upsample_nearest/s2", "upsample_nearest", "upsample_nearest")
def _(rng):
    return lambda a: F.upsample_nearest(a, 2), (_n(rng, 2, 2, 3, 3),)


@_case("upsample_nearest/s3", "upsample_nearest", "upsample_nearest")
def _(rng):
    return lambda a: F.upsample_nearest(a, 3), (_n(rng, 1, 2, 2, 2),)


@_case("softmax/last-axis", "softmax", "softmax")
def _(rng):
    return lambda a: F.softmax(a, axis=-1), (_n(rng, 2, 3, 5),)


@_case("softmax/axis1", "softmax", "softmax")
def _(rng):
    return lambda a: F.softmax(a, axis=1), (_n(rng, 2, 3, 5),)


@_case("log_softmax/last-axis", "log_softmax", "log_softmax")
def _(rng):
    return lambda a: F.log_softmax(a, axis=-1), (_n(rng, 2, 3, 5),)


@_case("log_softmax/axis0", "log_softmax", "log_softmax")
def _(rng):
    return lambda a: F.log_softmax(a, axis=0), (_n(rng, 4, 3),)


@_case("batch_norm/training", "batch_norm", "batch_norm", scale=100.0)
def _(rng):
    rm, rv = np.zeros(3), np.ones(3)
    return (
        lambda x, g, b: F.batch_norm(x, g, b, rm.copy(), rv.copy(), True),
        (_n(rng, 4, 3, 2, 2), _positive(_n(rng, 3)), _n(rng, 3)),
    )


@_case("batch_norm/eval", "batch_norm", "batch_norm", scale=100.0)
def _(rng):
    rm = _n(rng, 3) * 0.1
    rv = _positive(_n(rng, 3))
    return (
        lambda x, g, b: F.batch_norm(x, g, b, rm, rv, False),
        (_n(rng, 2, 3, 2, 2), _positive(_n(rng, 3)), _n(rng, 3)),
    )


@_case("layer_norm", "layer_norm", "layer_norm", scale=100.0)
def _(rng):
    return (
        lambda x, g, b: F.layer_norm(x, g, b),
        (_n(rng, 2, 4, 8), _positive(_n(rng, 8)), _n(rng, 8)),
    )


@_case("dropout/p0.3", "dropout", "dropout")
def _(rng):
    # A fresh, identically-seeded generator per call keeps the mask
    # constant across the finite-difference evaluations.
    return (
        lambda a: F.dropout(a, 0.3, True, np.random.default_rng(7)),
        (_n(rng, 4, 5),),
    )


# Public names that deliberately have no gradcheck case, with the reason
# the coverage test accepts.
UNCOVERED: dict[str, str] = {
    "im2col": "ndarray helper (not a Tensor op; exercised via conv2d cases)",
    "col2im": "ndarray helper (not a Tensor op; exercised via conv2d cases)",
    "Tensor.__radd__": "records __add__ (covered by add/radd-scalar)",
    "Tensor.__rmul__": "records __mul__ (covered by mul/rmul-scalar)",
    "Tensor.__rsub__": "delegates to __sub__ (covered by sub/rsub-scalar)",
    "Tensor.__rtruediv__": "delegates to __truediv__ (covered by div/rdiv-scalar)",
}


def cases_for(kinds) -> list[Case]:
    """Cases whose recorded op kind is in ``kinds``."""
    kinds = set(kinds)
    return [c for c in CASES if c.op_kind in kinds]


def op_kinds() -> tuple[str, ...]:
    return tuple(dict.fromkeys(c.op_kind for c in CASES))


def covered_targets() -> set[str]:
    return {c.target for c in CASES}


_names = [c.name for c in CASES]
if len(set(_names)) != len(_names):  # pragma: no cover - registry sanity
    raise RuntimeError("duplicate gradcheck case names")
