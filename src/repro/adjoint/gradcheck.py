"""Randomized central-difference derivative audit (REPRO204/202).

For each registered :class:`~repro.adjoint.specs.Case` the harness
compares the analytic vjp (one backward pass against a fixed random
cotangent ``w``) with central differences of the scalar projection
``L(x) = sum(f(x) * w)``, element by element.

Tolerance model (float64).  With step ``h_i = eps**(1/3) * max(1, |x_i|)``
the central difference has truncation error ``~ |f'''| h**2 / 6`` and
rounding error ``~ eps * |L| / h``; both are minimized to a *relative*
error of order ``eps**(2/3) ≈ 3.7e-11`` at that step.  The harness
allows ``1e4`` times that optimum (per-case ``scale`` widens it further
for deep accumulation chains like convolutions and normalizations) —
still nine orders of magnitude below the O(1) error of a genuinely
wrong vjp formula, so the check cannot mask a real defect.

Kink probes.  Finite differences are meaningless *at* a subgradient
kink, so ``relu``/``max``/``max_pool2d`` get dedicated probes at exact
kink points instead: the analytic gradient must be finite, lie in the
subgradient hull, conserve gradient mass across ties, and (the
substrate's chosen convention) split mass evenly among ties —
consistently between ``Tensor.max`` and ``max_pool2d``.

Failures are REPROxxx findings anchored at the offending ``def
backward`` line (honouring ``# noqa`` there).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.ir.passes import filter_noqa
from repro.lint.rules import LintDiagnostic
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

from .capture import capture_tape
from .specs import CASES, Case, cases_for

__all__ = [
    "fd_tolerance",
    "gradcheck_case",
    "run_kink_probes",
    "run_gradcheck",
]

_EPS = float(np.finfo(np.float64).eps)


def fd_tolerance(loss_scale: float, scale: float = 1.0) -> tuple[float, float]:
    """(rtol, atol) for comparing analytic vs central-difference grads."""
    base = _EPS ** (2.0 / 3.0)  # optimal central-difference relative error
    rtol = 1e4 * base * scale
    atol = 1e4 * base * max(1.0, abs(loss_scale)) * scale
    return rtol, atol


def _finding(code: str, src: str, message: str) -> LintDiagnostic:
    path, _, lineno = src.rpartition(":")
    line = int(lineno) if lineno.isdigit() else 0
    return LintDiagnostic(path or src or "<gradcheck>", line, 0, code, message)


def gradcheck_case(case: Case, seed: int = 0) -> dict:
    """Run one case; returns a JSON-ready result with pass/fail detail."""
    # crc32 keys the rng stably per case (hash() is salted per process).
    rng = np.random.default_rng([seed, zlib.crc32(case.name.encode())])
    fn, arrays = case.build(rng)
    arrays = tuple(np.asarray(a, dtype=np.float64) for a in arrays)

    # Analytic pass, capturing the tape to attribute the op's source.
    leaves = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    with capture_tape() as cap:
        out = fn(*leaves)
        w = rng.standard_normal(out.shape)
        out.backward(w)
    analytic = [
        np.zeros_like(a) if t.grad is None else np.asarray(t.grad, dtype=np.float64)
        for a, t in zip(arrays, leaves)
    ]
    src = next((r.src for r in cap.records if r.op == case.op_kind), "")

    def loss(values) -> float:
        with no_grad():
            result = fn(*[Tensor(v) for v in values])
        return float((result.data * w).sum())

    base_loss = loss(arrays)
    rtol, atol = fd_tolerance(base_loss, case.scale)

    max_abs_err = 0.0
    max_rel_err = 0.0
    worst: tuple | None = None
    for k, a in enumerate(arrays):
        for idx in np.ndindex(a.shape):
            h = _EPS ** (1.0 / 3.0) * max(1.0, abs(a[idx]))
            bumped = [v.copy() if i == k else v for i, v in enumerate(arrays)]
            bumped[k][idx] += h
            hi = loss(bumped)
            bumped[k][idx] -= 2.0 * h
            lo = loss(bumped)
            numeric = (hi - lo) / (2.0 * h)
            got = analytic[k][idx]
            err = abs(got - numeric)
            denom = max(abs(got), abs(numeric), 1.0)
            max_abs_err = max(max_abs_err, err)
            max_rel_err = max(max_rel_err, err / denom)
            if err > atol + rtol * max(abs(got), abs(numeric)):
                if worst is None or err > worst[3]:
                    worst = (k, idx, numeric, err, got)

    result = {
        "name": case.name,
        "target": case.target,
        "op_kind": case.op_kind,
        "code": case.code,
        "elements": int(sum(a.size for a in arrays)),
        "max_abs_err": float(max_abs_err),
        "max_rel_err": float(max_rel_err),
        "rtol": rtol,
        "atol": atol,
        "passed": worst is None,
        "src": src,
    }
    if worst is not None:
        k, idx, numeric, err, got = worst
        result["worst"] = {
            "arg": k,
            "index": list(idx),
            "analytic": float(got),
            "numeric": float(numeric),
            "abs_err": float(err),
        }
    return result


# -- kink-point probes ---------------------------------------------------------


def _probe_relu_at_zero() -> list[str]:
    x = Tensor(np.array([-1.0, 0.0, 0.0, 2.0]), requires_grad=True)
    w = np.array([3.0, 5.0, -7.0, 2.0])
    x.relu().backward(w)
    g = x.grad
    errors = []
    if not np.all(np.isfinite(g)):
        errors.append(f"relu gradient not finite at kink: {g}")
    # Subgradient hull at 0 is [0, 1] * w; elsewhere exact.
    for i in (1, 2):
        lo, hi = sorted((0.0, w[i]))
        if not (lo - 1e-12 <= g[i] <= hi + 1e-12):
            errors.append(
                f"relu gradient {g[i]} at x=0 outside subgradient hull "
                f"[{lo}, {hi}]"
            )
    if g[0] != 0.0 or g[3] != w[3]:
        errors.append(f"relu gradient wrong away from kink: {g}")
    return errors


def _probe_max_ties() -> list[str]:
    errors = []
    # Row 0 is a 3-way tie; row 1 has a 2-way tie among {2.0, 2.0}.
    data = np.array([[1.0, 1.0, 1.0], [2.0, 0.0, 2.0]])
    x = Tensor(data.copy(), requires_grad=True)
    w = np.array([6.0, -3.0])
    x.max(axis=1).backward(w)
    g = x.grad
    if not np.all(np.isfinite(g)):
        errors.append(f"max gradient not finite at ties: {g}")
    # Conservation: mass over each reduced slot equals the cotangent.
    sums = g.sum(axis=1)
    if not np.allclose(sums, w, atol=1e-12):
        errors.append(f"max tie gradient mass {sums} != cotangent {w}")
    # Mass must stay on argmax entries only.
    if g[1, 1] != 0.0:
        errors.append("max routed gradient to a non-argmax entry")
    # The substrate's convention: even split among ties.
    if not np.allclose(g[0], w[0] / 3.0) or not np.allclose(
        g[1, [0, 2]], w[1] / 2.0
    ):
        errors.append(f"max tie split not even: {g}")
    return errors


def _probe_max_pool_ties() -> list[str]:
    errors = []
    # One all-equal 2x2 window: a 4-way tie.
    x = Tensor(np.full((1, 1, 2, 2), 3.0), requires_grad=True)
    w = np.full((1, 1, 1, 1), 8.0)
    F.max_pool2d(x, 2).backward(w)
    g = x.grad
    if not np.all(np.isfinite(g)):
        errors.append(f"max_pool2d gradient not finite at ties: {g}")
    if not np.isclose(g.sum(), 8.0, atol=1e-12):
        errors.append(f"max_pool2d tie mass {g.sum()} != cotangent 8.0")
    # Consistency with Tensor.max: even split among the 4 tied entries.
    if not np.allclose(g, 2.0):
        errors.append(f"max_pool2d tie split not even: {g}")
    return errors


_KINK_PROBES = {
    "relu": _probe_relu_at_zero,
    "max": _probe_max_ties,
    "max_pool2d": _probe_max_pool_ties,
}


def run_kink_probes(op_kinds=None) -> tuple[list[dict], list[LintDiagnostic]]:
    """Run subgradient probes (all, or only for the given op kinds)."""
    results: list[dict] = []
    findings: list[LintDiagnostic] = []
    for op, probe in _KINK_PROBES.items():
        if op_kinds is not None and op not in set(op_kinds):
            continue
        errors = probe()
        results.append({"name": f"kink/{op}", "op_kind": op, "passed": not errors})
        for message in errors:
            findings.append(
                _finding("REPRO204", "", f"[kink:{op}] {message}")
            )
    return results, findings


def run_gradcheck(op_kinds=None, *, seed: int = 0) -> dict:
    """Audit primitives: all registered cases, or one model's op kinds.

    Returns ``{"cases": [...], "findings": [...], "checked_ops": [...]}``
    where findings are ``# noqa``-filtered REPRO202/204 diagnostics.
    """
    cases = CASES if op_kinds is None else cases_for(op_kinds)
    results = []
    findings: list[LintDiagnostic] = []
    for case in cases:
        result = gradcheck_case(case, seed=seed)
        results.append(result)
        if not result["passed"]:
            w = result.get("worst", {})
            findings.append(
                _finding(
                    case.code,
                    result["src"],
                    f"[{case.name}] analytic {w.get('analytic')} vs "
                    f"central-difference {w.get('numeric')} "
                    f"(|err| {w.get('abs_err'):.3e} > atol {result['atol']:.3e} "
                    f"+ rtol {result['rtol']:.3e})",
                )
            )
    kink_results, kink_findings = run_kink_probes(op_kinds)
    results.extend(kink_results)
    findings.extend(kink_findings)
    return {
        "cases": results,
        "findings": filter_noqa(findings),
        "checked_ops": sorted({c.op_kind for c in cases}),
    }
