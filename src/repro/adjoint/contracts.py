"""Gradient contract checks (REPRO201–203) over a captured tape.

The vjp contract every primitive must honour:

* **REPRO201** — each adjoint accumulated into a parent must have
  exactly the parent's shape and dtype.  numpy's ``+=`` broadcast rules
  would silently accept some mismatches (a ``(n,)`` adjoint into a
  ``(1, n)`` parent) and silently *downcast* others (a float64 adjoint
  into a float32 parent), so this is checked on the raw adjoint before
  the addition.
* **REPRO203** — every ``requires_grad`` parent slot must be
  accumulated into exactly once per closure run: zero means the vjp
  drops a gradient, two means it double-counts, and accumulating into a
  tensor that is not a recorded parent corrupts an unrelated gradient.

REPRO202 (broadcast/``_unbroadcast`` consistency) is the numerical half
of the contract and lives in :mod:`repro.adjoint.gradcheck`, which
finite-difference-checks dedicated broadcast configurations.

Findings anchor at the ``def backward`` line of the offending closure
and honour ``# noqa`` there, like every other REPROxxx diagnostic.
"""

from __future__ import annotations

import numpy as np

from repro.ir.passes import filter_noqa
from repro.lint.rules import LintDiagnostic

from .capture import OpRecord

__all__ = ["check_contracts"]


def _finding(record: OpRecord, code: str, message: str) -> LintDiagnostic:
    path, _, lineno = record.src.rpartition(":")
    line = int(lineno) if lineno.isdigit() else 0
    return LintDiagnostic(path or record.src, line, 0, code, message)


def check_contracts(records: list[OpRecord]) -> list[LintDiagnostic]:
    """Audit every closure run against the vjp contract.

    Returns deduplicated, ``# noqa``-filtered findings (one per
    (code, closure, defect), not one per op instance).
    """
    findings: dict[tuple, LintDiagnostic] = {}

    def report(record: OpRecord, code: str, message: str) -> None:
        f = _finding(record, code, f"[{record.op}] {message}")
        findings.setdefault((f.code, f.path, f.line, f.message), f)

    for record in records:
        if not record.ran:
            continue  # dead branch: the runtime never invoked this vjp
        by_id = {id(p): p for p in record.parents}

        for event in record.events:
            parent = by_id.get(event.target)
            if parent is None:
                report(
                    record,
                    "REPRO203",
                    "backward accumulated into a tensor that is not a "
                    "recorded parent of the op",
                )
                continue
            if event.shape != parent.shape:
                report(
                    record,
                    "REPRO201",
                    f"adjoint shape {event.shape} does not match primal "
                    f"input shape {parent.shape}",
                )
            if np.dtype(event.dtype) != parent.data.dtype:
                report(
                    record,
                    "REPRO201",
                    f"adjoint dtype {np.dtype(event.dtype).name} does not "
                    f"match primal input dtype {parent.data.dtype.name} "
                    "(the += would silently cast)",
                )

        observed = record.observed_counts()
        for target, expected in record.expected_counts().items():
            got = observed.get(target, 0)
            if got == expected:
                continue
            parent = by_id[target]
            what = "dropped" if got < expected else "double-counted"
            report(
                record,
                "REPRO203",
                f"requires_grad parent of shape {parent.shape} was "
                f"accumulated {got}x (expected {expected}x): gradient "
                f"{what}",
            )

    return filter_noqa(sorted(findings.values(), key=lambda f: (f.code, f.path, f.line)))
