"""Backward-pass IR and gradient verification for :mod:`repro.nn`.

The fourth leg of the correctness tooling (after :mod:`repro.lint`,
the runtime sanitizers and the forward symbolic IR of :mod:`repro.ir`):
capture the *backward* pass itself and verify it three independent
ways —

* :mod:`repro.adjoint.graph` — reverse the tape recorded by
  :func:`repro.ir.trace.trace_tape` into an adjoint SSA graph with
  per-op vjp attribution and primal↔adjoint links;
* :mod:`repro.adjoint.capture` / :mod:`repro.adjoint.contracts` —
  observe a real forward+backward and audit every accumulation against
  the vjp contract (REPRO201–203: adjoint shape/dtype, broadcast
  consistency, exactly-once accumulation);
* :mod:`repro.adjoint.gradcheck` / :mod:`repro.adjoint.specs` — a
  randomized central-difference derivative audit per primitive op kind,
  with a principled float64 tolerance model and dedicated kink-point
  probes for subgradient ops (REPRO204);
* :mod:`repro.adjoint.flow` — gradient-flow interval analysis over the
  adjoint graph: provably vanishing/exploding parameter gradients, dead
  ReLUs / saturated sigmoids, detached parameters (REPRO205–207);
* :mod:`repro.adjoint.memory` — forward+backward peak-memory planning
  (tape retention, gradient buffers, backward transients).

Entry points: ``repro gradcheck <model|all>`` and ``repro analyze
--backward`` on the command line, :func:`audit_model` /
:func:`audit_registry` in code.  Findings share the diagnostic format,
rule-code namespace (:mod:`repro.diagnostics`) and ``# noqa``
suppression of :mod:`repro.lint` and :mod:`repro.ir`.
"""

from repro.diagnostics import codes_for

from .capture import AccumEvent, OpRecord, capture_tape
from .contracts import check_contracts
from .flow import (
    EXPLODE_BOUND,
    SATURATION_BOUND,
    VANISH_BOUND,
    flow_analysis,
)
from .gradcheck import fd_tolerance, gradcheck_case, run_gradcheck, run_kink_probes
from .graph import AdjointGraph, AdjointNode, build_adjoint_graph
from .memory import plan_training_memory
from .report import SCHEMA, audit_model, audit_registry, backward_section
from .specs import CASES, UNCOVERED, Case, cases_for, covered_targets, op_kinds

#: rule code -> message, sourced from the central registry.
ADJOINT_RULES = codes_for("adjoint")

__all__ = [
    "ADJOINT_RULES",
    "AccumEvent",
    "AdjointGraph",
    "AdjointNode",
    "CASES",
    "Case",
    "EXPLODE_BOUND",
    "OpRecord",
    "SATURATION_BOUND",
    "SCHEMA",
    "UNCOVERED",
    "VANISH_BOUND",
    "audit_model",
    "audit_registry",
    "backward_section",
    "build_adjoint_graph",
    "capture_tape",
    "cases_for",
    "check_contracts",
    "covered_targets",
    "fd_tolerance",
    "flow_analysis",
    "gradcheck_case",
    "op_kinds",
    "plan_training_memory",
    "run_gradcheck",
    "run_kink_probes",
]
