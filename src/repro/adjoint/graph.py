"""The adjoint SSA graph: backward-pass structure derived from the tape.

:func:`build_adjoint_graph` replays a recorded tape (from
:func:`repro.ir.trace.trace_tape`) in reverse and emits one SSA value
per gradient the runtime will materialize:

* a ``seed`` node for each primal output (the ``backward(grad)`` seed),
* a ``vjp`` node per (tape entry, requires-grad parent) pair — the
  contribution that entry's backward closure accumulates into that
  parent, attributed to the closure's op and source line,
* an ``add`` node wherever a primal value has several consumers and the
  runtime sums their contributions.

Every adjoint node records the primal node whose gradient it is
(``primal``), giving the primal↔adjoint link both directions:
``AdjointGraph.grad_of[primal_id]`` is the final accumulated adjoint.
The graph is the substrate for the gradient-flow interval analysis
(:mod:`repro.adjoint.flow`) and the forward+backward memory model
(:mod:`repro.adjoint.memory`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ir.graph import Graph
from repro.ir.trace import TapeEntry

__all__ = ["AdjointNode", "AdjointGraph", "build_adjoint_graph"]


@dataclass(frozen=True)
class AdjointNode:
    """One SSA gradient value of the backward pass."""

    id: int
    kind: str  # "seed" | "vjp" | "add"
    op: str  # primal op whose vjp produced this ("" for seed/add)
    primal: int  # primal node id this value is the gradient of
    entry: int  # tape entry index (-1 for seed/add)
    inputs: tuple[int, ...]  # adjoint node ids consumed
    shape: tuple[int, ...]
    dtype: np.dtype
    src: str = ""  # vjp closure definition site (path:line)


@dataclass
class AdjointGraph:
    """Adjoint nodes in emission (= reverse-execution topological) order."""

    primal: Graph
    tape: list[TapeEntry]
    nodes: list[AdjointNode] = field(default_factory=list)
    # primal node id -> adjoint node id of its *final* accumulated gradient.
    grad_of: dict[int, int] = field(default_factory=dict)

    def node(self, adjoint_id: int) -> AdjointNode:
        return self.nodes[adjoint_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for n in self.nodes:
            out[n.kind] = out.get(n.kind, 0) + 1
        return out

    def pretty(self, limit: int = 40) -> str:
        lines = []
        for n in self.nodes[:limit]:
            ins = ", ".join(f"^{i}" for i in n.inputs)
            op = f" {n.op}" if n.op else ""
            lines.append(
                f"^{n.id} = {n.kind}{op}(%{n.primal}{'; ' + ins if ins else ''})"
                f" : {n.shape} {np.dtype(n.dtype).name}"
            )
        if len(self.nodes) > limit:
            lines.append(f"... {len(self.nodes) - limit} more")
        return "\n".join(lines)


def build_adjoint_graph(graph: Graph, tape: list[TapeEntry]) -> AdjointGraph:
    """Reverse the tape into adjoint SSA form.

    Mirrors the runtime exactly: entries whose output never receives a
    gradient (dead branches) produce no adjoint nodes, multiple
    contributions to one primal value are folded through ``add`` nodes,
    and non-requires-grad parents (e.g. the network input) receive
    nothing.
    """
    adj = AdjointGraph(primal=graph, tape=list(tape))

    def emit(kind, op, primal_id, entry, inputs, src="") -> AdjointNode:
        pnode = graph.nodes[primal_id]
        node = AdjointNode(
            id=len(adj.nodes),
            kind=kind,
            op=op,
            primal=primal_id,
            entry=entry,
            inputs=tuple(inputs),
            shape=pnode.shape,
            dtype=pnode.dtype,
            src=src,
        )
        adj.nodes.append(node)
        return node

    def accumulate(primal_id: int, contribution: AdjointNode) -> None:
        prev = adj.grad_of.get(primal_id)
        if prev is None:
            adj.grad_of[primal_id] = contribution.id
        else:
            combined = emit(
                "add", "", primal_id, -1, (prev, contribution.id)
            )
            adj.grad_of[primal_id] = combined.id

    for out_id in graph.outputs:
        seed = emit("seed", "", out_id, -1, ())
        adj.grad_of[out_id] = seed.id

    for entry in reversed(tape):
        upstream = adj.grad_of.get(entry.out)
        if upstream is None:
            continue  # dead branch: the runtime never runs this closure
        for pid, requires in zip(entry.parents, entry.parent_requires_grad):
            if not requires or pid is None:
                continue
            vjp = emit(
                "vjp", entry.op, pid, entry.index, (upstream,), src=entry.src
            )
            accumulate(pid, vjp)
    return adj
