"""Audit driver and machine-readable report (schema ``repro.adjoint/v1``).

``audit_model`` runs the full gradient audit for one registry model:

1. **Concrete contract capture** — a real (small) forward+backward under
   :class:`~repro.adjoint.capture.capture_tape`, checked against the
   vjp accumulation contract (REPRO201/203).
2. **Derivative audit** — the central-difference harness
   (:mod:`repro.adjoint.gradcheck`), restricted to the op kinds the
   model actually recorded (REPRO202/204).
3. **Adjoint-graph analyses** — a symbolic ``trace_tape``, the adjoint
   SSA graph, gradient-flow interval analysis (REPRO205–207) and the
   forward+backward training-memory plan.

``backward_section`` is the symbolic half alone; ``repro analyze
--backward`` embeds it into ``repro.ir/v1`` reports so the shared
baseline checker can pin backward invariants too.
"""

from __future__ import annotations

import numpy as np

from repro.diagnostics import is_blocking
from repro.ir.report import serialize_finding
from repro.ir.trace import trace_tape
from repro.nn.tensor import Tensor

from .capture import capture_tape
from .contracts import check_contracts
from .flow import flow_analysis
from .graph import build_adjoint_graph
from .gradcheck import run_gradcheck
from .memory import plan_training_memory

__all__ = ["SCHEMA", "audit_model", "audit_registry", "backward_section"]

SCHEMA = "repro.adjoint/v1"


def backward_section(
    model_name: str, *, preset: str = "fast", grid: int = 64, batch: int = 1
) -> dict:
    """Symbolic backward analyses for one registry model (JSON-ready)."""
    from repro.models.registry import build_model

    model = build_model(model_name, preset=preset, grid=grid)
    graph, tape = trace_tape(
        model, (batch, 6, grid, grid), input_vrange=(0.0, 1.0), name=model_name
    )
    adjoint = build_adjoint_graph(graph, tape)
    flow = flow_analysis(graph, tape, adjoint)
    memory = plan_training_memory(graph, tape)
    return {
        "tape_entries": len(tape),
        "adjoint_nodes": flow["adjoint_nodes"],
        "adjoint_counts": flow["adjoint_counts"],
        "params_total": flow["params_total"],
        "params_connected": flow["params_connected"],
        "memory": memory,
        "findings": [serialize_finding(f) for f in flow["findings"]],
        "failures": [str(f) for f in flow["findings"] if is_blocking(f.code)],
    }


def audit_model(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    seed: int = 0,
) -> dict:
    """Full gradient audit of one registry model."""
    from repro.models.registry import build_model

    model = build_model(model_name, preset=preset, grid=grid)
    rng = np.random.default_rng(seed)
    x = Tensor(rng.random((batch, 6, grid, grid)))
    with capture_tape() as cap:
        out = model(x)
        out.backward(np.ones(out.shape, dtype=out.data.dtype))
    contract_findings = check_contracts(cap.records)

    gradcheck = run_gradcheck(cap.ops_used(), seed=seed)
    backward = backward_section(model_name, preset=preset, grid=grid, batch=batch)

    findings = list(contract_findings) + list(gradcheck["findings"])
    failures = [str(f) for f in findings if is_blocking(f.code)]
    failures.extend(backward["failures"])
    return {
        "schema": SCHEMA,
        "model": model_name,
        "preset": preset,
        "grid": grid,
        "batch": batch,
        "contracts": {
            "records": len(cap.records),
            "ran": sum(1 for r in cap.records if r.ran),
            "ops": list(cap.ops_used()),
            "findings": [serialize_finding(f) for f in contract_findings],
        },
        "gradcheck": {
            "cases": len(gradcheck["cases"]),
            "failed": sum(1 for c in gradcheck["cases"] if not c["passed"]),
            "checked_ops": gradcheck["checked_ops"],
            "case_results": gradcheck["cases"],
            "findings": [serialize_finding(f) for f in gradcheck["findings"]],
        },
        "backward": backward,
        "failures": failures,
    }


def audit_registry(
    models: tuple[str, ...] | None = None,
    *,
    preset: str = "fast",
    grid: int = 64,
    seed: int = 0,
) -> dict:
    """Audit every registry model (or the given subset)."""
    from repro.models.registry import MODEL_NAMES

    reports = [
        audit_model(name, preset=preset, grid=grid, seed=seed)
        for name in (models or MODEL_NAMES)
    ]
    return {"schema": SCHEMA, "reports": reports}
