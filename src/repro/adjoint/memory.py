"""Forward+backward peak-memory planning from the tape.

Extends the forward activation planner (:func:`repro.ir.memory.plan_memory`)
with what training actually retains:

* **Tape retention.**  ``backward()`` walks a topologically-ordered list
  of every tensor reachable from the loss and holds it until the walk
  finishes, so every op output on the tape survives to the end of the
  backward pass — last-use liveness only applies to tensors *off* the
  tape.  Closure-captured intermediates (im2col columns, padded inputs,
  normalized activations) are freed earlier: the runtime drops each
  node's ``_backward`` right after running it, so a captured buffer dies
  at the latest backward step that still needs it.
* **Gradient buffers.**  Each requires-grad tensor's ``.grad`` is born
  at the first closure that accumulates into it (the seed at the start
  of backward for the loss itself) and survives to the end.
* **Backward transients.**  While a closure runs, the adjoint it is
  about to hand to ``_accumulate`` is a fresh temporary; convolutions
  additionally materialize gradient copies of their column/padded
  workspaces.

The timeline is ``0 .. n-1`` forward node positions followed by one
position per tape entry in reverse-execution order; dead branches (ops
whose output never receives a gradient) get no backward position, and
their captured buffers are retained to the end — exactly the leak the
runtime exhibits, since their closures are never run and so never freed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ir.graph import Graph
from repro.ir.trace import TapeEntry

__all__ = ["plan_training_memory"]

# Backward closures of these ops materialize gradient images of their
# captured workspaces (grad_cols/grad_padded) alongside the captures.
_WORKSPACE_GRAD_OPS = {"conv2d", "conv_transpose2d"}


def _nbytes(graph: Graph, node_id: int) -> int:
    node = graph.nodes[node_id]
    count = int(math.prod(node.shape)) if node.shape else 1
    return count * np.dtype(node.dtype).itemsize


def plan_training_memory(graph: Graph, tape: list[TapeEntry], top_k: int = 5) -> dict:
    """Simulate one forward+backward step; return peak and retention."""
    n = len(graph)
    t = len(tape)
    end = n + t  # sentinel "after the backward pass"

    def backward_pos(entry: TapeEntry) -> int:
        return n + (t - 1 - entry.index)

    # -- forward liveness (mirrors plan_memory) --------------------------------
    scope_end: dict[int, int] = {}
    for node in graph:
        scope_end[node.meta.get("scope_id", 0)] = node.id

    born: dict[int, int] = {}
    size: dict[int, int] = {}
    dies: dict[int, int] = {}
    for node in graph:
        if node.kind == "op" and node.bytes > 0:
            born[node.id] = node.id
            size[node.id] = node.bytes
            dies[node.id] = node.id
        extend = (
            scope_end.get(node.meta.get("scope_id", 0), node.id)
            if node.meta.get("scope_depth", 0) >= 2
            else node.id
        )
        for input_id in node.inputs:
            buf = graph.buffer_of(input_id)
            if buf in dies:
                dies[buf] = max(dies[buf], extend)
    for buf in born:
        node = graph[buf]
        if node.meta.get("scope_depth", 0) >= 2:
            dies[buf] = max(dies[buf], scope_end.get(node.meta["scope_id"], dies[buf]))
    for out in graph.live_through_end():
        if out in dies:
            dies[out] = end

    # -- backward reachability: which closures actually run --------------------
    by_out = {entry.out: entry for entry in tape}
    reachable: set[int] = set()
    stack = [by_out[o] for o in graph.outputs if o in by_out]
    while stack:
        entry = stack.pop()
        if entry.index in reachable:
            continue
        reachable.add(entry.index)
        for pid, requires in zip(entry.parents, entry.parent_requires_grad):
            if requires and pid in by_out:
                stack.append(by_out[pid])

    # -- tape retention --------------------------------------------------------
    for entry in tape:
        # The topological walk holds every tape tensor (and so its data
        # buffer) until backward() returns.
        out_buf = graph.buffer_of(entry.out)
        if out_buf in dies:
            dies[out_buf] = end
        # Closure captures are freed when the closure runs (the runtime
        # drops node._backward after invoking it); dead-branch closures
        # are never run, so their captures leak to the end of the step.
        pos = backward_pos(entry) if entry.index in reachable else end
        for group in (entry.parents, entry.captured):
            for nid in group:
                if nid is None:
                    continue
                buf = graph.buffer_of(nid)
                if buf in dies:
                    dies[buf] = max(dies[buf], pos)

    # -- gradient buffers ------------------------------------------------------
    # First accumulation into each requires-grad tensor: the seed for
    # outputs, else the earliest-running consumer closure.
    grad_born: dict[int, int] = {o: n for o in graph.outputs}
    for entry in tape:
        if entry.index not in reachable:
            continue
        pos = backward_pos(entry)
        for pid, requires in zip(entry.parents, entry.parent_requires_grad):
            if requires and pid is not None:
                grad_born[pid] = min(grad_born.get(pid, end), pos)
    grad_size = {nid: _nbytes(graph, nid) for nid in grad_born}
    grad_bytes_total = sum(grad_size.values())

    # -- backward transients ---------------------------------------------------
    transient_at: dict[int, int] = {}
    for entry in tape:
        if entry.index not in reachable:
            continue
        parent_grads = [
            _nbytes(graph, pid)
            for pid, req in zip(entry.parents, entry.parent_requires_grad)
            if req and pid is not None
        ]
        transient = max(parent_grads, default=0)
        if entry.op in _WORKSPACE_GRAD_OPS:
            transient += sum(
                graph[graph.buffer_of(nid)].bytes
                for nid in entry.captured
                if graph[graph.buffer_of(nid)].kind == "op"
            )
        transient_at[backward_pos(entry)] = transient

    # -- simulate the timeline -------------------------------------------------
    persistent = sum(
        node.bytes for node in graph if node.kind in ("param", "buffer", "const")
    )
    input_bytes = sum(graph[i].bytes for i in graph.inputs)

    frees: dict[int, list[int]] = {}
    for buf, at in dies.items():
        frees.setdefault(at, []).append(size[buf])

    entry_at = {backward_pos(e): e for e in tape if e.index in reachable}
    grads_at: dict[int, list[int]] = {}
    for nid, at in grad_born.items():
        grads_at.setdefault(at, []).append(grad_size[nid])

    live = 0
    peak = 0
    peak_pos = "forward@0"
    retained_at_backward = 0
    for pos in range(n + t):
        if pos < n:
            if pos in born:
                live += size[pos]
            label = f"forward@{pos}"
        else:
            if pos == n:
                retained_at_backward = live
            live += sum(grads_at.get(pos, ()))
            entry = entry_at.get(pos)
            label = f"backward@{entry.out}:{entry.op}" if entry else f"backward@{pos}"
        transient = (
            graph[pos].meta.get("workspace_bytes", 0)
            if pos < n
            else transient_at.get(pos, 0)
        )
        if live + transient > peak:
            peak, peak_pos = live + transient, label
        for freed in frees.get(pos, ()):
            live -= freed

    live += sum(grads_at.get(end, ()))  # defensive: nothing should land here
    if pos == n - 1 and t == 0:
        retained_at_backward = live

    retained = sorted(
        (
            {
                "node": buf,
                "op": graph[buf].op,
                "scope": graph[buf].scope,
                "src": graph[buf].src,
                "bytes": size[buf],
                "dies": dies[buf] if dies[buf] != end else None,
            }
            for buf in born
            if dies[buf] >= n
        ),
        key=lambda r: -r["bytes"],
    )

    return {
        "train_peak_bytes": peak,
        "peak_pos": peak_pos,
        "retained_at_backward_bytes": retained_at_backward,
        "grad_bytes_total": grad_bytes_total,
        "grad_buffers": len(grad_born),
        "activation_bytes_total": sum(size.values()),
        "input_bytes": input_bytes,
        "persistent_bytes": persistent,
        "tape_entries": t,
        "reachable_entries": len(reachable),
        "top_retained": retained[:top_k],
    }
