"""Gradient-flow interval analysis over the adjoint graph (REPRO205–207).

Propagates a *magnitude interval* ``(lo, hi)`` — sound bounds on the
elementwise absolute value of each adjoint — from the loss seed
``(1, 1)`` backwards through the adjoint SSA graph.  Each ``vjp`` edge
multiplies by a local-gain interval derived from the primal value
ranges the tracer already computed (``|d out / d in|`` over the
operand's interval); ``add`` nodes take ``(0, hi_a + hi_b)`` because
contributions can cancel.

The analysis is deliberately conservative: contraction ops
(``__matmul__``, ``conv2d``, …) with unbounded parameter ranges yield
``(0, inf)``, so on a healthy model nothing fires.  Findings are
*provable* pathologies only:

* **REPRO205** — a trainable parameter's final adjoint has an upper
  bound below ``1e-24`` (provably vanishing — e.g. everything behind a
  saturated activation with bounded input) or a lower bound above
  ``1e24`` (provably exploding — only reachable through elementwise
  chains with bounded-away-from-zero gains).
* **REPRO206** — an activation that provably blocks flow: a ReLU whose
  input interval is entirely ``<= 0`` (dead: zero gradient for every
  input in range), or a sigmoid/tanh whose derivative upper bound over
  its input interval is below ``1e-12`` (saturated).
* **REPRO207** — a trainable parameter with *no* path to any output in
  the adjoint graph at all: a ``detach()``/``no_grad`` region (or a
  plain unused module) provably disconnects it from the loss.

Findings anchor at model source lines (via the primal node's call
site), so ``# noqa`` works exactly as for the forward IR passes.
"""

from __future__ import annotations

import math

from repro.ir.graph import Graph
from repro.ir.passes import filter_noqa, node_finding
from repro.ir.trace import TapeEntry
from repro.lint.rules import LintDiagnostic

from .graph import AdjointGraph, build_adjoint_graph

__all__ = ["flow_analysis", "VANISH_BOUND", "EXPLODE_BOUND", "SATURATION_BOUND"]

INF = math.inf
VANISH_BOUND = 1e-24
EXPLODE_BOUND = 1e24
SATURATION_BOUND = 1e-12

# Ops whose per-element gain is exactly 1 (routing/identity); broadcast
# fan-in scaling is applied separately via the size ratio.
_UNIT_GAIN = {
    "__add__", "__sub__", "__neg__", "pad2d", "reshape", "transpose",
    "__getitem__", "concatenate", "stack", "upsample_nearest", "sum",
}
# Ops with gain in [0, 1] (selection or convex averaging).
_SUB_UNIT_GAIN = {"max", "max_pool2d", "avg_pool2d", "softmax", "dropout"}


def _vrange(graph: Graph, node_id: int) -> tuple[float, float]:
    v = graph.nodes[node_id].vrange
    return (-INF, INF) if v is None else (float(v[0]), float(v[1]))


def _abs_interval(lo: float, hi: float) -> tuple[float, float]:
    if lo <= 0.0 <= hi:
        return 0.0, max(-lo, hi)
    return min(abs(lo), abs(hi)), max(abs(lo), abs(hi))


def _mul(a: float, b: float) -> float:
    """Interval-safe product: 0 * inf == 0 (a zero gain kills the path)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _inv(x: float) -> float:
    if x == 0.0:
        return INF
    if math.isinf(x):
        return 0.0
    return 1.0 / x


def _sigmoid_deriv(ax: float) -> float:
    """sigma'(x) evaluated at |x| = ax (monotone decreasing in |x|)."""
    if math.isinf(ax):
        return 0.0
    s = 1.0 / (1.0 + math.exp(-min(ax, 700.0)))
    return s * (1.0 - s)


def _tanh_deriv(ax: float) -> float:
    if math.isinf(ax):
        return 0.0
    t = math.tanh(ax)
    return 1.0 - t * t


def _local_gain(
    graph: Graph, entry: TapeEntry, parent_id: int
) -> tuple[float, float]:
    """Bounds on the elementwise |d entry.out / d parent| over the trace."""
    op = entry.op
    out_node = graph.nodes[entry.out]
    parent = graph.nodes[parent_id]

    if op in _UNIT_GAIN:
        lo, hi = 1.0, 1.0
    elif op in _SUB_UNIT_GAIN:
        lo, hi = 0.0, 1.0
    elif op == "log_softmax":
        lo, hi = 0.0, 2.0
    elif op == "relu":
        plo, phi = _vrange(graph, parent_id)
        if phi <= 0.0:
            lo, hi = 0.0, 0.0  # provably dead
        elif plo >= 0.0:
            lo, hi = 1.0, 1.0
        else:
            lo, hi = 0.0, 1.0
    elif op == "gelu":
        lo, hi = 0.0, 1.2
    elif op == "tanh":
        alo, ahi = _abs_interval(*_vrange(graph, parent_id))
        lo, hi = _tanh_deriv(ahi), _tanh_deriv(alo)
    elif op == "sigmoid":
        alo, ahi = _abs_interval(*_vrange(graph, parent_id))
        lo, hi = _sigmoid_deriv(ahi), _sigmoid_deriv(alo)
    elif op == "exp":
        plo, phi = _vrange(graph, parent_id)
        lo = 0.0 if math.isinf(plo) else math.exp(max(min(plo, 700.0), -745.0))
        hi = INF if phi > 700.0 else math.exp(phi)
    elif op == "log":
        alo, ahi = _abs_interval(*_vrange(graph, parent_id))
        lo, hi = _inv(ahi), _inv(alo)
    elif op == "__mul__":
        # Gain for one operand is |other operand|; hull over slots when
        # the same tensor appears in both (x * x).
        lo, hi = INF, 0.0
        for pid in entry.parents:
            if pid == parent_id and len(entry.parents) == 2:
                other = entry.parents[0] if entry.parents[1] == pid else entry.parents[1]
                olo, ohi = _abs_interval(*_vrange(graph, other))
                lo, hi = min(lo, olo), max(hi, ohi)
        if hi < lo:  # no slot matched (defensive)
            lo, hi = 0.0, INF
        if entry.parents[0] == entry.parents[1]:
            hi = _mul(2.0, hi)  # d(x*x)/dx = 2|x|
    elif op == "__truediv__":
        num, den = entry.parents
        nlo, nhi = _abs_interval(*_vrange(graph, num))
        dlo, dhi = _abs_interval(*_vrange(graph, den))
        if parent_id == num:
            lo, hi = _inv(dhi), _inv(dlo)
        else:
            lo = _mul(nlo, _inv(_mul(dhi, dhi)))
            hi = _mul(nhi, _inv(_mul(dlo, dlo)))
    else:
        # Contractions (__matmul__, conv2d, conv_transpose2d, batch_norm,
        # layer_norm with unbounded gamma, __pow__ with unknown exponent,
        # unknown ops): no sound elementwise bound without weight norms.
        lo, hi = 0.0, INF

    # Broadcast/reduction fan-in: an operand smaller than the output
    # receives a *sum* of up to r contributions (r = size ratio).
    out_size = max(1, int(math.prod(out_node.shape)) if out_node.shape else 1)
    parent_size = max(1, int(math.prod(parent.shape)) if parent.shape else 1)
    if parent_size < out_size:
        hi = _mul(hi, out_size / parent_size)
        lo = 0.0  # summed contributions can cancel
    return lo, hi


def flow_analysis(
    graph: Graph, tape: list[TapeEntry], adjoint: AdjointGraph | None = None
) -> dict:
    """Run the interval propagation; returns findings + connectivity."""
    adj = adjoint if adjoint is not None else build_adjoint_graph(graph, tape)
    findings: dict[tuple, LintDiagnostic] = {}

    def report(node_id: int, code: str, message: str) -> None:
        f = node_finding(graph.nodes[node_id], code, message)
        findings.setdefault((f.code, f.path, f.line, f.message), f)

    # REPRO206: activations that provably block gradient flow.
    for entry in tape:
        if entry.op == "relu":
            (pid,) = entry.parents
            _, phi = _vrange(graph, pid)
            if phi <= 0.0:
                report(
                    entry.out,
                    "REPRO206",
                    f"dead ReLU: input interval ({_vrange(graph, pid)[0]:.3g}, "
                    f"{phi:.3g}) is never positive, so no gradient can flow",
                )
        elif entry.op in ("sigmoid", "tanh"):
            (pid,) = entry.parents
            alo, ahi = _abs_interval(*_vrange(graph, pid))
            deriv = _sigmoid_deriv if entry.op == "sigmoid" else _tanh_deriv
            if deriv(alo) < SATURATION_BOUND:
                report(
                    entry.out,
                    "REPRO206",
                    f"saturated {entry.op}: |input| >= {alo:.3g} everywhere, "
                    f"derivative <= {deriv(alo):.3g} blocks gradient flow",
                )

    # Magnitude propagation through the adjoint SSA graph.
    mag: dict[int, tuple[float, float]] = {}
    for node in adj.nodes:
        if node.kind == "seed":
            mag[node.id] = (1.0, 1.0)
        elif node.kind == "vjp":
            ulo, uhi = mag[node.inputs[0]]
            glo, ghi = _local_gain(graph, adj.tape[node.entry], node.primal)
            mag[node.id] = (_mul(ulo, glo), _mul(uhi, ghi))
        else:  # add
            los_his = [mag[i] for i in node.inputs]
            mag[node.id] = (0.0, sum(hi for _, hi in los_his))

    # REPRO205/207 per trainable parameter.
    params = [n for n in graph if n.kind == "param"]
    connected = 0
    for pnode in params:
        adj_id = adj.grad_of.get(pnode.id)
        if adj_id is None:
            # Anchor at the op consuming the parameter if any entry does
            # (a detach()ed use still shows up in closures' parents);
            # otherwise the parameter node itself.
            report(
                pnode.id,
                "REPRO207",
                f"trainable parameter {pnode.name!r} has no path to any "
                "output in the adjoint graph: provably disconnected from "
                "the loss (detach()/no_grad region or unused module)",
            )
            continue
        connected += 1
        lo, hi = mag[adj_id]
        if hi < VANISH_BOUND:
            report(
                pnode.id,
                "REPRO205",
                f"gradient of {pnode.name!r} provably vanishes: "
                f"|grad| <= {hi:.3g} along every path",
            )
        elif lo > EXPLODE_BOUND:
            report(
                pnode.id,
                "REPRO205",
                f"gradient of {pnode.name!r} provably explodes: "
                f"|grad| >= {lo:.3g}",
            )

    ordered = sorted(findings.values(), key=lambda f: (f.code, f.path, f.line))
    return {
        "findings": filter_noqa(ordered),
        "params_total": len(params),
        "params_connected": connected,
        "adjoint_nodes": len(adj.nodes),
        "adjoint_counts": adj.counts(),
    }
