"""Concrete tape capture: observe a real forward+backward end to end.

:class:`capture_tape` installs the two zero-cost instrumentation hooks
of :mod:`repro.nn.tensor` — the tape hook (op recording + pre/post
around each backward closure) and the accumulation hook (every raw
adjoint handed to ``_accumulate`` before it is summed) — and attributes
each accumulation to the closure that produced it.  The result is the
ground truth the REPRO201–203 gradient contract checks audit: for every
recorded op, which parents actually received gradients, how many times,
and with what shape/dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.tensor import (
    Tensor,
    _get_tape_hook,
    _set_accum_hook,
    _set_tape_hook,
)

__all__ = ["AccumEvent", "OpRecord", "capture_tape"]


@dataclass(frozen=True)
class AccumEvent:
    """One raw adjoint observed on its way into ``tensor.grad``."""

    target: int  # id() of the receiving tensor
    shape: tuple[int, ...]
    dtype: np.dtype


@dataclass
class OpRecord:
    """One recorded op and everything its backward closure accumulated."""

    index: int
    op: str
    src: str  # path:line of the def backward
    out_shape: tuple[int, ...]
    out_dtype: np.dtype
    parents: tuple[Tensor, ...]  # strong refs keep id() stable
    ran: bool = False  # whether the closure executed during backward
    events: list[AccumEvent] = field(default_factory=list)

    def expected_counts(self) -> dict[int, int]:
        """id(parent) -> number of accumulations the contract requires."""
        counts: dict[int, int] = {}
        for p in self.parents:
            if p.requires_grad:
                counts[id(p)] = counts.get(id(p), 0) + 1
        return counts

    def observed_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for e in self.events:
            counts[e.target] = counts.get(e.target, 0) + 1
        return counts


class capture_tape:
    """Context manager recording ops and their backward accumulations.

    Usage::

        with capture_tape() as cap:
            loss = model(x).sum()
            loss.backward()
        check_contracts(cap.records)

    Records hold strong references to the participating tensors so
    ``id()`` identities cannot be recycled mid-capture.  Accumulations
    that occur outside any closure (the seed gradient ``backward()``
    itself plants) are ignored — they are runtime machinery, not a vjp.
    """

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self._by_out: dict[int, OpRecord] = {}
        self._outs: list[Tensor] = []  # pin id() of recorded outputs
        self._current: OpRecord | None = None

    def __enter__(self) -> "capture_tape":
        self._prev_tape = _get_tape_hook()
        _set_tape_hook(self._tape_hook)
        _set_accum_hook(self._accum_hook)
        return self

    def __exit__(self, *exc_info) -> None:
        _set_tape_hook(self._prev_tape)
        _set_accum_hook(None)

    # -- hooks -----------------------------------------------------------------

    def _tape_hook(self, event, out, parents, backward) -> None:
        if self._prev_tape is not None:
            self._prev_tape(event, out, parents, backward)
        if event == "record":
            code = backward.__code__
            qual = backward.__qualname__.split(".<locals>")[0]
            record = OpRecord(
                index=len(self.records),
                op=qual.split(".")[-1],
                src=f"{code.co_filename}:{code.co_firstlineno}",
                out_shape=out.shape,
                out_dtype=out.data.dtype,
                parents=tuple(parents),
            )
            self.records.append(record)
            self._by_out[id(out)] = record
            self._outs.append(out)
        elif event == "pre":
            self._current = self._by_out.get(id(out))
            if self._current is not None:
                self._current.ran = True
        elif event == "post":
            self._current = None

    def _accum_hook(self, tensor, grad) -> None:
        if self._current is not None:
            self._current.events.append(
                AccumEvent(id(tensor), np.shape(grad), np.asarray(grad).dtype)
            )

    # -- convenience -----------------------------------------------------------

    def ops_used(self) -> tuple[str, ...]:
        """Distinct op kinds recorded, in first-appearance order."""
        return tuple(dict.fromkeys(r.op for r in self.records))
