"""Report writers: CSV / Markdown renderings of experiment results.

The benchmark harness persists human-readable text artifacts; these
helpers additionally export machine-readable CSV and Markdown so runs
can be diffed, plotted or dropped into a writeup.
"""

from __future__ import annotations

import csv
import io

__all__ = ["rows_to_csv", "rows_to_markdown"]


def rows_to_csv(rows: list[dict[str, object]]) -> str:
    """Serialize a list of uniform dict rows as CSV text."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ValueError("all rows must share the same columns")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def rows_to_markdown(rows: list[dict[str, object]]) -> str:
    """Serialize a list of uniform dict rows as a Markdown table."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ValueError("all rows must share the same columns")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row[c]) for c in columns) + " |")
    return "\n".join(lines)
