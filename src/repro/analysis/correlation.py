"""Feature–congestion correlation analysis (Section III-B's motivation).

The paper selects its six grid features because they are "strongly
correlated with congestion".  This module quantifies that claim on our
substrate: per-feature Pearson and Spearman correlation against the
routed congestion level map, plus a simple greedy forward-selection
ranking that shows how much each feature adds on top of the others.

Used by ``examples/feature_analysis.py`` and the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..features import FEATURE_NAMES

__all__ = ["FeatureCorrelation", "correlate_features", "forward_selection"]


@dataclass(frozen=True)
class FeatureCorrelation:
    """Correlation of one feature map with the congestion labels."""

    name: str
    pearson: float
    spearman: float

    def row(self) -> str:
        return (
            f"{self.name:<16} pearson={self.pearson:+.3f} "
            f"spearman={self.spearman:+.3f}"
        )


def correlate_features(
    features: np.ndarray, labels: np.ndarray
) -> list[FeatureCorrelation]:
    """Per-feature correlation against labels.

    Parameters
    ----------
    features:
        ``(N, 6, H, W)`` or ``(6, H, W)`` feature stacks.
    labels:
        Matching ``(N, H, W)`` or ``(H, W)`` congestion level maps.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if features.ndim == 3:
        features = features[None]
        labels = labels[None]
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"batch mismatch: {features.shape[0]} feature stacks vs "
            f"{labels.shape[0]} label maps"
        )
    flat_labels = labels.reshape(-1)
    results = []
    for idx, name in enumerate(FEATURE_NAMES):
        flat = features[:, idx].reshape(-1)
        if np.allclose(flat.std(), 0.0) or np.allclose(flat_labels.std(), 0.0):
            results.append(FeatureCorrelation(name, 0.0, 0.0))
            continue
        pearson = float(np.corrcoef(flat, flat_labels)[0, 1])
        spearman = float(stats.spearmanr(flat, flat_labels).statistic)
        results.append(FeatureCorrelation(name, pearson, spearman))
    return results


def forward_selection(
    features: np.ndarray, labels: np.ndarray, max_features: int | None = None
) -> list[tuple[str, float]]:
    """Greedy forward selection by linear-fit R².

    Repeatedly adds the feature that most improves a least-squares fit
    of the labels, returning ``[(feature_name, cumulative_r2), ...]`` —
    a cheap proxy for "which features carry independent signal".
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if features.ndim == 3:
        features = features[None]
        labels = labels[None]
    n_feat = features.shape[1]
    x = features.transpose(0, 2, 3, 1).reshape(-1, n_feat)
    y = labels.reshape(-1)
    max_features = max_features or n_feat

    def fit_r2(cols: list[int]) -> float:
        design = np.column_stack([x[:, cols], np.ones(len(y))])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        pred = design @ coef
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    chosen: list[int] = []
    ranking: list[tuple[str, float]] = []
    remaining = list(range(n_feat))
    for _ in range(max_features):
        best_idx, best_r2 = None, -np.inf
        for idx in remaining:
            r2 = fit_r2(chosen + [idx])
            if r2 > best_r2:
                best_idx, best_r2 = idx, r2
        chosen.append(best_idx)
        remaining.remove(best_idx)
        ranking.append((FEATURE_NAMES[best_idx], best_r2))
    return ranking
