"""Analysis utilities: feature correlation, report export."""

from .correlation import FeatureCorrelation, correlate_features, forward_selection
from .reports import rows_to_csv, rows_to_markdown

__all__ = [
    "FeatureCorrelation",
    "correlate_features",
    "forward_selection",
    "rows_to_csv",
    "rows_to_markdown",
]
