"""Perf-analysis driver and machine-readable report (``repro.perf/v1``).

``perfcheck_model`` traces one registry model at deployment dtype
(float32) and runs the graph-side passes — dtype flow, copy/alias
classification, fusion advisories.  ``perfcheck_flow`` runs the AST
audits over the untraced pipeline code (features, train, placement,
routing, netlist, eval).  ``perfcheck_all`` is both, plus the
measured-vs-predicted validation harness so each byte claim in the
report has been checked against a tracemalloc measurement.

Severity: blocking perf codes (``REPRO301``/``302`` float64 creep,
``REPRO310`` failed validation) populate ``"failures"`` and make
``repro perfcheck`` exit non-zero; advisory codes are reported and
ranked but never fail the gate.  ``check_perf_baseline`` diffs the
deterministic slice (finding counts, modelled byte totals — never
wall-clock) against ``benchmarks/perf_baseline.json`` so CI catches a
reintroduced copy or dtype regression as a one-line diff.

Unlike the forward-IR passes these are *not* registered with
:func:`repro.ir.passes.register_pass` — ``repro analyze`` and
``build_model(analyze=True)`` run every registered pass and treat
blocking findings as build failures, and a perf advisory must never
fail a correctness gate.  The perf suite is its own entry point.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.diagnostics import is_blocking
from repro.ir.passes import filter_noqa
from repro.ir.report import serialize_finding
from repro.ir.trace import trace
from repro.lint.rules import LintDiagnostic
from repro.nn.tensor import get_default_dtype, set_default_dtype

from .aliasing import alias_analysis, audit_copies
from .dtypeflow import audit_dtypes, dtype_flow
from .fusion import fusion_advisories
from .loops import audit_loops
from .validate import DEFAULT_BOUND, validate_bundle

__all__ = [
    "SCHEMA",
    "DEPLOY_DTYPE",
    "default_dtype",
    "trace_model_at",
    "perfcheck_model",
    "perfcheck_flow",
    "perfcheck_all",
    "baseline_from_bundle",
    "check_perf_baseline",
]

SCHEMA = "repro.perf/v1"

# The benchmark harness deploys at float32 (see nn.tensor.set_default_dtype);
# perf analysis therefore asks "is this graph float32-clean?".
DEPLOY_DTYPE = np.float32


@contextmanager
def default_dtype(dtype):
    """Temporarily switch the substrate default dtype."""
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def trace_model_at(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    dtype=DEPLOY_DTYPE,
):
    """Build + trace a registry model entirely at ``dtype``.

    Both steps run under the dtype context: parameters and buffers
    materialize at ``dtype`` exactly as in a real float32 deployment,
    so any float64 node left in the graph is genuine creep, not an
    artifact of float64 model construction.
    """
    from repro.models.registry import build_model

    with default_dtype(dtype):
        model = build_model(model_name, preset=preset, grid=grid, seed=0)
        graph = trace(
            model,
            (batch, 6, grid, grid),
            input_vrange=(0.0, 1.0),
            name=model_name,
        )
    graph.meta.update(preset=preset, grid=grid, batch=batch)
    return graph


def _serialized(findings: list[LintDiagnostic]) -> list[dict]:
    return [serialize_finding(f) for f in findings]


def _strip(result: dict) -> dict:
    """Pass result minus its findings (serialized separately)."""
    return {k: v for k, v in result.items() if k != "findings"}


def perfcheck_model(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    validate: bool = True,
    bound: float = DEFAULT_BOUND,
) -> dict:
    """Run the graph-side perf passes on one registry model."""
    graph = trace_model_at(model_name, preset=preset, grid=grid, batch=batch)
    dflow = dtype_flow(graph, expected=DEPLOY_DTYPE)
    alias = alias_analysis(graph)
    fus = fusion_advisories(graph)

    findings = filter_noqa(
        dflow["findings"] + alias["findings"] + fus["findings"]
    )

    claims = [
        {
            "kind": "float64_creep",
            "bytes": origin["predicted_saving_bytes"],
            "src": origin["src"],
        }
        for origin in dflow["origins"]
    ]
    claims += [
        {"kind": "redundant_copy", "bytes": copy["bytes"], "src": copy["src"]}
        for copy in alias["copies"]
        if copy["classification"] == "redundant"
    ]
    claims += [
        {
            "kind": "unfused_chain",
            "bytes": chain["transient_bytes"],
            "length": chain["length"],
            "src": chain["src"],
        }
        for chain in fus["chains"]
    ]

    validation = (
        validate_bundle(claims, bound=bound)
        if validate
        else {"bound": bound, "results": [], "validated": 0, "failed": 0,
              "findings": []}
    )
    findings += validation["findings"]

    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1

    return {
        "schema": SCHEMA,
        "target": "model",
        "model": model_name,
        "preset": preset,
        "grid": grid,
        "batch": batch,
        "dtype": np.dtype(DEPLOY_DTYPE).name,
        "graph_nodes": len(graph),
        "dtype_flow": _strip(dflow),
        "aliasing": _strip(alias),
        "fusion": _strip(fus),
        "validation": {k: v for k, v in validation.items() if k != "findings"},
        "by_code": dict(sorted(by_code.items())),
        "findings": _serialized(findings),
        "failures": [str(f) for f in findings if is_blocking(f.code)],
    }


def perfcheck_flow(
    *, validate: bool = True, bound: float = DEFAULT_BOUND
) -> dict:
    """Run the AST perf audits over the untraced pipeline/flow code."""
    dtypes = audit_dtypes()
    copies = audit_copies()
    loops = audit_loops()

    findings = dtypes["findings"] + copies["findings"] + loops["findings"]
    findings.sort(key=lambda f: (f.path, f.line, f.col))

    # The AST audits know call sites, not byte counts, so the only claim
    # to validate here is the REPRO312 speed claim ("bincount-style
    # accumulation is far faster") — checked by measurement.
    claims = (
        [{"kind": "scatter_at", "bytes": 0}]
        if any(f.code == "REPRO312" for f in findings)
        else []
    )
    validation = (
        validate_bundle(claims, bound=bound)
        if validate
        else {"bound": bound, "results": [], "validated": 0, "failed": 0,
              "findings": []}
    )
    findings = findings + validation["findings"]

    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1

    return {
        "schema": SCHEMA,
        "target": "flow",
        "audited_files": dtypes["audited_files"]
        + copies["audited_files"]
        + loops["audited_files"],
        "validation": {k: v for k, v in validation.items() if k != "findings"},
        "by_code": dict(sorted(by_code.items())),
        "findings": _serialized(findings),
        "failures": [str(f) for f in findings if is_blocking(f.code)],
    }


def perfcheck_all(
    models: tuple[str, ...] | None = None,
    *,
    preset: str = "fast",
    grid: int = 64,
    validate: bool = True,
    bound: float = DEFAULT_BOUND,
) -> dict:
    """Models × graph passes plus the flow audit, as one bundle."""
    from repro.models.registry import MODEL_NAMES

    models = models or MODEL_NAMES
    reports = []
    for i, name in enumerate(models):
        reports.append(
            perfcheck_model(
                name,
                preset=preset,
                grid=grid,
                # The validation scenarios check the cost *model*, which
                # is shared by every report — measuring once is enough.
                validate=validate and i == 0,
                bound=bound,
            )
        )
    flow = perfcheck_flow(validate=validate, bound=bound)
    kinds = sorted(
        {code for r in reports + [flow] for code in r["by_code"]}
    )
    return {
        "schema": SCHEMA,
        "reports": reports,
        "flow": flow,
        "distinct_codes": kinds,
        "failures": [f for r in reports + [flow] for f in r["failures"]],
    }


# -- baseline diffing ----------------------------------------------------------


def baseline_from_bundle(bundle: dict) -> dict:
    """Reduce a perfcheck bundle to its deterministic slice.

    Static counts and modelled byte totals only — wall-clock numbers
    and tracemalloc measurements vary per machine and never enter the
    baseline.  A ``"fixes"`` section (before/after measurements recorded
    when a finding is fixed) may ride along in the baseline file; the
    checker ignores it.
    """
    entries = []
    for report in bundle["reports"]:
        entries.append(
            {
                "model": report["model"],
                "preset": report["preset"],
                "grid": report["grid"],
                "graph_nodes": report["graph_nodes"],
                "widened_ops": report["dtype_flow"]["widened_ops"],
                "cast_churn": report["dtype_flow"]["cast_churn"],
                "redundant_copies": report["aliasing"]["redundant_copies"],
                "redundant_copy_bytes": report["aliasing"][
                    "redundant_copy_bytes"
                ],
                "broadcast_blowups": report["aliasing"]["broadcast_blowups"],
                "unfused_chains": report["fusion"]["unfused_chains"],
                "transient_bytes": report["fusion"]["transient_bytes"],
                "workspace_bytes": report["fusion"]["workspace_bytes"],
            }
        )
    flow = bundle.get("flow") or {"by_code": {}}
    flow_codes = {
        code: count
        for code, count in flow["by_code"].items()
        if code != "REPRO310"  # measurement outcome, not a static count
    }
    return {"schema": SCHEMA, "entries": entries, "flow_codes": flow_codes}


def check_perf_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Exact-match diff of the deterministic slice; returns mismatches."""
    from repro.baselines import diff_counts, diff_entries

    reduced = baseline_from_bundle(bundle)
    problems = diff_entries(
        baseline.get("entries", []), reduced["entries"], verb="checked"
    )
    problems += diff_counts(
        baseline.get("flow_codes", {}),
        reduced["flow_codes"],
        label="flow: {key} count changed",
    )
    return problems
