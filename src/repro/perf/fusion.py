"""Fusion advisories: transient buffers a fused executor would never touch.

numpy executes one primitive at a time, so a chain like
``sigmoid(w * x + b)`` writes three full-size intermediates to memory
that a fused kernel (numexpr, a JIT, or simple in-place ``out=`` reuse)
would keep in registers or a single scratch buffer.  On a memory-bound
substrate the transient traffic *is* the cost, and the PR 3 cost model
already knows every node's byte count — so the advisory can quote real
numbers instead of folklore.

Two analyses:

* ``REPRO305`` — maximal single-consumer chains of ≥ ``min_chain``
  materialized elementwise ops.  All interior buffers of such a chain
  are transient: each is produced, read once by the next link, and dead.
  The finding reports the chain, its total transient bytes, and the
  predicted saving (all but one scratch buffer).
* ``REPRO311`` — contractions whose operands are not in GEMM layout:
  the traced ``einsum`` records ``meta["workspace_bytes"]`` for the
  layout copies the optimized path performs (:mod:`repro.ir.symbolic`).
  Those bytes never appear in the op's own output cost, which makes
  them exactly the kind of hidden traffic a static report should
  surface.
"""

from __future__ import annotations

from repro.ir.graph import Graph, Node
from repro.ir.passes import node_finding
from repro.lint.rules import LintDiagnostic

__all__ = ["fusion_advisories", "ELEMENTWISE_OPS"]

# Materialized elementwise primitives eligible for fusion.  Views and
# zero-byte nodes never join a chain (they are already free).
ELEMENTWISE_OPS = {
    "add", "subtract", "multiply", "divide", "negative", "exp", "log",
    "sqrt", "tanh", "abs", "power", "maximum", "minimum", "where",
    "clip", "square",
}


def _is_chain_op(node: Node) -> bool:
    return node.kind == "op" and node.op in ELEMENTWISE_OPS and node.bytes > 0


def fusion_advisories(
    graph: Graph, *, min_chain: int = 3, top_k: int = 8
) -> dict:
    """Find unfused elementwise chains and hidden contraction workspaces."""
    users = graph.users()
    findings: list[LintDiagnostic] = []

    # -- REPRO305: maximal single-consumer elementwise chains ------------------
    # next link: the unique user, itself elementwise, same element count
    # (so the chain is a pointwise pipeline, not a broadcast tree).
    next_link: dict[int, int] = {}
    for node in graph:
        if not _is_chain_op(node):
            continue
        consumers = users.get(node.id, [])
        if len(consumers) != 1:
            continue
        succ = graph[consumers[0]]
        if _is_chain_op(succ) and succ.size == node.size:
            next_link[node.id] = succ.id
    has_pred = set(next_link.values())

    chains = []
    for node in graph:
        if node.id in has_pred or node.id not in next_link:
            continue  # not a chain head
        ids = [node.id]
        while ids[-1] in next_link:
            ids.append(next_link[ids[-1]])
        if len(ids) < min_chain:
            continue
        members = [graph[i] for i in ids]
        # Interior buffers (all but the last) are transient; a fused
        # execution needs at most one scratch of the element size.
        transient = sum(n.bytes for n in members[:-1])
        saving = transient - members[0].bytes  # keep one scratch buffer
        chains.append(
            {
                "ops": [n.op for n in members],
                "nodes": ids,
                "length": len(ids),
                "transient_bytes": transient,
                "predicted_saving_bytes": max(saving, 0),
                "scope": members[0].scope,
                "src": members[0].src,
            }
        )
    chains.sort(key=lambda c: -c["transient_bytes"])
    for chain in chains[:top_k]:
        head = graph[chain["nodes"][0]]
        findings.append(
            node_finding(
                head,
                "REPRO305",
                f"unfused elementwise chain {'->'.join(chain['ops'])} "
                f"materializes {chain['transient_bytes']:,} transient bytes; "
                f"in-place/fused evaluation saves "
                f"~{chain['predicted_saving_bytes']:,} bytes per call",
            )
        )

    # -- REPRO311: contraction workspace copies --------------------------------
    workspaces = []
    for node in graph:
        ws = int(node.meta.get("workspace_bytes", 0)) if node.kind == "op" else 0
        if ws <= 0:
            continue
        workspaces.append(
            {
                "node": node.id,
                "op": node.op,
                "workspace_bytes": ws,
                "scope": node.scope,
                "src": node.src,
            }
        )
    workspaces.sort(key=lambda w: -w["workspace_bytes"])
    for ws in workspaces[:top_k]:
        node = graph[ws["node"]]
        findings.append(
            node_finding(
                node,
                "REPRO311",
                f"{node.op} operands are not in GEMM layout: the optimized "
                f"path copies {ws['workspace_bytes']:,} workspace bytes per "
                "call (pre-transpose or reshape the operands once instead)",
            )
        )

    return {
        "chains": chains,
        "unfused_chains": len(chains),
        "transient_bytes": sum(c["transient_bytes"] for c in chains),
        "predicted_saving_bytes": sum(
            c["predicted_saving_bytes"] for c in chains
        ),
        "workspaces": workspaces,
        "workspace_bytes": sum(w["workspace_bytes"] for w in workspaces),
        "findings": findings,
    }
