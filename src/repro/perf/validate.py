"""Measured-vs-predicted validation: every cost claim gets a benchmark.

A static analyzer that predicts savings nobody ever measures decays into
folklore.  This module closes the loop: for each *kind* of claim the
perf passes emit, it constructs a synthetic workload of the same byte
size (capped so CI stays fast), measures the before/after variants with
:mod:`tracemalloc` (numpy reports its allocations to tracemalloc, so
byte measurements are near-exact) and wall-clock, and checks the
measured byte saving against the prediction within a relative bound —
the same ≤-bound discipline :mod:`repro.adjoint.memory` applies to
activation-memory estimates.

Byte claims are *checked* (default bound 20%; a violation is a blocking
``REPRO310``).  Timings are *recorded*: wall-clock on a shared CI box
is too noisy to gate on, but the speedup numbers ship with the report
so every advisory carries a measured cost, not just a modelled one.

Claim kinds and their scenarios:

* ``float64_creep`` — an elementwise chain run at float64 vs float32;
  predicted saving is half the tainted bytes.
* ``redundant_copy`` — materialize a value with and without the
  trailing ``.copy()``; predicted saving is the copy's byte count.
* ``unfused_chain`` — a chain with all intermediates kept live (the
  materialized traffic the advisory counts) vs in-place ``out=`` reuse
  of one scratch buffer.
* ``scatter_at`` — ``np.add.at`` vs ``np.bincount`` accumulation;
  timing-only (the claim is "far faster", validated as speedup > 1).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from repro.lint.rules import LintDiagnostic

__all__ = [
    "ValidationResult",
    "validate_claim",
    "validate_bundle",
    "DEFAULT_BOUND",
    "MAX_SCENARIO_BYTES",
]

DEFAULT_BOUND = 0.20
# Cap synthetic workloads: large enough that allocator noise (pools,
# page rounding) is far below the bound, small enough for CI.
MAX_SCENARIO_BYTES = 64 * 1024 * 1024
MIN_SCENARIO_BYTES = 1 * 1024 * 1024


@dataclass
class ValidationResult:
    """Outcome of one measured claim."""

    kind: str
    predicted_bytes: int
    measured_bytes: int
    rel_err: float
    time_before_s: float
    time_after_s: float
    ok: bool
    detail: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.time_after_s <= 0:
            return float("inf")
        return self.time_before_s / self.time_after_s

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "predicted_bytes": self.predicted_bytes,
            "measured_bytes": self.measured_bytes,
            "rel_err": round(self.rel_err, 4),
            "time_before_s": round(self.time_before_s, 6),
            "time_after_s": round(self.time_after_s, 6),
            "speedup": round(self.speedup, 2),
            "ok": self.ok,
            **({"detail": self.detail} if self.detail else {}),
        }


def _traced_peak(fn) -> tuple[int, float]:
    """(tracemalloc peak bytes, best-of-5 wall seconds) for ``fn``.

    Timing runs are separate from the traced runs: tracemalloc hooks
    every allocation, which would bias timings against the variant that
    allocates (exactly the comparison several scenarios make).
    """
    fn()  # warm up: numpy ufunc dispatch, allocator pools
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    peak = 0
    for _ in range(2):
        tracemalloc.start()
        tracemalloc.reset_peak()
        fn()
        _, p = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak = max(peak, p)
    return peak, best


def _clamp_elems(claim_bytes: int, itemsize: int, per_buffer: int) -> int:
    """Element count so that ``per_buffer`` buffers total ~claim bytes."""
    total = min(max(claim_bytes, MIN_SCENARIO_BYTES), MAX_SCENARIO_BYTES)
    return max(total // (itemsize * per_buffer), 1024)


# -- scenarios -----------------------------------------------------------------


def _scenario_float64_creep(claim_bytes: int) -> ValidationResult:
    # claim: converting the tainted float64 traffic to float32 saves
    # half of it.  Chain of 4 ops with all results kept live so the
    # traced peak equals the materialized traffic the pass counted.
    n = _clamp_elems(claim_bytes * 2, 8, 4)  # tainted = 2 * saving

    def chain(dtype):
        x = np.ones(n, dtype=dtype)

        def run():
            keep = [x * 2.0]
            keep.append(keep[-1] + 1.0)
            keep.append(np.sqrt(keep[-1]))
            keep.append(keep[-1] - 0.5)
            return keep

        return run

    peak64, t64 = _traced_peak(chain(np.float64))
    peak32, t32 = _traced_peak(chain(np.float32))
    measured = peak64 - peak32
    predicted = 4 * n * 8 // 2  # half the f64 traffic
    rel = abs(measured - predicted) / predicted
    return ValidationResult(
        "float64_creep", predicted, measured, rel, t64, t32, True,
        detail={"elements": n},
    )


def _scenario_redundant_copy(claim_bytes: int) -> ValidationResult:
    n = _clamp_elems(claim_bytes, 8, 1)
    x = np.ones(n, dtype=np.float64)
    idx = np.arange(n)

    def with_copy():
        return x[idx].copy()

    def without_copy():
        return x[idx]

    peak_before, t_before = _traced_peak(with_copy)
    peak_after, t_after = _traced_peak(without_copy)
    measured = peak_before - peak_after
    predicted = n * 8
    rel = abs(measured - predicted) / predicted
    return ValidationResult(
        "redundant_copy", predicted, measured, rel, t_before, t_after, True,
        detail={"elements": n},
    )


def _scenario_unfused_chain(claim_bytes: int, length: int = 4) -> ValidationResult:
    length = max(int(length), 3)
    n = _clamp_elems(claim_bytes, 4, max(length - 1, 1))
    x = np.ones(n, dtype=np.float32)

    def unfused():
        keep = [x * 2.0]
        for _ in range(length - 1):
            keep.append(keep[-1] + 1.0)
        return keep  # transients held live = the traffic being claimed

    def fused():
        # One output buffer, every link written in place — the final
        # buffer is the op's *output* either way, so the measured
        # difference is exactly the interior transients.
        out = np.multiply(x, 2.0)
        for _ in range(length - 1):
            np.add(out, 1.0, out=out)
        return out

    peak_before, t_before = _traced_peak(unfused)
    peak_after, t_after = _traced_peak(fused)
    measured = peak_before - peak_after
    # the advisory's saving: all interior transients minus one scratch
    predicted = (length - 1) * n * 4
    rel = abs(measured - predicted) / predicted
    return ValidationResult(
        "unfused_chain", predicted, measured, rel, t_before, t_after, True,
        detail={"elements": n, "length": length},
    )


def _scenario_scatter_at(claim_bytes: int = 0) -> ValidationResult:
    # The advisory's hazard: ``ufunc.at`` falls back to the unbuffered
    # per-element path whenever operand dtypes differ (float64 values
    # into a float32 map — precisely the feature-pipeline shape).
    # bincount accumulates the same sums vectorized regardless.
    n, bins = 500_000, 4096
    rng = np.random.default_rng(0)
    idx = rng.integers(0, bins, size=n)
    weights = rng.random(n)  # float64 values ...
    out = np.zeros(bins, dtype=np.float32)  # ... into a float32 map

    def with_at():
        out[:] = 0.0
        np.add.at(out, idx, weights)

    def with_bincount():
        return np.bincount(idx, weights=weights, minlength=bins).astype(
            np.float32
        )

    _, t_before = _traced_peak(with_at)
    _, t_after = _traced_peak(with_bincount)
    # Timing-only claim: ok = the fallback is really slower; byte
    # fields are zero (no byte saving is claimed).
    return ValidationResult(
        "scatter_at", 0, 0, 0.0, t_before, t_after, True,
        detail={"elements": n, "bins": bins},
    )


_SCENARIOS = {
    "float64_creep": _scenario_float64_creep,
    "redundant_copy": _scenario_redundant_copy,
    "unfused_chain": _scenario_unfused_chain,
    "scatter_at": _scenario_scatter_at,
}


def validate_claim(
    kind: str, claim_bytes: int = 0, *, bound: float = DEFAULT_BOUND, **kwargs
) -> ValidationResult:
    """Run the scenario for one claim kind and apply the bound.

    Byte-claim kinds fail (``ok=False``) when the measured saving
    deviates from the prediction by more than ``bound``; the
    timing-only ``scatter_at`` kind fails when no speedup is measured.
    """
    if kind not in _SCENARIOS:
        raise ValueError(f"unknown claim kind {kind!r}")
    result = _SCENARIOS[kind](claim_bytes, **kwargs)
    if result.predicted_bytes > 0:
        result.ok = result.rel_err <= bound
    else:
        result.ok = result.speedup > 1.0
    return result


def validate_bundle(
    claims: list[dict], *, bound: float = DEFAULT_BOUND
) -> dict:
    """Validate a list of ``{"kind", "bytes", ...}`` claims.

    Returns results plus blocking ``REPRO310`` findings for claims whose
    measurement contradicts the prediction.  Claims of the same kind are
    validated once at their largest byte size — the scenario checks the
    *model* (does a copy cost its byte count? does float64 double the
    traffic?), which does not change per call-site.
    """
    largest: dict[str, dict] = {}
    for claim in claims:
        kind = claim["kind"]
        if kind not in _SCENARIOS:
            continue
        if kind not in largest or claim.get("bytes", 0) > largest[kind].get(
            "bytes", 0
        ):
            largest[kind] = claim

    results: list[ValidationResult] = []
    findings: list[LintDiagnostic] = []
    for kind, claim in sorted(largest.items()):
        kwargs = {}
        if kind == "unfused_chain" and claim.get("length"):
            kwargs["length"] = claim["length"]
        result = validate_claim(
            kind, claim.get("bytes", 0), bound=bound, **kwargs
        )
        results.append(result)
        if not result.ok:
            src = claim.get("src") or "<perf-validate>"
            path, _, line = src.partition(":")
            if result.predicted_bytes > 0:
                detail = (
                    f"predicted {result.predicted_bytes:,} bytes saved, "
                    f"measured {result.measured_bytes:,} "
                    f"(rel err {result.rel_err:.1%} > {bound:.0%})"
                )
            else:
                detail = (
                    "claimed a speedup but measured "
                    f"{result.speedup:.2f}x"
                )
            findings.append(
                LintDiagnostic(
                    path,
                    int(line) if line.isdigit() else 0,
                    0,
                    "REPRO310",
                    f"{kind} claim failed validation: {detail}",
                )
            )
    return {
        "bound": bound,
        "results": [r.to_dict() for r in results],
        "validated": len(results),
        "failed": sum(not r.ok for r in results),
        "findings": findings,
    }
