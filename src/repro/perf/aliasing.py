"""Copy/alias dataflow: classify every allocation, flag the avoidable ones.

The IR already models aliasing precisely (views are zero-byte nodes
pointing at the buffer they borrow — :mod:`repro.ir.symbolic`), which is
exactly the information needed to decide whether a ``copy`` was *worth
an allocation*:

* **required** — the source buffer is read again after the copy, or the
  copy crosses into an output that must not alias caller state;
* **redundant** (``REPRO303``) — the copy is the last read of a source
  buffer that is itself a private intermediate: mutating the original in
  place (or simply using it) would have been free;
* **broadcast materialization** (``REPRO304``) — an elementwise op whose
  output buffer is ≥ 2× larger than every input buffer it reads: most of
  the written bytes are replicated broadcast data that a fused consumer
  would never materialize.

:func:`alias_analysis` runs over a traced :class:`~repro.ir.graph.Graph`.
:func:`audit_copies` is the AST companion for the un-traceable
placement/routing/netlist flow code, catching the two defensive-copy
shapes the graph pass proves safe in traced code:

1. ``arr[fancy_index].copy()`` — advanced indexing already returns a
   fresh array; the ``.copy()`` doubles the allocation.
2. ``x = x.copy()`` at the top of a function that can *return* ``x``
   (or values derived from it) before the first statement that mutates
   ``x`` — the no-op early-exit path pays for a copy it never needed;
   move the copy below the guard.

Findings use the shared diagnostic format and honour ``# noqa``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.ir.graph import Graph
from repro.ir.passes import node_finding
from repro.lint.rules import LintDiagnostic, _noqa_lines

__all__ = ["alias_analysis", "audit_copies", "COPY_AUDIT_PACKAGES"]

COPY_AUDIT_PACKAGES = ("features", "train", "placement", "routing", "netlist")

_COPY_OPS = {"copy", "copy_reshape"}
_ELEMENTWISE = {
    "add", "subtract", "multiply", "divide", "negative", "exp", "log",
    "sqrt", "tanh", "abs", "power", "maximum", "minimum", "where",
}


def alias_analysis(graph: Graph, *, blowup_factor: float = 2.0) -> dict:
    """Classify allocations; return copy/broadcast findings and stats."""
    live_out = graph.live_through_end()
    findings: list[LintDiagnostic] = []

    # Last position at which each buffer is read (through any view).
    last_read: dict[int, int] = {}
    for node in graph:
        for input_id in node.inputs:
            buf = graph.buffer_of(input_id)
            last_read[buf] = node.id

    required = redundant = 0
    redundant_bytes = 0
    copies = []
    for node in graph:
        if node.kind != "op" or node.op not in _COPY_OPS:
            continue
        src_buf = graph.buffer_of(node.inputs[0])
        src = graph[src_buf]
        # A copy is redundant when it is the final read of a private
        # intermediate: nothing reads the source afterwards, the source
        # is not caller-visible (input/param/buffer/const) and does not
        # itself have to survive as an output.
        is_redundant = (
            src.kind == "op"
            and last_read.get(src_buf, node.id) == node.id
            and src_buf not in live_out
        )
        copies.append(
            {
                "node": node.id,
                "op": node.op,
                "bytes": node.bytes,
                "src": node.src,
                "scope": node.scope,
                "source_node": src_buf,
                "classification": "redundant" if is_redundant else "required",
            }
        )
        if is_redundant:
            redundant += 1
            redundant_bytes += node.bytes
            findings.append(
                node_finding(
                    node,
                    "REPRO303",
                    f"copy of %{src_buf} ({node.bytes:,} bytes) is its last "
                    "read and the source is a private intermediate — the "
                    "original buffer could be reused",
                )
            )
        else:
            required += 1

    # -- broadcast materialization blowup --------------------------------------
    blowups = []
    blowup_bytes = 0
    for node in graph:
        if node.kind != "op" or node.op not in _ELEMENTWISE or node.bytes == 0:
            continue
        input_bytes = []
        for input_id in node.inputs:
            buf = graph[graph.buffer_of(input_id)]
            size = int(buf.size) * buf.dtype.itemsize
            input_bytes.append(size)
        largest = max(input_bytes, default=0)
        if largest and node.bytes >= blowup_factor * largest:
            wasted = node.bytes - largest
            blowup_bytes += wasted
            blowups.append(
                {
                    "node": node.id,
                    "op": node.op,
                    "bytes": node.bytes,
                    "largest_input_bytes": largest,
                    "wasted_bytes": wasted,
                    "src": node.src,
                    "scope": node.scope,
                }
            )
            findings.append(
                node_finding(
                    node,
                    "REPRO304",
                    f"output ({node.bytes:,} bytes) is "
                    f"{node.bytes / largest:.1f}x its largest input buffer "
                    f"({largest:,} bytes): mostly materialized broadcast "
                    "data a fused consumer would not allocate",
                )
            )

    return {
        "copies": copies,
        "required_copies": required,
        "redundant_copies": redundant,
        "redundant_copy_bytes": redundant_bytes,
        "broadcast_blowups": len(blowups),
        "broadcast_blowup_bytes": blowup_bytes,
        "blowups": blowups,
        "findings": findings,
    }


# -- AST defensive-copy audit --------------------------------------------------


def _is_fancy_index(index: ast.AST) -> bool:
    """True when the subscript uses advanced (copying) indexing."""
    if isinstance(index, ast.Slice):
        return False
    if isinstance(index, ast.Tuple):
        return any(_is_fancy_index(e) for e in index.elts)
    if isinstance(index, ast.Constant):
        return False  # scalar index -> view of a row, not a copy
    # A bare Name/Call/comparison as index is an index *array*.
    return isinstance(index, (ast.Name, ast.Call, ast.Compare, ast.BinOp))


def _mutates_name(stmt: ast.stmt, name: str) -> bool:
    """Does ``stmt`` mutate array ``name`` in place (store/aug/ufunc.at)?"""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("at", "fill", "sort", "put", "resize")
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == name
            ):
                return True
    return False


def _returns_name(stmt: ast.stmt, name: str) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
    return False


class _CopyAuditor(ast.NodeVisitor):
    def __init__(self, path: str, suppressed: dict) -> None:
        self.path = path
        self.suppressed = suppressed
        self.findings: list[LintDiagnostic] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.suppressed.get(line, ())
        if codes is None or (codes and code in codes):
            return
        self.findings.append(
            LintDiagnostic(
                self.path, line, getattr(node, "col_offset", 0), code, message
            )
        )

    # Pattern 1: <subscript with advanced index>.copy()
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "copy"
            and not node.args
            and isinstance(func.value, ast.Subscript)
            and _is_fancy_index(func.value.slice)
        ):
            self._report(
                node,
                "REPRO303",
                "advanced indexing already returns a fresh array; the "
                ".copy() doubles the allocation",
            )
        # Pattern 3: astype to the spelled-out current dtype is covered by
        # the graph pass; here catch astype(..., copy=True) chained twice.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Attribute)
            and func.value.func.attr == "astype"
        ):
            self._report(
                node,
                "REPRO309",
                "chained astype().astype() materializes an intermediate "
                "copy; cast once to the final dtype",
            )
        self.generic_visit(node)

    # Pattern 2: x = x.copy() before an early return of x.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_guarded_copies(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_guarded_copies(self, fn: ast.FunctionDef) -> None:
        copy_stmts: dict[str, ast.stmt] = {}
        for stmt in fn.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "copy"
                and isinstance(stmt.value.func.value, ast.Name)
                and stmt.value.func.value.id == stmt.targets[0].id
            ):
                copy_stmts[stmt.targets[0].id] = stmt
        if not copy_stmts:
            return
        for name, copy_stmt in copy_stmts.items():
            seen_copy = False
            for stmt in fn.body:
                if stmt is copy_stmt:
                    seen_copy = True
                    continue
                if not seen_copy:
                    continue
                if _mutates_name(stmt, name):
                    break  # copy justified before any return
                if _returns_name(stmt, name):
                    self._report(
                        copy_stmt,
                        "REPRO303",
                        f"{name!r} is copied before an early exit that "
                        "returns it unchanged; move the copy below the "
                        "guard so the no-op path allocates nothing",
                    )
                    break


def audit_copy_file(path: str | Path) -> list[LintDiagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                str(path), exc.lineno or 0, exc.offset or 0, "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    auditor = _CopyAuditor(str(path), _noqa_lines(source))
    auditor.visit(tree)
    return auditor.findings


def audit_copies(paths: list[str | Path] | None = None) -> dict:
    """AST defensive-copy audit of the flow packages."""
    if paths is None:
        package_root = Path(__file__).resolve().parents[1]
        paths = [
            package_root / sub
            for sub in COPY_AUDIT_PACKAGES
            if (package_root / sub).is_dir()
        ]
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    findings: list[LintDiagnostic] = []
    for f in files:
        findings.extend(audit_copy_file(f))
    findings.sort(key=lambda d: (d.path, d.line, d.col))
    return {"audited_files": len(files), "findings": findings}
