"""repro.perf — static performance analysis over the tensor IR.

Where :mod:`repro.ir` proves *correctness* properties of a traced model
(stability, determinism) and :mod:`repro.adjoint` proves them for the
backward pass, this package proves *performance* properties: every
diagnostic is either derived from the IR's exact shape/dtype/alias
information or checked against a tracemalloc/wall-clock measurement
(:mod:`repro.perf.validate`), never guessed.

Pass families
-------------
- :mod:`repro.perf.dtypeflow` — float64 creep in the float32 deployment
  (``REPRO301``/``302``) and cast churn (``REPRO307``);
- :mod:`repro.perf.aliasing` — redundant defensive copies (``REPRO303``),
  broadcast materialization blowups (``REPRO304``), chained same-dtype
  casts (``REPRO309``);
- :mod:`repro.perf.fusion` — unfused elementwise chains (``REPRO305``)
  and hidden contraction workspace copies (``REPRO311``);
- :mod:`repro.perf.loops` — AST-level Python loops over ndarrays
  (``REPRO306``), per-iteration allocations (``REPRO308``) and
  ``ufunc.at`` scatters (``REPRO312``);
- :mod:`repro.perf.validate` — the measured-vs-predicted harness behind
  ``REPRO310``.

Entry points: ``repro perfcheck <model|flow|all>`` on the CLI, or
:func:`perfcheck_all` / :func:`perfcheck_model` / :func:`perfcheck_flow`
from code.  These passes are deliberately *not* registered with the
:mod:`repro.ir.passes` registry — a perf advisory must never fail the
correctness gates run by ``repro analyze`` / ``build_model(analyze=True)``.
"""

from repro.diagnostics import codes_for

from .aliasing import alias_analysis, audit_copies
from .dtypeflow import audit_dtypes, dtype_flow
from .fusion import fusion_advisories
from .loops import audit_loops
from .report import (
    DEPLOY_DTYPE,
    SCHEMA,
    baseline_from_bundle,
    check_perf_baseline,
    default_dtype,
    perfcheck_all,
    perfcheck_flow,
    perfcheck_model,
    trace_model_at,
)
from .validate import DEFAULT_BOUND, ValidationResult, validate_bundle, validate_claim

#: ``{code: message}`` for every REPRO3xx rule (view of repro.diagnostics).
PERF_RULES = codes_for("perf")

__all__ = [
    "PERF_RULES",
    "SCHEMA",
    "DEFAULT_BOUND",
    "DEPLOY_DTYPE",
    "ValidationResult",
    "alias_analysis",
    "audit_copies",
    "audit_dtypes",
    "audit_loops",
    "baseline_from_bundle",
    "check_perf_baseline",
    "default_dtype",
    "dtype_flow",
    "fusion_advisories",
    "perfcheck_all",
    "perfcheck_flow",
    "perfcheck_model",
    "trace_model_at",
    "validate_bundle",
    "validate_claim",
]
