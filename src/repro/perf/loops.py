"""Loop-shape audit: Python-level iteration where numpy should vectorize.

The IR sees only what was traced through a ``Module.forward``; the
placement flow, feature extraction and training loop are plain Python
over ndarrays, where the expensive anti-patterns live at the *statement*
level.  Three AST rules cover them:

* ``REPRO306`` — a ``for`` loop whose body indexes an array with the
  loop variable (``for i in range(n): acc += grid[i] * w[i]``).  Each
  such subscript is a full interpreter round-trip per element; the
  vectorized form is typically 100–1000× faster.  Reported once per
  loop (not per subscript) to keep the signal readable.
* ``REPRO308`` — an array allocation (``np.zeros``/``stack``/``copy``/
  ``concatenate``...) inside a loop body.  Allocation cost is paid per
  iteration; hoisting the buffer (or batching with one call after the
  loop) pays it once.
* ``REPRO312`` — ``np.<ufunc>.at(...)`` scatter.  ``ufunc.at`` takes an
  unbuffered per-element path that is orders of magnitude slower than
  ``np.bincount``-style accumulation for add-scatters (measured in
  :mod:`repro.perf.validate`).

Only advisory severities: loops can be cold, allocations can be tiny.
The report ranks by file and honours ``# noqa: REPROxxx``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.rules import LintDiagnostic, _noqa_lines

__all__ = ["audit_loops", "LOOP_AUDIT_PACKAGES"]

LOOP_AUDIT_PACKAGES = ("features", "train", "placement", "routing", "eval")

# Allocator calls that create a fresh ndarray each invocation.
_ALLOCATORS = {
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "array", "stack", "concatenate",
    "tile", "repeat", "copy", "arange", "linspace", "meshgrid",
}


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _loop_vars(target: ast.AST) -> set[str]:
    return {
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    }


class _LoopAuditor(ast.NodeVisitor):
    def __init__(self, path: str, suppressed: dict) -> None:
        self.path = path
        self.suppressed = suppressed
        self.findings: list[LintDiagnostic] = []
        self._loop_depth = 0

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.suppressed.get(line, ())
        if codes is None or (codes and code in codes):
            return
        self.findings.append(
            LintDiagnostic(
                self.path, line, getattr(node, "col_offset", 0), code, message
            )
        )

    def visit_For(self, node: ast.For) -> None:
        loop_vars = _loop_vars(node.target)
        # REPRO306: loop-variable-indexed subscript loads in the body.
        elementwise_reads = 0
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Subscript):
                continue
            index_names = {
                n.id for n in ast.walk(sub.slice) if isinstance(n, ast.Name)
            }
            if index_names & loop_vars:
                elementwise_reads += 1
        if elementwise_reads:
            self._report(
                node,
                "REPRO306",
                f"Python loop indexes arrays with its loop variable "
                f"({elementwise_reads} subscript(s)); a vectorized "
                "formulation avoids the per-element interpreter round-trip",
            )

        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        tail = name.rsplit(".", 1)[-1]
        # REPRO312: np.<ufunc>.at scatter, loop or not.
        if (
            tail == "at"
            and name.count(".") == 2
            and name.startswith(("np.", "numpy."))
        ):
            ufunc = name.split(".")[1]
            hint = (
                "np.bincount(idx, weights=...) is immune to the fallback"
                if ufunc == "add"
                else "keep the output and value dtypes equal"
            )
            self._report(
                node,
                "REPRO312",
                f"np.{ufunc}.at() drops to numpy's unbuffered per-element "
                f"fallback (~30x, measured) whenever operand dtypes "
                f"mismatch; {hint}",
            )
        # REPRO308: allocator inside a loop body.
        elif self._loop_depth > 0 and tail in _ALLOCATORS:
            is_np_call = name.startswith(("np.", "numpy.")) and name.count(".") == 1
            is_method_copy = tail == "copy" and "." in name and not node.args
            if is_np_call or is_method_copy:
                self._report(
                    node,
                    "REPRO308",
                    f"{tail}() allocates a fresh array every loop iteration; "
                    "hoist the buffer out of the loop or batch the call",
                )
        self.generic_visit(node)


def audit_loop_file(path: str | Path) -> list[LintDiagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                str(path), exc.lineno or 0, exc.offset or 0, "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    auditor = _LoopAuditor(str(path), _noqa_lines(source))
    auditor.visit(tree)
    return auditor.findings


def audit_loops(paths: list[str | Path] | None = None) -> dict:
    """AST loop/allocation audit of the flow packages."""
    if paths is None:
        package_root = Path(__file__).resolve().parents[1]
        paths = [
            package_root / sub
            for sub in LOOP_AUDIT_PACKAGES
            if (package_root / sub).is_dir()
        ]
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    findings: list[LintDiagnostic] = []
    for f in files:
        findings.extend(audit_loop_file(f))
    findings.sort(key=lambda d: (d.path, d.line, d.col))
    return {"audited_files": len(files), "findings": findings}
