"""Dtype dataflow: find float64 creep in a float32 deployment.

The substrate deploys at ``float32`` (``set_default_dtype`` — half the
memory traffic of float64, which on a memory-bound numpy substrate is
close to half the wall-clock).  numpy's promotion rules silently undo
that the moment a strong float64 operand touches the stream: one
``np.float64`` scalar constant, one accumulator allocated with the
default dtype, and every downstream elementwise op moves twice the
bytes.  The runtime never complains — the result is merely slow.

Two analyses share this module:

* :func:`dtype_flow` — a forward lattice sweep over a traced
  :class:`~repro.ir.graph.Graph` (trace the model at float32; see
  :func:`repro.perf.report.trace_at`).  Every ``float64`` op node whose
  inputs include a narrower float is *widened traffic*; the pass walks
  back to the node that introduced the widening (a strong float64
  ``const``/``param``/``buffer``, or an op that promoted) and reports
  one ``REPRO301`` per origin call-site with the total downstream bytes
  it taints.  ``cast`` nodes that immediately undo a transient widening
  (f32 → f64 chain → f32) or cast to their own dtype are ``REPRO307``
  cast churn.
* :func:`audit_dtypes` — an AST audit of the float32 feature/training
  pipeline (``features/``, ``train/`` by default): explicit
  ``astype(np.float64)`` / ``dtype=np.float64`` is ``REPRO301``;
  ``np.zeros``/``np.ones``/``np.empty`` without a ``dtype=`` argument
  allocates float64 by default and is ``REPRO302``.

Both emit findings in the shared :class:`repro.lint.rules.LintDiagnostic`
format and honour ``# noqa`` on the flagged source line.
"""

from __future__ import annotations

import ast
from pathlib import Path

import numpy as np

from repro.ir.graph import Graph, Node
from repro.ir.passes import node_finding
from repro.lint.rules import LintDiagnostic, _noqa_lines

__all__ = ["dtype_flow", "audit_dtypes", "DTYPE_AUDIT_PACKAGES"]

# Packages that must stay float32 end-to-end: the feature extraction
# and dataset pipeline feeding the models.  Placement/routing math is
# float64 on purpose (coordinates, costs), so it is not audited here.
DTYPE_AUDIT_PACKAGES = ("features", "train")

_WIDE = np.dtype(np.float64)


def _is_float(dtype: np.dtype) -> bool:
    return dtype.kind == "f"


def _is_weak_scalar(node: Node) -> bool:
    """Exact python scalars promote weakly (NEP 50): never a widener."""
    return bool(node.meta.get("weak"))


def dtype_flow(graph: Graph, *, expected=np.float32) -> dict:
    """Flag float64 creep in a graph expected to run at ``expected``.

    Returns ``{"expected", "widened_ops", "widened_bytes", "origins",
    "findings"}`` where each origin carries the node that introduced the
    widening and the op bytes it taints downstream.
    """
    expected = np.dtype(expected)
    findings: list[LintDiagnostic] = []

    # -- forward sweep: which op nodes run wider than expected -----------------
    widened: list[Node] = [
        n
        for n in graph
        if n.kind == "op" and _is_float(n.dtype) and n.dtype.itemsize > expected.itemsize
    ]
    widened_ids = {n.id for n in widened}

    # -- origin attribution: walk each widened node back to the widener --------
    # A widener is (a) a strong float64 leaf (const/param/buffer) feeding
    # a float op, or (b) an op whose inputs are all <= expected width but
    # whose result is wider (a promotion the trace itself performed).
    origin_of: dict[int, int] = {}  # widened op id -> origin node id

    def classify(node: Node) -> int:
        if node.id in origin_of:
            return origin_of[node.id]
        wide_parents = [
            graph[i]
            for i in node.inputs
            if (graph[i].id in widened_ids)
            or (
                graph[i].kind != "op"
                and _is_float(graph[i].dtype)
                and graph[i].dtype.itemsize > expected.itemsize
                and not _is_weak_scalar(graph[i])
            )
        ]
        if not wide_parents:
            origin = node.id  # this op itself promoted
        else:
            parent = wide_parents[0]
            origin = classify(parent) if parent.kind == "op" else parent.id
        origin_of[node.id] = origin
        return origin

    tainted_bytes: dict[int, int] = {}
    tainted_ops: dict[int, int] = {}
    for node in widened:
        origin = classify(node)
        tainted_bytes[origin] = tainted_bytes.get(origin, 0) + node.bytes
        tainted_ops[origin] = tainted_ops.get(origin, 0) + 1

    origins = []
    for origin_id in sorted(tainted_bytes):
        origin = graph[origin_id]
        # Findings anchor at the first widened *op* for leaf origins —
        # a param/buffer/const has no useful call-site of its own.
        anchor = origin
        if origin.kind != "op" or not origin.src:
            anchor = next(
                n for n in widened if origin_of[n.id] == origin_id and n.src
            )
        wasted = tainted_bytes[origin_id] // 2  # float64 -> float32 halves
        origins.append(
            {
                "origin": origin_id,
                "origin_kind": origin.kind,
                "origin_op": origin.op,
                "origin_name": origin.name,
                "scope": anchor.scope,
                "src": anchor.src,
                "tainted_ops": tainted_ops[origin_id],
                "tainted_bytes": tainted_bytes[origin_id],
                "predicted_saving_bytes": wasted,
            }
        )
        what = (
            f"strong float64 {origin.kind} {origin.name or origin.op!r}"
            if origin.kind != "op"
            else f"promotion at {origin.op!r}"
        )
        findings.append(
            node_finding(
                anchor,
                "REPRO301",
                f"{what} widens {tainted_ops[origin_id]} downstream op(s) "
                f"to float64 ({tainted_bytes[origin_id]:,} bytes of "
                f"doubled traffic in a {expected.name} graph)",
            )
        )

    # -- cast churn ------------------------------------------------------------
    churn = []
    for node in graph:
        if node.kind != "op" or node.op != "cast":
            continue
        src_node = graph[node.inputs[0]]
        if node.dtype == src_node.dtype:
            churn.append(node)
            findings.append(
                node_finding(
                    node,
                    "REPRO307",
                    f"cast to its own dtype {node.dtype.name} copies "
                    f"{node.bytes:,} bytes for nothing",
                )
            )
        elif (
            node.dtype.itemsize < src_node.dtype.itemsize
            and src_node.id in widened_ids
        ):
            churn.append(node)
            findings.append(
                node_finding(
                    node,
                    "REPRO307",
                    f"cast back to {node.dtype.name} right after a transient "
                    f"{src_node.dtype.name} excursion — keep the chain in "
                    f"{node.dtype.name} instead",
                )
            )

    return {
        "expected": expected.name,
        "widened_ops": len(widened),
        "widened_bytes": sum(n.bytes for n in widened),
        "predicted_saving_bytes": sum(o["predicted_saving_bytes"] for o in origins),
        "cast_churn": len(churn),
        "origins": origins,
        "findings": findings,
    }


# -- AST audit of the float32 pipeline ----------------------------------------

# Allocators whose dtype defaults to float64 when the argument is omitted.
_DEFAULT_F64_ALLOCATORS = {"zeros", "ones", "empty"}


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _mentions_float64(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and sub.value in ("float64", ">f8", "f8"):
            return True
        if isinstance(sub, (ast.Attribute, ast.Name)) and _dotted(sub) in (
            "np.float64",
            "numpy.float64",
            "float64",
        ):
            return True
    return False


class _DtypeAuditor(ast.NodeVisitor):
    def __init__(self, path: str, suppressed: dict) -> None:
        self.path = path
        self.suppressed = suppressed
        self.findings: list[LintDiagnostic] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.suppressed.get(line, ())
        if codes is None or (codes and code in codes):
            return
        self.findings.append(
            LintDiagnostic(
                self.path, line, getattr(node, "col_offset", 0), code, message
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        tail = name.rsplit(".", 1)[-1]
        kwargs = {kw.arg for kw in node.keywords if kw.arg}

        if tail == "astype" and node.args and _mentions_float64(node.args[0]):
            self._report(
                node,
                "REPRO301",
                "astype(float64) widens a float32-pipeline array; keep the "
                "pipeline float32 (or justify with # noqa: REPRO301)",
            )
        elif any(
            kw.arg == "dtype" and _mentions_float64(kw.value)
            for kw in node.keywords
        ):
            self._report(
                node,
                "REPRO301",
                "explicit dtype=float64 allocation in a float32 pipeline",
            )
        elif (
            tail in _DEFAULT_F64_ALLOCATORS
            and name.startswith(("np.", "numpy."))
            and name.count(".") == 1
            and "dtype" not in kwargs
            and len(node.args) < 2  # second positional arg is the dtype
        ):
            self._report(
                node,
                "REPRO302",
                f"np.{tail}() without dtype= allocates float64 by default; "
                "pass dtype=np.float32 in this pipeline",
            )
        self.generic_visit(node)


def audit_dtype_file(path: str | Path) -> list[LintDiagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                str(path), exc.lineno or 0, exc.offset or 0, "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    auditor = _DtypeAuditor(str(path), _noqa_lines(source))
    auditor.visit(tree)
    return auditor.findings


def audit_dtypes(paths: list[str | Path] | None = None) -> dict:
    """AST dtype audit of the float32 pipeline (features + train)."""
    if paths is None:
        package_root = Path(__file__).resolve().parents[1]
        paths = [
            package_root / sub
            for sub in DTYPE_AUDIT_PACKAGES
            if (package_root / sub).is_dir()
        ]
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    findings: list[LintDiagnostic] = []
    for f in files:
        findings.extend(audit_dtype_file(f))
    findings.sort(key=lambda d: (d.path, d.line, d.col))
    return {"audited_files": len(files), "findings": findings}
