"""Placement constraints of the MLCAD 2023 contest (Section II-A).

Two constraint families must be satisfied by any legal macro placement:

* **Cascade shape constraints** — a list of macros that must occupy
  consecutive sites of the same column in a fixed vertical order
  (e.g. a chain of cascaded BRAMs).
* **Region constraints** — a rectangular fence; every instance assigned
  to the constraint must be placed on sites inside the rectangle.
  Unassigned instances may be placed anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CascadeShape", "RegionConstraint"]


@dataclass(frozen=True)
class CascadeShape:
    """Macros that must sit on consecutive same-column sites, in order.

    Attributes
    ----------
    instances:
        Instance indices, bottom to top; ``instances[i]`` must be placed
        exactly one site above ``instances[i-1]``.
    """

    instances: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.instances) < 2:
            raise ValueError("a cascade shape needs at least two macros")
        if len(set(self.instances)) != len(self.instances):
            raise ValueError("cascade shape instances must be distinct")

    def __len__(self) -> int:
        return len(self.instances)

    def is_satisfied(self, x: np.ndarray, y: np.ndarray, tol: float = 1e-6) -> bool:
        """Check column alignment and consecutive, ordered rows."""
        xs = x[list(self.instances)]
        ys = y[list(self.instances)]
        same_col = np.all(np.abs(xs - xs[0]) < tol)
        consecutive = np.all(np.abs(np.diff(ys) - 1.0) < tol)
        return bool(same_col and consecutive)


@dataclass(frozen=True)
class RegionConstraint:
    """A rectangular fence region with its assigned instances.

    Coordinates are in site units, half-open on the upper edges:
    a site ``(x, y)`` is inside iff ``xlo <= x < xhi`` and
    ``ylo <= y < yhi``.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float
    instances: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.xhi <= self.xlo or self.yhi <= self.ylo:
            raise ValueError(
                f"degenerate region ({self.xlo},{self.ylo})-({self.xhi},{self.yhi})"
            )

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xlo + self.xhi), 0.5 * (self.ylo + self.yhi))

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized membership test for site coordinates."""
        x = np.asarray(x)
        y = np.asarray(y)
        return (
            (x >= self.xlo) & (x < self.xhi) & (y >= self.ylo) & (y < self.yhi)
        )

    def violation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Distance of each point to the region (0 when inside).

        Used by the placer's region tension term: the gradient of this
        distance pulls constrained instances back inside their fence.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        dx = np.maximum(np.maximum(self.xlo - x, x - self.xhi), 0.0)
        dy = np.maximum(np.maximum(self.ylo - y, y - self.yhi), 0.0)
        return np.hypot(dx, dy)
