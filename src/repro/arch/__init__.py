"""FPGA device model: sites, columns, interconnect tiles, constraints."""

from .constraints import CascadeShape, RegionConstraint
from .device import DEFAULT_COLUMN_PATTERN, FPGADevice, xcvu3p_like
from .resources import CELL_RESOURCES, MACRO_RESOURCES, ResourceType, SiteType

__all__ = [
    "SiteType",
    "ResourceType",
    "MACRO_RESOURCES",
    "CELL_RESOURCES",
    "FPGADevice",
    "xcvu3p_like",
    "DEFAULT_COLUMN_PATTERN",
    "CascadeShape",
    "RegionConstraint",
]
