"""Resource and site taxonomy of the MLCAD 2023 target device.

The contest architecture (16nm Xilinx UltraScale+ XCVU3P) exposes four
heterogeneous site types — CLB, DSP, BRAM and URAM (Section II-A).
Following the paper, DSP/BRAM/URAM instances are *macros* and everything
placed on CLB sites (LUTs, FFs) is a *cell*.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["SiteType", "ResourceType", "MACRO_RESOURCES", "CELL_RESOURCES"]


class SiteType(Enum):
    """Physical site kinds arranged in device columns."""

    CLB = "CLB"
    DSP = "DSP"
    BRAM = "BRAM"
    URAM = "URAM"
    IO = "IO"


class ResourceType(Enum):
    """Logical resource consumed by a netlist instance."""

    LUT = "LUT"
    FF = "FF"
    DSP = "DSP"
    BRAM = "BRAM"
    URAM = "URAM"

    @property
    def site_type(self) -> SiteType:
        """The site type that hosts this resource."""
        return _RESOURCE_TO_SITE[self]

    @property
    def is_macro(self) -> bool:
        """Whether the paper treats instances of this resource as macros."""
        return self in MACRO_RESOURCES


_RESOURCE_TO_SITE = {
    ResourceType.LUT: SiteType.CLB,
    ResourceType.FF: SiteType.CLB,
    ResourceType.DSP: SiteType.DSP,
    ResourceType.BRAM: SiteType.BRAM,
    ResourceType.URAM: SiteType.URAM,
}

MACRO_RESOURCES = frozenset(
    {ResourceType.DSP, ResourceType.BRAM, ResourceType.URAM}
)
CELL_RESOURCES = frozenset({ResourceType.LUT, ResourceType.FF})
