"""Column-based FPGA device model (XCVU3P-like).

UltraScale+ devices arrange sites in full-height columns of a single
type; DSP/BRAM/URAM columns are interleaved among CLB columns at fixed
ratios, which is why congestion hotspots form around macro columns.
:class:`FPGADevice` models that geometry: a ``num_cols × num_rows`` site
grid, a repeating column pattern, per-site resource capacities, and the
interconnect tile grid the router/congestion metric operates on
(Fig. 1).

The real XCVU3P is reproduced *in shape* rather than site-for-site (the
vendor device database is proprietary); :func:`xcvu3p_like` builds a
device whose column ratios and capacity mix match the contest part at a
configurable scale.  See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .resources import ResourceType, SiteType

__all__ = ["FPGADevice", "xcvu3p_like", "DEFAULT_COLUMN_PATTERN"]

# Repeating left-to-right column pattern: mostly CLB with interleaved
# macro columns, echoing UltraScale+ floorplans (one DSP column per ~7
# columns, one BRAM column per ~7, URAM sparser).
DEFAULT_COLUMN_PATTERN: tuple[SiteType, ...] = (
    SiteType.CLB,
    SiteType.CLB,
    SiteType.DSP,
    SiteType.CLB,
    SiteType.CLB,
    SiteType.BRAM,
    SiteType.CLB,
    SiteType.CLB,
    SiteType.CLB,
    SiteType.DSP,
    SiteType.CLB,
    SiteType.CLB,
    SiteType.BRAM,
    SiteType.CLB,
    SiteType.URAM,
    SiteType.CLB,
)

# Per-site resource capacity: an UltraScale+ CLB (SLICE) holds 8 LUTs
# and 16 FFs; macro sites hold one macro each.  BRAM/URAM sites span
# multiple rows on real silicon; we keep one site per row and scale
# capacities in the generator instead, which preserves column counts.
_SITE_CAPACITY: dict[SiteType, dict[ResourceType, float]] = {
    SiteType.CLB: {ResourceType.LUT: 8.0, ResourceType.FF: 16.0},
    SiteType.DSP: {ResourceType.DSP: 1.0},
    SiteType.BRAM: {ResourceType.BRAM: 1.0},
    SiteType.URAM: {ResourceType.URAM: 1.0},
    SiteType.IO: {},
}


@dataclass
class FPGADevice:
    """A heterogeneous column-based FPGA fabric.

    Attributes
    ----------
    num_cols, num_rows:
        Site grid dimensions.  Column ``x`` holds ``num_rows`` sites of
        ``column_types[x]``.
    column_types:
        Site type of each column.
    tile_cols, tile_rows:
        Interconnect tile grid dimensions (Fig. 1).  Each tile covers a
        ``num_cols / tile_cols`` × ``num_rows / tile_rows`` patch of
        sites and carries independent short/global wire capacity in each
        of the four directions.
    short_capacity, global_capacity:
        Routing capacity per tile boundary per direction, in wire units,
        for short (single-tile) and global (long) wires.
    """

    num_cols: int
    num_rows: int
    column_types: tuple[SiteType, ...]
    tile_cols: int
    tile_rows: int
    short_capacity: float = 32.0
    global_capacity: float = 20.0
    name: str = "generic"
    _capacity_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.column_types) != self.num_cols:
            raise ValueError(
                f"column_types has {len(self.column_types)} entries for "
                f"{self.num_cols} columns"
            )
        if self.num_cols % self.tile_cols or self.num_rows % self.tile_rows:
            raise ValueError(
                "site grid must be an integer multiple of the tile grid: "
                f"sites {(self.num_cols, self.num_rows)}, "
                f"tiles {(self.tile_cols, self.tile_rows)}"
            )

    # -- geometry -------------------------------------------------------------

    @property
    def width(self) -> float:
        """Placement-region width in site units."""
        return float(self.num_cols)

    @property
    def height(self) -> float:
        """Placement-region height in site units."""
        return float(self.num_rows)

    def columns_of_type(self, site_type: SiteType) -> np.ndarray:
        """Indices of all columns holding the given site type."""
        return np.array(
            [x for x, t in enumerate(self.column_types) if t is site_type],
            dtype=np.int64,
        )

    def site_to_tile(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map site coordinates to interconnect tile indices."""
        sx = self.num_cols // self.tile_cols
        sy = self.num_rows // self.tile_rows
        tx = np.clip(np.asarray(x, dtype=np.int64) // sx, 0, self.tile_cols - 1)
        ty = np.clip(np.asarray(y, dtype=np.int64) // sy, 0, self.tile_rows - 1)
        return tx, ty

    # -- capacity ----------------------------------------------------------------

    def resource_capacity(self, resource: ResourceType) -> float:
        """Total device capacity of ``resource`` across all sites."""
        if resource not in self._capacity_cache:
            per_col = {
                t: _SITE_CAPACITY[t].get(resource, 0.0)
                for t in set(self.column_types)
            }
            total = sum(
                per_col[t] * self.num_rows for t in self.column_types
            )
            self._capacity_cache[resource] = float(total)
        return self._capacity_cache[resource]

    def site_capacity(self, site_type: SiteType, resource: ResourceType) -> float:
        """Capacity of ``resource`` in a single site of ``site_type``."""
        return _SITE_CAPACITY[site_type].get(resource, 0.0)

    def capacity_map(self, resource: ResourceType, bins: int) -> np.ndarray:
        """Per-bin capacity of ``resource`` on a ``bins × bins`` grid.

        The grid spans the whole fabric; each device column contributes
        its capacity to the horizontal bins it overlaps.  Used by the
        density (electrostatics) model and by inflation scaling (Eq. 12).
        """
        cap = np.zeros((bins, bins))
        col_width = self.num_cols / bins
        rows_per_bin = self.num_rows / bins
        for x, site_type in enumerate(self.column_types):
            per_site = _SITE_CAPACITY[site_type].get(resource, 0.0)
            if per_site == 0.0:
                continue
            bin_lo = int(x / col_width)
            bin_hi = int((x + 1 - 1e-9) / col_width)
            # A column can straddle bins when bins does not divide
            # num_cols; split its capacity proportionally.
            for b in range(bin_lo, bin_hi + 1):
                left = max(x, b * col_width)
                right = min(x + 1, (b + 1) * col_width)
                frac = max(0.0, right - left)
                cap[b, :] += per_site * rows_per_bin * frac
        return cap

    def summary(self) -> dict[str, float]:
        """Headline capacities, for logging and tests."""
        return {
            "name": self.name,
            "cols": self.num_cols,
            "rows": self.num_rows,
            "LUT": self.resource_capacity(ResourceType.LUT),
            "FF": self.resource_capacity(ResourceType.FF),
            "DSP": self.resource_capacity(ResourceType.DSP),
            "BRAM": self.resource_capacity(ResourceType.BRAM),
            "URAM": self.resource_capacity(ResourceType.URAM),
        }


def xcvu3p_like(
    scale: float = 1.0,
    tile_cols: int = 64,
    tile_rows: int = 64,
    pattern: tuple[SiteType, ...] = DEFAULT_COLUMN_PATTERN,
) -> FPGADevice:
    """Build a device with XCVU3P-like column ratios at a given scale.

    ``scale = 1.0`` approximates the contest part's resource mix
    (~394K LUTs / 788K FFs / 2280 DSPs / 720 BRAMs / 320 URAMs in the
    XCVU3P-FFVC1517).  Smaller scales shrink both axes by ``sqrt(scale)``
    so aspect ratio and column interleaving are preserved.

    ``tile_cols``/``tile_rows`` are clamped to divide the site grid.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    # Base (scale=1) geometry: 256 columns x 384 rows in the default
    # pattern gives ~392K LUTs, 2280 DSP-like and ~730 BRAM-like sites.
    base_cols, base_rows = 256, 384
    factor = float(np.sqrt(scale))
    num_cols = max(len(pattern), int(round(base_cols * factor)))
    num_rows = max(16, int(round(base_rows * factor)))

    tile_cols = min(tile_cols, num_cols)
    tile_rows = min(tile_rows, num_rows)
    num_cols -= num_cols % tile_cols
    num_rows -= num_rows % tile_rows

    reps = int(np.ceil(num_cols / len(pattern)))
    column_types = (pattern * reps)[:num_cols]
    return FPGADevice(
        num_cols=num_cols,
        num_rows=num_rows,
        column_types=tuple(column_types),
        tile_cols=tile_cols,
        tile_rows=tile_rows,
        name=f"xcvu3p-like(scale={scale:g})",
    )
