"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main workflows:

* ``stats``  — print the benchmark-suite statistics (Table I left columns).
* ``place``  — run the Fig. 6 flow on one design and report the outcome.
* ``route``  — route the (freshly placed) design and print Fig. 1 levels.
* ``score``  — place + route + contest scores (Eqs. 1-3) in one shot.
* ``train``  — train a congestion model and save a checkpoint.
* ``table2`` — run the four teams on selected designs (mini Table II).
* ``lint``   — static autograd lint + ShapeTracer model validation.
* ``analyze`` — symbolic-IR static analysis: memory plan, FLOP cost,
  stability + determinism audit (see repro.ir); ``--backward`` adds the
  adjoint-graph/gradient-flow/training-memory section (repro.adjoint).
* ``gradcheck`` — gradient audit: vjp contract capture, randomized
  central-difference derivative checks, gradient-flow analysis
  (see repro.adjoint).
* ``perfcheck`` — static performance analysis: dtype-flow / copy-alias /
  fusion passes over the traced graphs plus AST audits of the flow
  code, with measured-vs-predicted validation (see repro.perf).
* ``plancheck`` — compile each model's traced graph into a verified
  ``repro.schedule/v1`` execution plan (fusion groups, arena buffer
  assignment, copy-elision certificates) and re-check it with the
  independent plan verifier (see repro.schedule).
* ``concheck`` — static concurrency-safety certification: re-derive the
  worker-reachable call graph from the dotted job references, then run
  effect inference, deep RNG discipline, fork/pickle safety and the
  durable-write lint over it (REPRO601-612, see repro.concheck).
* ``scalecheck`` — certified asymptotic scaling: exact polynomial cost
  envelopes per registry model (fitted over a grid ladder, cross-checked
  against the memory planner and one measured training step) plus a
  loop-nest complexity lint over the untraced flow code (REPRO701-710,
  see repro.scaling).
* ``numcheck`` — static floating-point error-bound certification:
  first-order rounding-error envelopes over every registry model's
  forward and adjoint graphs, cancellation/conditioning screens,
  reassociation + dtype-pin safety certificates for each execution
  plan, a mixed-precision lint over the flow code, and a float64
  shadow-execution harness that validates every certified bound by
  measurement (REPRO801-810, see repro.numcheck).
* ``check``  — the unified gate: lint + analyze + gradcheck + perfcheck
  + plancheck + concheck + scalecheck + numcheck in one command with
  one combined JSON report (``repro.check/v1``); ``--update-baselines``
  atomically refreshes every ``benchmarks/*_baseline.json`` instead.

Every analysis command reports through one exit-code contract (the
table lives in ``docs/API.md``): 0 = clean, 1 = blocking findings,
2 = usage error, 3 = baseline drift only, 4 = internal error.  Blocking
findings take precedence over drift when both occur.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_BLOCKING",
    "EXIT_USAGE",
    "EXIT_DRIFT",
    "EXIT_INTERNAL",
]

# The shared exit-code contract for the analysis commands (analyze,
# gradcheck, perfcheck, plancheck, check).  argparse owns 2 (usage).
EXIT_OK = 0
EXIT_BLOCKING = 1
EXIT_USAGE = 2
EXIT_DRIFT = 3
EXIT_INTERNAL = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MFA+Transformer congestion prediction reproduction (DATE 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, multi_design: bool = False):
        from .netlist import MLCAD2023_SPECS

        if multi_design:
            p.add_argument(
                "--designs", nargs="+", default=["Design_116"],
                choices=sorted(MLCAD2023_SPECS),
            )
        else:
            p.add_argument(
                "--design", default="Design_116",
                choices=sorted(MLCAD2023_SPECS),
            )
        p.add_argument(
            "--scale", type=float, default=64.0,
            help="downscale factor (64 means 1/64 of full size)",
        )

    add_common(sub.add_parser("stats", help="benchmark statistics"), multi_design=True)

    place = sub.add_parser("place", help="run the Fig. 6 placement flow")
    add_common(place)
    place.add_argument("--iters", type=int, default=500)

    route = sub.add_parser("route", help="place then route, print Fig. 1 map")
    add_common(route)

    score = sub.add_parser("score", help="place + route + contest scores")
    add_common(score)

    train = sub.add_parser("train", help="train a congestion model")
    add_common(train, multi_design=True)
    train.add_argument("--model", default="ours",
                       choices=("unet", "pgnn", "pros2", "ours"))
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--placements", type=int, default=4)
    train.add_argument("--grid", type=int, default=64)
    train.add_argument("--out", default="congestion_model.npz")
    train.add_argument(
        "--checkpoint-dir", default=None,
        help="write atomic last/best checkpoint bundles here "
        "(enables crash-safe training)",
    )
    train.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="epochs between checkpoint bundles (default 1)",
    )
    train.add_argument(
        "--resume", action="store_true",
        help="resume from the last bundle in --checkpoint-dir "
        "(refuses a mismatched config fingerprint)",
    )

    table2 = sub.add_parser("table2", help="mini Table II (4 teams)")
    add_common(table2, multi_design=True)
    table2.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan (team, design) evaluations across N supervised worker "
        "processes (repro.orchestrate); 0 = supervised serial",
    )
    table2.add_argument(
        "--seed", type=int, default=None,
        help="root seed for deterministic per-job RNG streams "
        "(parallel runs reproduce serial bitwise)",
    )
    table2.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable JSONL job journal (enables --resume after a crash)",
    )
    table2.add_argument(
        "--resume", action="store_true",
        help="skip journal-verified completed jobs and finish the rest",
    )
    table2.add_argument(
        "--artifact", default="results/table2_run.json", metavar="PATH",
        help="structured JSON run record: scores, error manifest with "
        "traceback tails, REPRO5xx incidents (default %(default)s)",
    )

    lint = sub.add_parser(
        "lint", help="static autograd lint + shape checks (see repro.lint)"
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint "
        "(default: lint the repro package and validate the models)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="symbolic-IR static analysis (memory/FLOPs/stability/determinism)",
    )
    analyze.add_argument(
        "model", choices=("unet", "pgnn", "pros2", "ours", "all"),
        help="registry model to trace, or 'all' for the whole registry",
    )
    analyze.add_argument("--preset", default="fast",
                         choices=("tiny", "fast", "paper"))
    analyze.add_argument(
        "--grid", dest="grids", type=int, action="append", metavar="N",
        help="input grid size; repeatable (default: 64)",
    )
    analyze.add_argument("--json", action="store_true",
                         help="print the full repro.ir/v1 report bundle")
    analyze.add_argument("--top", type=int, default=5,
                         help="rows in the layer/live-range tables (default 5)")
    analyze.add_argument(
        "--no-determinism", action="store_true",
        help="skip the source-level RNG/iteration-order audit",
    )
    analyze.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff FLOPs/peak-memory/node counts against a baseline JSON "
        "and fail on any drift",
    )
    analyze.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the invariant slice of this run to a baseline JSON",
    )
    analyze.add_argument(
        "--backward", action="store_true",
        help="also trace the backward tape: adjoint-graph stats, "
        "gradient-flow findings (REPRO205-207) and the forward+backward "
        "training-memory plan (see repro.adjoint)",
    )

    gradcheck = sub.add_parser(
        "gradcheck",
        help="gradient audit: vjp contracts + finite differences "
        "(see repro.adjoint)",
    )
    gradcheck.add_argument(
        "model", choices=("unet", "pgnn", "pros2", "ours", "all", "ops"),
        help="registry model to audit, 'all' for the whole registry, or "
        "'ops' for the full primitive-op case sweep without a model",
    )
    gradcheck.add_argument("--preset", default="fast",
                           choices=("tiny", "fast", "paper"))
    gradcheck.add_argument("--grid", type=int, default=64)
    gradcheck.add_argument("--seed", type=int, default=0)
    gradcheck.add_argument("--json", action="store_true",
                           help="print the full repro.adjoint/v1 report bundle")

    perfcheck = sub.add_parser(
        "perfcheck",
        help="static performance analysis: dtype/copy/fusion passes + "
        "measured validation (see repro.perf)",
    )
    perfcheck.add_argument(
        "target", choices=("unet", "pgnn", "pros2", "ours", "flow", "all"),
        help="registry model to trace, 'flow' for the AST audit of the "
        "pipeline code, or 'all' for models + flow",
    )
    perfcheck.add_argument("--preset", default="fast",
                           choices=("tiny", "fast", "paper"))
    perfcheck.add_argument("--grid", type=int, default=64)
    perfcheck.add_argument("--json", action="store_true",
                           help="print the full repro.perf/v1 report bundle")
    perfcheck.add_argument("--top", type=int, default=5,
                           help="findings shown per report (default 5)")
    perfcheck.add_argument(
        "--no-validate", action="store_true",
        help="skip the measured-vs-predicted validation harness",
    )
    perfcheck.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff the deterministic finding counts/bytes against a "
        "baseline JSON and fail on any drift",
    )
    perfcheck.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the deterministic slice of this run to a baseline JSON",
    )

    plancheck = sub.add_parser(
        "plancheck",
        help="compile + independently verify execution plans "
        "(see repro.schedule)",
    )
    plancheck.add_argument(
        "model", choices=("unet", "pgnn", "pros2", "ours", "all"),
        help="registry model to plan, or 'all' for the whole registry",
    )
    plancheck.add_argument("--preset", default="fast",
                          choices=("tiny", "fast", "paper"))
    plancheck.add_argument(
        "--grid", dest="grids", type=int, action="append", metavar="N",
        help="input grid size; repeatable (default: 64)",
    )
    plancheck.add_argument(
        "--backward", action="store_true",
        help="also compile + verify the training plan over the autograd "
        "tape (gradient arena slots, tape retention)",
    )
    plancheck.add_argument("--json", action="store_true",
                          help="print the full repro.schedule/v1 bundle "
                          "(including the sealed plans)")
    plancheck.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff plan skeletons + fingerprints against a baseline JSON "
        "and fail on any drift",
    )
    plancheck.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the deterministic plan slice of this run to a "
        "baseline JSON",
    )

    concheck = sub.add_parser(
        "concheck",
        help="static concurrency-safety analysis of the worker-reachable "
        "call graph (see repro.concheck)",
    )
    concheck.add_argument(
        "--root", metavar="DIR", default=None,
        help="package tree to analyze (default: the installed repro "
        "package source)",
    )
    concheck.add_argument("--json", action="store_true",
                          help="print the full repro.concheck/v1 bundle")
    concheck.add_argument("--top", type=int, default=10,
                          help="findings shown without --json (default 10)")
    concheck.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff worker roots + per-code counts against a baseline JSON "
        "and fail on any drift",
    )
    concheck.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the deterministic slice of this run to a baseline JSON",
    )

    scalecheck = sub.add_parser(
        "scalecheck",
        help="certified asymptotic scaling: exact cost envelopes per "
        "model + loop-nest complexity lint over the flow code "
        "(see repro.scaling)",
    )
    scalecheck.add_argument(
        "target", choices=("unet", "pgnn", "pros2", "ours", "flow", "all"),
        help="registry model to certify, 'flow' for the loop-nest lint "
        "only, or 'all' for models + flow",
    )
    scalecheck.add_argument("--preset", default="fast",
                            choices=("tiny", "fast", "paper"))
    scalecheck.add_argument("--batch", type=int, default=1)
    scalecheck.add_argument(
        "--ladder", dest="ladder", type=int, action="append", metavar="N",
        help="grid ladder rung; repeatable "
        "(default: 64 96 128 192 256 384 512)",
    )
    scalecheck.add_argument(
        "--cache", metavar="DIR", default=None,
        help="cache trace samples here, keyed on a source fingerprint "
        "of the traced packages (CI reuses them across runs)",
    )
    scalecheck.add_argument(
        "--no-measure", action="store_true",
        help="skip the tracemalloc-measured training-step cross-check "
        "(REPRO709)",
    )
    scalecheck.add_argument("--json", action="store_true",
                            help="print the full repro.scaling/v1 bundle")
    scalecheck.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff certified exponents + leading coefficients against a "
        "baseline JSON and fail on any drift",
    )
    scalecheck.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the deterministic slice of this run to a baseline JSON",
    )

    numcheck = sub.add_parser(
        "numcheck",
        help="static floating-point error-bound certification + float64 "
        "shadow validation (see repro.numcheck)",
    )
    numcheck.add_argument(
        "target", choices=("unet", "pgnn", "pros2", "ours", "flow", "all"),
        help="registry model to certify, 'flow' for the mixed-precision "
        "lint only, or 'all' for models + flow",
    )
    numcheck.add_argument("--preset", default="fast",
                          choices=("tiny", "fast", "paper"))
    numcheck.add_argument(
        "--grid", dest="grids", type=int, action="append", metavar="N",
        help="certification grid; repeatable (default: 32 64)",
    )
    numcheck.add_argument("--batch", type=int, default=1)
    numcheck.add_argument("--seed", type=int, default=0)
    numcheck.add_argument(
        "--budget", type=float, default=None,
        help="relative-error budget for the certified envelopes "
        "(default: the registry budget, see repro.numcheck)",
    )
    numcheck.add_argument(
        "--no-measure", action="store_true",
        help="skip the float64 shadow-execution harness (REPRO809/810)",
    )
    numcheck.add_argument(
        "--cache", metavar="DIR", default=None,
        help="cache static certifications here, keyed on a source "
        "fingerprint (CI shares the scaling trace cache directory)",
    )
    numcheck.add_argument("--json", action="store_true",
                          help="print the full repro.numcheck/v1 bundle")
    numcheck.add_argument("--top", type=int, default=10,
                          help="findings shown without --json (default 10)")
    numcheck.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="diff certified bounds + certificate verdicts against a "
        "baseline JSON and fail on any drift",
    )
    numcheck.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the deterministic slice of this run to a baseline JSON",
    )

    check = sub.add_parser(
        "check",
        help="unified gate: lint + analyze + gradcheck + perfcheck "
        "+ plancheck + concheck + scalecheck + numcheck",
    )
    check.add_argument("--preset", default="fast",
                       choices=("tiny", "fast", "paper"))
    check.add_argument("--grid", type=int, default=64)
    check.add_argument("--json", action="store_true",
                       help="print one combined repro.check/v1 report")
    check.add_argument(
        "--no-validate", action="store_true",
        help="skip perfcheck's measured validation harness",
    )
    check.add_argument(
        "--fail-on", default="blocking", choices=("advisory", "blocking"),
        help="failure threshold: 'blocking' (default, current behavior) "
        "or 'advisory' to also fail when non-blocking findings appear",
    )
    check.add_argument(
        "--update-baselines", action="store_true",
        help="refresh every benchmarks/*_baseline.json atomically with "
        "the CI-pinned configurations (all land, or none do), then exit",
    )

    return parser


def _cmd_stats(args) -> int:
    from .netlist import format_stats_table, mlcad2023_suite

    designs = mlcad2023_suite(tuple(args.designs), scale=1.0 / args.scale)
    print(format_stats_table(designs))
    return 0


def _cmd_place(args) -> int:
    from .netlist import MLCAD2023_SPECS, generate_design
    from .placement import GPConfig, PlacerConfig, place_design

    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    outcome = place_design(
        design, config=PlacerConfig(gp=GPConfig(bins=32, max_iters=args.iters))
    )
    print(f"{design.name}: hpwl={outcome.hpwl:,.0f} legal={outcome.legal} "
          f"t_macro={outcome.t_macro_minutes:.2f}min")
    print(f"overflow: { {k: round(v, 3) for k, v in outcome.final_overflow.items()} }")
    return 0 if outcome.legal else 1


def _cmd_route(args) -> int:
    from .netlist import MLCAD2023_SPECS, generate_design
    from .placement import place_design
    from .routing import congestion_report, route_design

    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    place_design(design)
    report = congestion_report(route_design(design))
    print(report.ascii_map())
    hist = np.bincount(report.level_map.ravel(), minlength=8)
    print(f"levels: {hist.tolist()}")
    return 0


def _cmd_score(args) -> int:
    from .contest import ContestScore, initial_routing_score
    from .netlist import MLCAD2023_SPECS, generate_design
    from .placement import place_design
    from .routing import DetailedRoutingModel, congestion_report, route_design

    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    outcome = place_design(design)
    routing = route_design(design)
    report = congestion_report(routing)
    detailed = DetailedRoutingModel().evaluate(routing, report)
    score = ContestScore(
        design=design.name, team="cli",
        s_ir=initial_routing_score(report), s_dr=detailed.iterations,
        t_macro_minutes=outcome.t_macro_minutes, t_pr_hours=detailed.hours,
    )
    print(f"{design.name}: S_IR={score.s_ir} S_DR={score.s_dr} "
          f"S_R={score.s_r:.0f} T_P&R={score.t_pr_hours:.2f}h "
          f"S_score={score.s_score:.2f}")
    return 0


def _cmd_train(args) -> int:
    from .models import build_model
    from .netlist import MLCAD2023_SPECS
    from .nn import save_module
    from .train import CongestionDataset, DatasetConfig, TrainConfig, Trainer

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    config = DatasetConfig(
        grid=args.grid,
        placements_per_design=args.placements,
        design_scale=1.0 / args.scale,
        seed=2023,
    )
    specs = [MLCAD2023_SPECS[name] for name in args.designs]
    dataset = CongestionDataset.build(specs, config)
    model = build_model(args.model, "fast", grid=args.grid)
    trainer = Trainer(
        TrainConfig(epochs=args.epochs, batch_size=8, lr=2e-3,
                    max_class_weight=4.0,
                    log_every=max(1, args.epochs // 10),
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_every=args.checkpoint_every,
                    resume=args.resume)
    )
    result = trainer.train(model, dataset)
    metrics = Trainer.evaluate(model, dataset.eval)
    if result.resumed_from_epoch:
        print(f"resumed from epoch {result.resumed_from_epoch} "
              f"({args.checkpoint_dir})")
    if result.recoveries:
        print(f"recovered from {len(result.recoveries)} divergence rollback(s)")
    print(f"trained {args.model} ({model.num_parameters():,} params) "
          f"{result.epochs} epochs in {result.seconds:.0f}s")
    print(f"eval: ACC={metrics['ACC']:.3f} R2={metrics['R2']:.3f} "
          f"NRMS={metrics['NRMS']:.3f}")
    save_module(model, args.out)
    print(f"checkpoint: {args.out}")
    return 0


def _cmd_table2(args) -> int:
    from .contest import contest_teams, format_table2, run_table2, write_table2_artifact

    orchestrated = (
        args.parallel is not None or args.journal is not None or args.resume
    )
    if args.resume and args.journal is None:
        print("table2: --resume requires --journal PATH", file=sys.stderr)
        return EXIT_USAGE
    if orchestrated:
        result = run_table2(
            design_names=tuple(args.designs), scale=1.0 / args.scale,
            verbose=True, parallel=args.parallel, seed=args.seed,
            journal_path=args.journal, resume=args.resume,
        )
    else:
        result = run_table2(
            contest_teams(), design_names=tuple(args.designs),
            scale=1.0 / args.scale, verbose=True,
        )
    print()
    print(format_table2(result))
    if args.artifact:
        path = write_table2_artifact(result, args.artifact)
        print(f"\nrun artifact: {path}")
    if result.incidents:
        print(f"orchestration incidents: {len(result.incidents)} (see artifact)")
    return EXIT_OK if result.complete else EXIT_BLOCKING


def _cmd_lint(args) -> int:
    from pathlib import Path

    from .lint.cli import main as lint_main

    argv = list(args.lint_args)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        # Default gate: lint the installed repro package and statically
        # validate the registry models at every paper grid.
        argv = [str(Path(__file__).resolve().parent), "--models"]
    return lint_main(argv)


def _mb(nbytes: int) -> str:
    return f"{nbytes / 1e6:,.2f} MB"


def _print_report(report: dict, top: int) -> None:
    cost = report["cost"]
    mem = report["memory"]
    print(f"{report['model']} (preset={report['preset']}, "
          f"grid={report['grid']}, batch={report['batch']})")
    print(f"  graph: {report['graph']['nodes']} nodes, "
          f"params={cost['param_count']:,} ({_mb(cost['param_bytes'])})")
    print(f"  flops: {cost['total_flops']:,} "
          f"({cost['flops_per_output_pixel']:,}/output px)")
    print(f"  memory: peak activations {_mb(mem['peak_bytes'])} "
          f"(+{_mb(mem['persistent_bytes'])} persistent, "
          f"{mem['activation_buffers']} buffers)")
    print("  hottest layers:")
    for layer in cost["by_layer"][:top]:
        print(f"    {layer['flops']:>15,}  {layer['name']} "
              f"({layer['nodes']} nodes)")
    print("  fattest live ranges:")
    for rng in mem["top_liveranges"][:top]:
        dies = "end" if rng["dies"] is None else f"%{rng['dies']}"
        print(f"    {_mb(rng['bytes']):>12}  %{rng['node']} {rng['op']} "
              f"in {rng['scope'] or '<toplevel>'} (dies {dies})")
    opp = report["opportunities"]
    print(f"  opportunities: {opp['dead']['dead_nodes']} dead nodes "
          f"({opp['dead']['dead_flops']:,} flops), "
          f"{opp['duplicates']['duplicate_groups']} duplicate groups "
          f"({opp['duplicates']['wasted_flops']:,} wasted flops, "
          f"{_mb(opp['duplicates']['wasted_bytes'])} wasted)")
    for finding in opp["findings"]:
        print(f"    note: {finding['path']}:{finding['line']}: "
              f"{finding['code']} {finding['message']}")
    if "backward" in report:
        back = report["backward"]
        mem = back["memory"]
        counts = back["adjoint_counts"]
        print(f"  backward: {back['tape_entries']} tape entries -> "
              f"{back['adjoint_nodes']} adjoint nodes "
              f"(vjp={counts.get('vjp', 0)}, add={counts.get('add', 0)}), "
              f"{back['params_connected']}/{back['params_total']} params "
              "connected")
        print(f"  training memory: peak {_mb(mem['train_peak_bytes'])} at "
              f"{mem['peak_pos']} (retained at backward "
              f"{_mb(mem['retained_at_backward_bytes'])}, gradients "
              f"{_mb(mem['grad_bytes_total'])})")
        for finding in back["findings"]:
            print(f"    note: {finding['path']}:{finding['line']}: "
                  f"{finding['code']} {finding['message']}")
    for failure in report["failures"]:
        print(f"  FAIL: {failure}")


def _cmd_analyze(args) -> int:
    import json

    from .ir import analyze_registry, baseline_from_reports, check_baseline
    from .models.registry import MODEL_NAMES

    models = MODEL_NAMES if args.model == "all" else (args.model,)
    grids = tuple(args.grids or [64])
    bundle = analyze_registry(
        models, preset=args.preset, grids=grids,
        determinism=not args.no_determinism,
        backward=args.backward,
    )

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        for report in bundle["reports"]:
            _print_report(report, args.top)
            print()

    status = EXIT_OK
    failures = [f for report in bundle["reports"] for f in report["failures"]]
    if failures:
        if args.json:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
        print(f"error: {len(failures)} blocking finding(s)", file=sys.stderr)
        status = EXIT_BLOCKING

    from .baselines import apply_baseline_flags

    drift = apply_baseline_flags(
        args, baseline_from_reports(bundle),
        lambda doc: check_baseline(bundle, doc),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _cmd_gradcheck(args) -> int:
    import json

    from .adjoint import audit_registry, run_gradcheck
    from .models.registry import MODEL_NAMES

    if args.model == "ops":
        # Model-free: sweep every registered primitive-op case.
        result = run_gradcheck(seed=args.seed)
        failed = [c for c in result["cases"] if not c["passed"]]
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(f"gradcheck: {len(result['cases'])} cases over "
                  f"{len(result['checked_ops'])} op kinds, "
                  f"{len(failed)} failed")
            for finding in result["findings"]:
                print(f"  {finding}")
            if not result["findings"]:
                print("gradcheck OK")
        return 1 if result["findings"] else 0

    models = MODEL_NAMES if args.model == "all" else (args.model,)
    bundle = audit_registry(
        models, preset=args.preset, grid=args.grid, seed=args.seed
    )
    if args.json:
        print(json.dumps(bundle, indent=2))
    failures = []
    for report in bundle["reports"]:
        failures.extend(report["failures"])
        if args.json:
            continue
        back = report["backward"]
        mem = back["memory"]
        print(f"{report['model']} (preset={report['preset']}, "
              f"grid={report['grid']})")
        print(f"  contracts: {report['contracts']['ran']}/"
              f"{report['contracts']['records']} closures ran over "
              f"{len(report['contracts']['ops'])} op kinds, "
              f"{len(report['contracts']['findings'])} finding(s)")
        print(f"  gradcheck: {report['gradcheck']['cases']} cases, "
              f"{report['gradcheck']['failed']} failed")
        print(f"  flow: {back['params_connected']}/{back['params_total']} "
              f"params connected, {len(back['findings'])} finding(s)")
        print(f"  training memory: peak {_mb(mem['train_peak_bytes'])} at "
              f"{mem['peak_pos']}")
        for section in (report["contracts"], report["gradcheck"], back):
            for finding in section["findings"]:
                print(f"    {finding['path']}:{finding['line']}: "
                      f"{finding['code']} {finding['message']}")
    if failures:
        print(f"error: {len(failures)} blocking finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("gradcheck OK")
    return 0


def _print_perf_report(report: dict, top: int) -> None:
    if report["target"] == "flow":
        print(f"flow ({report['audited_files']} files audited)")
    else:
        dflow = report["dtype_flow"]
        alias = report["aliasing"]
        fus = report["fusion"]
        print(f"{report['model']} (preset={report['preset']}, "
              f"grid={report['grid']}, batch={report['batch']}, "
              f"dtype={report['dtype']})")
        print(f"  dtype flow: {dflow['widened_ops']} widened ops "
              f"({_mb(dflow['widened_bytes'])}), "
              f"{dflow['cast_churn']} cast churn")
        print(f"  aliasing: {alias['redundant_copies']}/"
              f"{alias['redundant_copies'] + alias['required_copies']} "
              f"copies redundant ({_mb(alias['redundant_copy_bytes'])}), "
              f"{alias['broadcast_blowups']} broadcast blowups")
        print(f"  fusion: {fus['unfused_chains']} unfused chains "
              f"({_mb(fus['transient_bytes'])} transient, "
              f"save ~{_mb(fus['predicted_saving_bytes'])}), "
              f"{_mb(fus['workspace_bytes'])} contraction workspace")
    validation = report["validation"]
    if validation["validated"]:
        for result in validation["results"]:
            status = "ok" if result["ok"] else "FAILED"
            claim = (
                f"{_mb(result['predicted_bytes'])} predicted vs "
                f"{_mb(result['measured_bytes'])} measured "
                f"(err {result['rel_err']:.1%})"
                if result["predicted_bytes"]
                else f"speedup {result['speedup']:.1f}x"
            )
            print(f"  validated {result['kind']}: {claim} [{status}]")
    counts = ", ".join(f"{c}x{n}" for c, n in report["by_code"].items())
    print(f"  findings: {counts or 'none'}")
    for finding in report["findings"][:top]:
        print(f"    {finding['path']}:{finding['line']}: "
              f"{finding['code']} {finding['message']}")
    shown = min(top, len(report["findings"]))
    if len(report["findings"]) > shown:
        print(f"    ... {len(report['findings']) - shown} more "
              "(--json for all)")
    for failure in report["failures"]:
        print(f"  FAIL: {failure}")


def _cmd_perfcheck(args) -> int:
    import json

    from .perf import (
        SCHEMA as PERF_SCHEMA,
        baseline_from_bundle,
        check_perf_baseline,
        perfcheck_all,
        perfcheck_flow,
        perfcheck_model,
    )

    validate = not args.no_validate
    if args.target == "all":
        bundle = perfcheck_all(
            preset=args.preset, grid=args.grid, validate=validate
        )
    elif args.target == "flow":
        flow = perfcheck_flow(validate=validate)
        bundle = {
            "schema": PERF_SCHEMA,
            "reports": [],
            "flow": flow,
            "distinct_codes": sorted(flow["by_code"]),
            "failures": list(flow["failures"]),
        }
    else:
        report = perfcheck_model(
            args.target, preset=args.preset, grid=args.grid, validate=validate
        )
        bundle = {
            "schema": PERF_SCHEMA,
            "reports": [report],
            "flow": None,
            "distinct_codes": sorted(report["by_code"]),
            "failures": list(report["failures"]),
        }

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        for report in bundle["reports"]:
            _print_perf_report(report, args.top)
            print()
        if bundle["flow"] is not None:
            _print_perf_report(bundle["flow"], args.top)

    status = EXIT_OK
    if bundle["failures"]:
        print(f"error: {len(bundle['failures'])} blocking finding(s)",
              file=sys.stderr)
        status = EXIT_BLOCKING

    from .baselines import apply_baseline_flags

    drift = apply_baseline_flags(
        args, baseline_from_bundle(bundle),
        lambda doc: check_perf_baseline(bundle, doc),
        carry=("fixes",),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _cmd_concheck(args) -> int:
    import json

    from .concheck import (
        baseline_from_concheck,
        check_concheck_baseline,
        concheck,
    )

    bundle = concheck(root=args.root)

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        print(f"{bundle['package']}: {bundle['modules']} modules, "
              f"{bundle['functions']} functions indexed")
        print(f"worker roots ({len(bundle['worker_roots'])}):")
        for ref in bundle["worker_roots"]:
            print(f"  {ref}")
        summary = bundle["effect_summary"]
        print(f"reachable: {bundle['reachable_functions']} functions "
              f"across {len(bundle['worker_modules'])} modules "
              f"(pure {summary['pure']}, deterministic "
              f"{summary['deterministic']}, io {summary['io']}, "
              f"global-mutating {summary['global-mutating']})")
        if bundle["by_code"]:
            print("findings: " + ", ".join(
                f"{code} x{count}"
                for code, count in sorted(bundle["by_code"].items())
            ))
        for finding in bundle["findings"][: args.top]:
            print(f"  {finding['path']}:{finding['line']}: "
                  f"{finding['code']} {finding['message']}")
        if len(bundle["findings"]) > args.top:
            print(f"  ... {len(bundle['findings']) - args.top} more "
                  "(--json for all)")

    status = EXIT_OK
    if bundle["failures"]:
        print(f"error: {len(bundle['failures'])} blocking finding(s)",
              file=sys.stderr)
        status = EXIT_BLOCKING
    elif not args.json:
        print("concurrency-safety certified (0 blocking REPRO6xx findings)")

    from .baselines import apply_baseline_flags

    drift = apply_baseline_flags(
        args, baseline_from_concheck(bundle),
        lambda doc: check_concheck_baseline(bundle, doc),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _print_plan_section(label: str, section: dict) -> None:
    s = section["summary"]
    print(f"  {label}: {s['planned_nodes']} nodes planned "
          f"(dead {s['dead_eliminated']}, cse {s['cse_shared']}), "
          f"{s['fusion_groups']} fusion groups ({s['fused_nodes']} nodes), "
          f"{s['copy_elisions']} copies elided")
    extra = (
        f", grads {s['grad_slots']} slots, tape {s['tape_entries']}"
        if s["tape_entries"]
        else ""
    )
    print(f"    arena: {_mb(s['arena_bytes'])} in {s['arena_slots']} slots "
          f"<= {s['bound_kind']} bound {_mb(s['bound_bytes'])}{extra}")
    print(f"    plan {s['fingerprint'][:23]}… over graph "
          f"{s['graph_fingerprint'][:23]}…")
    for finding in section["findings"]:
        print(f"    {finding['path']}:{finding['line']}: "
              f"{finding['code']} {finding['message']}")


def _cmd_plancheck(args) -> int:
    import json

    from .models.registry import MODEL_NAMES
    from .schedule import (
        baseline_from_plan_bundle,
        check_schedule_baseline,
        plan_registry,
    )

    models = MODEL_NAMES if args.model == "all" else (args.model,)
    grids = tuple(args.grids or [64])
    bundle = plan_registry(
        models, preset=args.preset, grids=grids, backward=args.backward
    )

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        for report in bundle["reports"]:
            print(f"{report['model']} (preset={report['preset']}, "
                  f"grid={report['grid']}, batch={report['batch']})")
            _print_plan_section("forward", report["forward"])
            if "training" in report:
                _print_plan_section("training", report["training"])
            print()

    status = EXIT_OK
    if bundle["failures"]:
        if args.json:
            for failure in bundle["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
        print(f"error: {len(bundle['failures'])} blocking finding(s)",
              file=sys.stderr)
        status = EXIT_BLOCKING
    elif not args.json:
        print("all plans verified (0 REPRO401-408 findings)")

    from .baselines import apply_baseline_flags

    drift = apply_baseline_flags(
        args, baseline_from_plan_bundle(bundle),
        lambda doc: check_schedule_baseline(bundle, doc),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _print_scaling_model(name: str, report: dict) -> None:
    print(f"{name} (preset={report['preset']}, batch={report['batch']}, "
          f"ladder {report['ladder'][0]}..{report['ladder'][-1]})")
    for regime in report["regimes"]:
        total = regime["total"]
        print(f"  regime [{regime['lo']}, {regime['hi']}] "
              f"({len(regime['grids'])} grids, held-out "
              f"{regime['held_out']}):")
        print(f"    total: flops G^{total['flops']['degree']} "
              f"(leading {total['flops']['leading']}), "
              f"bytes G^{total['bytes']['degree']}")
        degrees = {
            stage: max(e["flops"]["degree"], e["bytes"]["degree"])
            for stage, e in regime["stages"].items()
        }
        if degrees:
            worst = max(degrees.values())
            budget = max(e["budget"] for e in regime["stages"].values())
            print(f"    stages: {len(degrees)} certified, "
                  f"max G^{worst} <= budget G^{budget}")
        for label in ("fwd_peak", "train_peak"):
            entry = regime["memory"].get(label)
            if entry is None:
                continue
            held = entry["held_out"]
            print(f"    {label}: G^{entry['degree']} from grid "
                  f"{entry['valid_from']} (held-out grid {held['grid']} "
                  f"err {held['rel_err']:.1%})")
    measured = report.get("measured")
    if measured:
        print(f"  measured: training-step peak at grid {measured['grid']} "
              f"within {measured['rel_err']:.1%} of the envelope "
              f"(bound {measured['bound']:.0%})")


def _cmd_scalecheck(args) -> int:
    import json

    from .baselines import apply_baseline_flags
    from .scaling import (
        DEFAULT_LADDER,
        baseline_from_scaling,
        check_scaling_baseline,
        scalecheck,
    )

    ladder = tuple(args.ladder) if args.ladder else DEFAULT_LADDER
    bundle = scalecheck(
        args.target, preset=args.preset, batch=args.batch, ladder=ladder,
        cache_dir=args.cache, measure=not args.no_measure,
    )

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        for name in bundle["models"]:
            _print_scaling_model(name, bundle["models"][name])
            print()
        if bundle["flow"] is not None:
            summary = bundle["flow"]["summary"]
            orders = ", ".join(
                f"{m}={summary['max_order'][m]}/{summary['budgets'][m]}"
                for m in sorted(summary["budgets"])
            )
            print(f"flow: {summary['functions']} functions "
                  f"({summary['hot_functions']} hot), "
                  f"max nest order vs budget: {orders}")
            for f in bundle["flow"]["findings"]:
                print(f"  {f['path']}:{f['line']}: {f['code']} "
                      f"{f['message']}")
        if bundle["by_code"]:
            print("findings: " + ", ".join(
                f"{code} x{count}"
                for code, count in bundle["by_code"].items()
            ))
        print(f"sealed: {bundle['fingerprint'][:23]}…")

    status = EXIT_OK
    if bundle["failures"]:
        print(f"error: {len(bundle['failures'])} blocking finding(s)",
              file=sys.stderr)
        status = EXIT_BLOCKING
    elif not args.json:
        print("scaling certified (0 blocking REPRO7xx findings)")

    drift = apply_baseline_flags(
        args, baseline_from_scaling(bundle),
        lambda doc: check_scaling_baseline(bundle, doc),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _print_numcheck_model(name: str, report: dict) -> None:
    print(f"{name} (preset={report['preset']}, "
          f"budget={report['budget']:.1e})")
    for grid in sorted(report["grids"], key=int):
        doc = report["grids"][grid]
        pin = doc["dtype_pin"]
        print(f"  grid {grid}: forward rel <= {doc['forward_rel']:.3e}, "
              f"backward rel <= {doc['backward_rel']:.3e}")
        print(f"    fusion: {doc['fusion_certified']}/"
              f"{doc['fusion_groups']} groups error-neutral; "
              f"pin {pin['dtype']} worst node contributes "
              f"{pin['worst_contribution_rel']} "
              f"({'within' if pin['within_budget'] else 'OVER'} budget)")
        if doc["unsupported"]:
            print(f"    unsupported ops: {', '.join(doc['unsupported'])}")
        measured = doc.get("measured")
        if measured:
            print(f"    measured: forward {measured['forward']:.3e}, "
                  f"backward {measured['backward']:.3e} "
                  f"(worst {measured['worst_param']})")


def _cmd_numcheck(args) -> int:
    import json

    from .baselines import apply_baseline_flags
    from .numcheck import (
        CERT_GRIDS,
        DEFAULT_BUDGET,
        baseline_from_numcheck,
        check_numcheck_baseline,
        numcheck,
    )

    grids = tuple(args.grids) if args.grids else CERT_GRIDS
    budget = DEFAULT_BUDGET if args.budget is None else args.budget
    bundle = numcheck(
        args.target, preset=args.preset, grids=grids, batch=args.batch,
        seed=args.seed, budget=budget, measure=not args.no_measure,
        cache_dir=args.cache,
    )

    if args.json:
        print(json.dumps(bundle, indent=2))
    else:
        for name in bundle["models"]:
            _print_numcheck_model(name, bundle["models"][name])
            print()
        if bundle["flow"] is not None:
            print(f"flow: {len(bundle['flow']['audited_files'])} files "
                  f"audited, {len(bundle['flow']['findings'])} finding(s)")
        if bundle["by_code"]:
            print("findings: " + ", ".join(
                f"{code} x{count}"
                for code, count in bundle["by_code"].items()
            ))
        shown = 0
        for finding in bundle["findings"]:
            if shown >= args.top:
                remaining = len(bundle["findings"]) - shown
                print(f"  ... {remaining} more (--json for all)")
                break
            print(f"  {finding['path']}:{finding['line']}: "
                  f"{finding['code']} {finding['message']}")
            shown += 1
        print(f"sealed: {bundle['fingerprint'][:23]}…")

    status = EXIT_OK
    if bundle["failures"]:
        print(f"error: {len(bundle['failures'])} blocking finding(s)",
              file=sys.stderr)
        status = EXIT_BLOCKING
    elif not args.json:
        print("rounding certified (0 blocking REPRO8xx findings)")

    drift = apply_baseline_flags(
        args, baseline_from_numcheck(bundle),
        lambda doc: check_numcheck_baseline(bundle, doc),
    )
    if drift and status == EXIT_OK:
        status = EXIT_DRIFT
    return status


def _update_all_baselines(args) -> int:
    """``repro check --update-baselines``: refresh every benchmark pin.

    Each analysis runs in its CI-pinned configuration (the grids and
    flags the workflow jobs use), every document is serialized first,
    and only then do all seven rename into place — a failure anywhere
    leaves the benchmarks directory untouched.
    """
    from pathlib import Path

    from .baselines import carry_sections, write_baselines
    from .concheck import baseline_from_concheck, concheck
    from .ir import analyze_registry, baseline_from_reports
    from .numcheck import baseline_from_numcheck, numcheck
    from .perf import baseline_from_bundle, perfcheck_all
    from .scaling import baseline_from_scaling, scalecheck
    from .schedule import baseline_from_plan_bundle, plan_registry

    bench = Path(__file__).resolve().parents[2] / "benchmarks"
    validate = not args.no_validate
    docs: dict[str, dict] = {}

    forward = analyze_registry(preset="fast", grids=(64, 256))
    docs[str(bench / "ir_baseline.json")] = baseline_from_reports(forward)
    backward = analyze_registry(
        preset="fast", grids=(64, 256), determinism=False, backward=True
    )
    docs[str(bench / "adjoint_baseline.json")] = baseline_from_reports(backward)
    perf = perfcheck_all(preset="fast", grid=64, validate=validate)
    perf_path = str(bench / "perf_baseline.json")
    docs[perf_path] = carry_sections(
        perf_path, baseline_from_bundle(perf), ("fixes",)
    )
    plans = plan_registry(
        preset="fast", grids=(64, 128, 256, 512), backward=True
    )
    docs[str(bench / "schedule_baseline.json")] = baseline_from_plan_bundle(plans)
    docs[str(bench / "concheck_baseline.json")] = baseline_from_concheck(concheck())
    scaling = scalecheck("all", measure=validate)
    docs[str(bench / "scaling_baseline.json")] = baseline_from_scaling(scaling)
    numbers = numcheck("all", measure=validate)
    docs[str(bench / "numcheck_baseline.json")] = baseline_from_numcheck(numbers)

    write_baselines(docs)
    for path in sorted(docs):
        print(f"baseline written: {path}")
    return EXIT_OK


def _iter_finding_codes(obj):
    """Every diagnostic code in a combined report (recursive walk)."""
    if isinstance(obj, dict):
        if "code" in obj and "message" in obj and isinstance(obj["code"], str):
            yield obj["code"]
        for value in obj.values():
            yield from _iter_finding_codes(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            yield from _iter_finding_codes(value)


def _cmd_check(args) -> int:
    """The unified gate: lint + analyze + gradcheck + perfcheck +
    plancheck + concheck + scalecheck + numcheck."""
    import json
    from pathlib import Path

    from .adjoint import audit_registry
    from .concheck import concheck
    from .ir import analyze_registry
    from .ir.report import serialize_finding
    from .lint.rules import lint_paths
    from .lint.shapes import ShapeError, validate_registry_models
    from .numcheck import numcheck
    from .perf import perfcheck_all
    from .scaling import scalecheck
    from .schedule import plan_registry

    if args.update_baselines:
        return _update_all_baselines(args)

    failures: list[str] = []

    # 1. AST lint + static shape validation of the registry models.
    lint_findings = lint_paths([Path(__file__).resolve().parent])
    failures.extend(str(f) for f in lint_findings)
    shape_error = None
    try:
        validate_registry_models(grids=(args.grid,), preset=args.preset)
    except ShapeError as exc:
        shape_error = str(exc)
        failures.append(f"shape validation: {exc}")

    # 2. Forward-IR analysis, 3. gradient audit, 4. perf analysis.
    analyze_bundle = analyze_registry(preset=args.preset, grids=(args.grid,))
    failures.extend(
        f for r in analyze_bundle["reports"] for f in r["failures"]
    )
    gradcheck_bundle = audit_registry(preset=args.preset, grid=args.grid)
    failures.extend(
        f for r in gradcheck_bundle["reports"] for f in r["failures"]
    )
    perf_bundle = perfcheck_all(
        preset=args.preset, grid=args.grid, validate=not args.no_validate
    )
    failures.extend(perf_bundle["failures"])

    # 5. Execution-plan compilation + independent verification.
    plan_bundle = plan_registry(
        preset=args.preset, grids=(args.grid,), backward=True
    )
    failures.extend(plan_bundle["failures"])

    # 6. Concurrency-safety certification of the worker-reachable graph.
    concheck_bundle = concheck()
    failures.extend(concheck_bundle["failures"])

    # 7. Certified scaling laws + flow-code complexity lint.
    scaling_bundle = scalecheck("all", preset=args.preset,
                                measure=not args.no_validate)
    failures.extend(scaling_bundle["failures"])

    # 8. Rounding-error certification + float64 shadow validation.
    numcheck_bundle = numcheck("all", preset=args.preset,
                               measure=not args.no_validate)
    failures.extend(numcheck_bundle["failures"])

    combined = {
        "schema": "repro.check/v1",
        "preset": args.preset,
        "grid": args.grid,
        "lint": {
            "findings": [serialize_finding(f) for f in lint_findings],
            "shape_error": shape_error,
        },
        "analyze": analyze_bundle,
        "gradcheck": gradcheck_bundle,
        "perfcheck": perf_bundle,
        "plancheck": plan_bundle,
        "concheck": concheck_bundle,
        "scalecheck": scaling_bundle,
        "numcheck": numcheck_bundle,
        "failures": failures,
    }
    advisories: list[str] = []
    if args.fail_on == "advisory":
        from .diagnostics import all_codes

        registered = all_codes()
        advisories = sorted(
            code
            for code in set(_iter_finding_codes(combined))
            if code in registered and not registered[code].blocking
        )
    if args.json:
        print(json.dumps(combined, indent=2))
    else:
        sections = (
            ("lint", len(lint_findings) + (1 if shape_error else 0)),
            ("analyze", sum(len(r["failures"])
                            for r in analyze_bundle["reports"])),
            ("gradcheck", sum(len(r["failures"])
                              for r in gradcheck_bundle["reports"])),
            ("perfcheck", len(perf_bundle["failures"])),
            ("plancheck", len(plan_bundle["failures"])),
            ("concheck", len(concheck_bundle["failures"])),
            ("scalecheck", len(scaling_bundle["failures"])),
            ("numcheck", len(numcheck_bundle["failures"])),
        )
        for name, count in sections:
            print(f"{name}: {'OK' if not count else f'{count} failure(s)'}")
        for failure in failures:
            print(f"  FAIL: {failure}")
    if failures:
        print(f"error: {len(failures)} blocking finding(s) across the gate",
              file=sys.stderr)
        return EXIT_BLOCKING
    if advisories:
        print(
            f"error: --fail-on advisory: {len(advisories)} advisory "
            f"code(s) present ({', '.join(advisories)})",
            file=sys.stderr,
        )
        return EXIT_BLOCKING
    if not args.json:
        print("check OK")
    return EXIT_OK


_COMMANDS = {
    "stats": _cmd_stats,
    "place": _cmd_place,
    "route": _cmd_route,
    "score": _cmd_score,
    "train": _cmd_train,
    "table2": _cmd_table2,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "gradcheck": _cmd_gradcheck,
    "perfcheck": _cmd_perfcheck,
    "plancheck": _cmd_plancheck,
    "concheck": _cmd_concheck,
    "scalecheck": _cmd_scalecheck,
    "numcheck": _cmd_numcheck,
    "check": _cmd_check,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:  # the contract: unexpected crashes exit 4, not 1
        import traceback

        traceback.print_exc()
        print("error: internal error (see traceback above)", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
