"""Deterministic fault injection for exercising recovery paths.

The resilience layer's guarantees — rollback on divergence, estimator
fallback, partial contest scores — are only trustworthy if the test
suite can *provoke* each failure on demand.  :class:`inject_fault`
patches one call site (a module-level function or a class method) so
that its Nth invocation raises or corrupts its output, then restores
the original on exit.  Faults are seeded and the injector keeps a call
log, so every failure scenario is replayable bit-for-bit.

    with inject_fault("repro.placement.estimators:RudyEstimator.__call__",
                      nth=1, mode="raise"):
        place_design(design)   # estimator blows up in round 1

    with inject_fault("repro.nn:clip_grad_norm", nth=3, mode="corrupt",
                      corrupt=poison) as fault:
        trainer.train(model, dataset)
    assert fault.fired

:class:`inject_fault` only reaches *in-process* failures.  The
process-level chaos layer (:class:`ChaosConfig`, :class:`JournalChaos`)
sabotages the :mod:`repro.orchestrate` worker pool itself — SIGKILL a
worker mid-job, hang past the deadline, freeze its heartbeats, corrupt
a result payload, or tear a journal append in half — with every
decision derived from a seed and the (job, attempt) identity, so a
chaos run is exactly replayable.
"""

from __future__ import annotations

import hashlib
import importlib
import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultInjected",
    "CallRecord",
    "inject_fault",
    "nan_poison",
    "CHAOS_MODES",
    "ChaosConfig",
    "ChaosCrash",
    "JournalChaos",
    "corrupt_payload",
]


class FaultInjected(RuntimeError):
    """The exception raised by an injector in ``raise`` mode."""


@dataclass
class CallRecord:
    """One observed invocation of the patched call site."""

    index: int  # 1-based invocation count
    fired: bool  # did the fault trigger on this call?


def nan_poison(result, rng: np.random.Generator):
    """Default corruption: overwrite a seeded subset of entries with NaN.

    Handles plain ``ndarray`` results and anything exposing a mutable
    ``.data`` ndarray (e.g. :class:`repro.nn.Tensor`).  Non-array
    results are replaced by ``float('nan')``.
    """
    target = None
    if isinstance(result, np.ndarray):
        target = result
    elif hasattr(result, "data") and isinstance(result.data, np.ndarray):
        target = result.data
    if target is None or target.size == 0:
        return float("nan")
    flat = target.reshape(-1)
    count = max(1, flat.size // 8)
    idx = rng.choice(flat.size, size=count, replace=False)
    flat[idx] = np.nan
    return result


@dataclass
class inject_fault:
    """Context manager that sabotages one call site deterministically.

    Parameters
    ----------
    target:
        Dotted site spec ``"package.module:attr"`` or
        ``"package.module:Class.method"``.  Alternatively pass ``owner``
        (any object) together with ``attr``.
    nth:
        1-based invocation index on which the fault triggers.
    mode:
        ``"raise"`` — raise ``exception`` instead of calling through;
        ``"corrupt"`` — call through, then run ``corrupt(result, rng)``
        (default :func:`nan_poison`) and return its value.
    repeat:
        Keep triggering on every call from the Nth on (default: only
        the Nth call is faulty).
    seed:
        Seeds the corruption RNG, making corrupt runs replayable.
    """

    target: str | None = None
    owner: object | None = None
    attr: str | None = None
    nth: int = 1
    mode: str = "raise"
    exception: type[BaseException] = FaultInjected
    message: str = ""
    corrupt: object | None = None
    seed: int = 0
    repeat: bool = False
    calls: int = field(default=0, init=False)
    log: list[CallRecord] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "corrupt"):
            raise ValueError(f"unknown fault mode {self.mode!r}; use 'raise' or 'corrupt'")
        if self.nth < 1:
            raise ValueError(f"nth is a 1-based call index, got {self.nth}")
        if self.target is not None:
            module_path, _, attr_path = self.target.partition(":")
            if not attr_path:
                raise ValueError(
                    f"target must look like 'package.module:attr', got {self.target!r}"
                )
            owner = importlib.import_module(module_path)
            parts = attr_path.split(".")
            for part in parts[:-1]:
                owner = getattr(owner, part)
            self.owner, self.attr = owner, parts[-1]
        if self.owner is None or not self.attr:
            raise ValueError("pass either target='mod:attr' or owner= and attr=")

    @property
    def fired(self) -> bool:
        """True once the fault has triggered at least once."""
        return any(record.fired for record in self.log)

    def _should_fire(self, index: int) -> bool:
        return index == self.nth or (self.repeat and index > self.nth)

    def __enter__(self) -> "inject_fault":
        self._original = getattr(self.owner, self.attr)
        self._rng = np.random.default_rng(self.seed)
        original = self._original
        injector = self

        def wrapper(*args, **kwargs):
            injector.calls += 1
            fire = injector._should_fire(injector.calls)
            injector.log.append(CallRecord(index=injector.calls, fired=fire))
            if fire and injector.mode == "raise":
                raise injector.exception(
                    injector.message
                    or f"injected fault at {injector.attr} call #{injector.calls}"
                )
            result = original(*args, **kwargs)
            if fire:
                corrupt = injector.corrupt or nan_poison
                result = corrupt(result, injector._rng)
            return result

        setattr(self.owner, self.attr, wrapper)
        return self

    def __exit__(self, *exc_info) -> None:
        setattr(self.owner, self.attr, self._original)


# -- process-level chaos (repro.orchestrate worker pool) ----------------------

# Worker-side sabotage modes, in decision order:
#   kill     SIGKILL the worker process mid-job (worker crash, REPRO501)
#   hang     sleep past the per-job deadline, heartbeats keep flowing
#            (deadline watchdog, REPRO502)
#   freeze   sleep with heartbeats suppressed — the observable shape of a
#            SIGSTOP'd or wedged process (heartbeat watchdog, REPRO502)
#   corrupt  damage the result payload before sending it back
#            (payload validation, REPRO506)
CHAOS_MODES = ("kill", "hang", "freeze", "corrupt")


class ChaosCrash(RuntimeError):
    """Raised by :class:`JournalChaos` in soft-crash mode."""


def _stable_hash(text: str) -> int:
    """A hash stable across processes (``hash()`` is salted per run)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def corrupt_payload(payload, rng: np.random.Generator):
    """Deterministically damage a JSON-style result payload.

    Dicts lose one seeded key, lists lose their tail element, scalars
    become ``None`` — all damage a result validator must catch.
    """
    if isinstance(payload, dict) and payload:
        broken = dict(payload)
        victim = sorted(broken)[int(rng.integers(len(broken)))]
        del broken[victim]
        return broken
    if isinstance(payload, list) and payload:
        return payload[:-1]
    return None


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded process-level fault plan for the orchestration worker pool.

    Each field in ``kill``/``hang``/``freeze``/``corrupt`` is the
    probability of that sabotage firing on an eligible job attempt; the
    draw is made from an RNG keyed on ``(seed, job key, attempt)``, so
    the same plan injects the same faults in every replay regardless of
    worker scheduling.  ``max_attempt`` bounds sabotage to early
    attempts (default: only the first), guaranteeing retries can
    succeed; ``jobs`` restricts sabotage to specific job keys.
    """

    seed: int = 0
    kill: float = 0.0
    hang: float = 0.0
    freeze: float = 0.0
    corrupt: float = 0.0
    hang_seconds: float = 30.0
    max_attempt: int = 1
    jobs: tuple[str, ...] | None = None

    def _rng(self, key: str, attempt: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, _stable_hash(key), attempt])
        )

    def decide(self, key: str, attempt: int) -> str | None:
        """Which sabotage (if any) fires on this job attempt."""
        if attempt > self.max_attempt:
            return None
        if self.jobs is not None and key not in self.jobs:
            return None
        draw = float(self._rng(key, attempt).random())
        edge = 0.0
        for mode in CHAOS_MODES:
            edge += float(getattr(self, mode))
            if draw < edge:
                return mode
        return None

    def corruption_rng(self, key: str, attempt: int) -> np.random.Generator:
        """The seeded RNG ``corrupt_payload`` uses for this attempt."""
        return self._rng(f"corrupt/{key}", attempt)


@dataclass(frozen=True)
class JournalChaos:
    """Crash mid-journal-append: tear line ``truncate_at`` in half.

    With ``hard_exit`` the process dies via ``os._exit`` (no cleanup, no
    atexit — the closest in-process stand-in for SIGKILL); otherwise
    :class:`ChaosCrash` is raised so in-process tests can observe the
    crash and then exercise resume.
    """

    truncate_at: int = 1  # 1-based append index that gets torn
    hard_exit: bool = False

    def fires_on(self, append_index: int) -> bool:
        return append_index == self.truncate_at

    def crash(self) -> None:
        if self.hard_exit:
            os._exit(73)
        raise ChaosCrash(
            f"injected crash mid-journal-append #{self.truncate_at}"
        )
