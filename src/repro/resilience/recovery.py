"""Recovery policies: divergence detection and graceful degradation.

Two consumers:

* :class:`repro.train.Trainer` uses :class:`DivergenceGuard` to watch
  the epoch loss — a NaN/Inf batch or an exploding epoch loss rolls the
  run back to the last good snapshot with the learning rate backed off,
  bounded by a retry budget before :class:`TrainingDiverged` is raised.
* :class:`repro.placement.MacroPlacer` validates estimator output with
  :func:`validate_level_map` and, on any failure, falls back to the
  analytical RUDY estimate, recording an :class:`Incident` so the
  degradation is visible in the :class:`PlacementOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Incident",
    "TrainingDiverged",
    "EstimatorOutputError",
    "DivergenceGuard",
    "validate_level_map",
    "LEVEL_MIN",
    "LEVEL_MAX",
]

# The Fig. 1 congestion scale: integer levels 0 (free) .. 7 (saturated).
LEVEL_MIN = 0.0
LEVEL_MAX = 7.0


@dataclass
class Incident:
    """One recorded fault + the recovery action taken."""

    stage: str  # where it happened, e.g. "estimate/round1"
    error: str  # repr of the failure
    action: str  # what the flow did about it, e.g. "fallback:rudy"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.stage}] {self.error} -> {self.action}"


class TrainingDiverged(RuntimeError):
    """Training kept diverging after exhausting the retry budget."""

    def __init__(self, epoch: int, loss: float, retries: int, lr: float) -> None:
        self.epoch = epoch
        self.loss = loss
        self.retries = retries
        self.lr = lr
        super().__init__(
            f"training diverged at epoch {epoch} (loss={loss!r}) and did not "
            f"recover after {retries} rollback(s); last lr={lr:g}"
        )


class EstimatorOutputError(ValueError):
    """A congestion estimator returned an unusable level map."""


def validate_level_map(level_map: np.ndarray) -> np.ndarray:
    """Check an estimator's output is a finite 2-D map in the level range.

    Returns the validated array; raises :class:`EstimatorOutputError`
    otherwise.  Inflation trusts these properties (Eq. 11 indexes grids
    with level > 3), so garbage here would silently skew the whole
    stage-2 placement rather than crash.
    """
    level_map = np.asarray(level_map)
    if level_map.ndim != 2 or level_map.size == 0:
        raise EstimatorOutputError(
            f"level map must be a non-empty 2-D grid, got shape {level_map.shape}"
        )
    if not np.issubdtype(level_map.dtype, np.number):
        raise EstimatorOutputError(f"level map has non-numeric dtype {level_map.dtype}")
    if not np.all(np.isfinite(level_map)):
        bad = int(np.count_nonzero(~np.isfinite(level_map)))
        raise EstimatorOutputError(f"level map contains {bad} non-finite entries")
    low, high = float(level_map.min()), float(level_map.max())
    if low < LEVEL_MIN or high > LEVEL_MAX:
        raise EstimatorOutputError(
            f"level map range [{low:g}, {high:g}] outside "
            f"[{LEVEL_MIN:g}, {LEVEL_MAX:g}]"
        )
    return level_map


@dataclass
class DivergenceGuard:
    """Epoch-loss watchdog with a bounded rollback budget.

    ``factor`` flags an epoch whose mean loss exceeds ``factor`` times
    the best loss seen so far (NaN/Inf always counts as diverged);
    ``max_retries`` bounds how many rollbacks the guard will grant
    before the run must raise :class:`TrainingDiverged`.  ``backoff``
    is the learning-rate multiplier applied per rollback.
    """

    factor: float = 10.0
    backoff: float = 0.5
    max_retries: int = 3
    retries: int = field(default=0, init=False)
    best_loss: float = field(default=float("inf"), init=False)
    events: list[dict] = field(default_factory=list, init=False)

    def is_divergent(self, loss: float) -> bool:
        """Is this epoch loss unacceptable given the history so far?"""
        if not np.isfinite(loss):
            return True
        if self.factor and np.isfinite(self.best_loss):
            return loss > self.factor * max(self.best_loss, 1e-12)
        return False

    def observe(self, loss: float) -> None:
        """Record a *good* epoch loss (updates the explosion baseline)."""
        if np.isfinite(loss) and loss < self.best_loss:
            self.best_loss = loss

    def request_rollback(self, epoch: int, loss: float, lr: float) -> float:
        """Grant one rollback and return the backed-off lr scale delta.

        Raises :class:`TrainingDiverged` once the budget is spent.
        """
        if self.retries >= self.max_retries:
            raise TrainingDiverged(epoch=epoch, loss=loss, retries=self.retries, lr=lr)
        self.retries += 1
        self.events.append(
            {"epoch": epoch, "loss": float(loss), "retry": self.retries, "lr": lr}
        )
        return self.backoff
