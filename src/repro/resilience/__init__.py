"""Fault tolerance for long-running training and placement jobs.

The paper's pipeline spends hours in two loops — congestion-model
training (Section V-A) and the Fig. 6 placement flow — and both used to
die, unrecoverably, on the first NaN loss, corrupted checkpoint, or
estimator crash.  This package makes those runs survivable:

``repro.resilience.checkpoint``
    Versioned, checksummed, *atomic* checkpoint bundles (model +
    optimizer + RNG + loss curve + config fingerprint) with rolling
    last/best retention — the substrate for ``repro train --resume``.
``repro.resilience.recovery``
    Divergence guard (rollback + lr backoff + bounded retries) for the
    training loop, estimator-output validation and the incident log the
    placer uses for graceful degradation.
``repro.resilience.faults``
    Deterministic fault injection so the test suite can provoke every
    failure above and prove the recovery paths actually work — both
    in-process (``inject_fault``) and at the process level
    (``ChaosConfig``/``JournalChaos``, which sabotage the
    :mod:`repro.orchestrate` worker pool and its journal).
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatch,
    fingerprint_of,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    CHAOS_MODES,
    CallRecord,
    ChaosConfig,
    ChaosCrash,
    FaultInjected,
    JournalChaos,
    corrupt_payload,
    inject_fault,
    nan_poison,
)
from .recovery import (
    LEVEL_MAX,
    LEVEL_MIN,
    DivergenceGuard,
    EstimatorOutputError,
    Incident,
    TrainingDiverged,
    validate_level_map,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointMismatch",
    "CheckpointManager",
    "fingerprint_of",
    "save_checkpoint",
    "load_checkpoint",
    "FaultInjected",
    "CallRecord",
    "inject_fault",
    "nan_poison",
    "CHAOS_MODES",
    "ChaosConfig",
    "ChaosCrash",
    "JournalChaos",
    "corrupt_payload",
    "Incident",
    "TrainingDiverged",
    "EstimatorOutputError",
    "DivergenceGuard",
    "validate_level_map",
    "LEVEL_MIN",
    "LEVEL_MAX",
]
