"""Atomic, checksummed, resumable checkpoint bundles.

A :class:`Checkpoint` captures everything a training run needs to
continue bit-for-bit after a crash: model parameters and buffers,
optimizer state (Adam moments + step via ``Optimizer.state_dict()``),
the ``np.random.Generator`` bit-generator state that drives batch
shuffling, the epoch counter and loss curve, and a fingerprint of the
training configuration so a resume with different hyperparameters is
refused instead of silently producing a chimera run.

Bundles are single ``.npz`` files written *atomically* — serialized to
a temp file in the same directory, fsync'd, then ``os.replace``d over
the destination — so a kill mid-write can never leave a truncated
checkpoint where a good one used to be.  Every bundle embeds a SHA-256
checksum over its arrays and metadata; :func:`load_checkpoint` verifies
it and raises :class:`CheckpointCorrupt` on mismatch.

:class:`CheckpointManager` adds rolling ``last``/``best`` retention on
top and is what :class:`repro.train.Trainer` drives.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointMismatch",
    "Checkpoint",
    "fingerprint_of",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
]

CHECKPOINT_VERSION = 1

_MODEL_PREFIX = "model."
_OPTIM_PREFIX = "optim."
_META_KEY = "__meta__"


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorrupt(CheckpointError):
    """The bundle's checksum (or structure) does not verify."""


class CheckpointMismatch(CheckpointError):
    """The bundle was written under an incompatible configuration."""


def fingerprint_of(config: dict) -> dict:
    """A JSON-safe fingerprint of the knobs that shape a training run.

    Volatile knobs that may legitimately differ between the original
    run and a resume (epoch budget, logging, the checkpoint wiring
    itself) are dropped; everything else must match exactly.
    """
    volatile = {
        "epochs",
        "log_every",
        "sanitize",
        "checkpoint_dir",
        "checkpoint_every",
        "resume",
    }
    out = {}
    for key, value in config.items():
        if key in volatile:
            continue
        if isinstance(value, (np.floating, np.integer)):
            value = value.item()
        out[key] = value
    return out


@dataclass
class Checkpoint:
    """One resumable snapshot of a training run."""

    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict
    epoch: int  # completed epochs
    losses: list[float]
    fingerprint: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)  # small JSON-safe scalars

    def copy(self) -> "Checkpoint":
        """Deep-copy the array payloads (for in-memory rollback points)."""
        return Checkpoint(
            model_state={k: v.copy() for k, v in self.model_state.items()},
            optimizer_state=_copy_state(self.optimizer_state),
            rng_state=json.loads(json.dumps(self.rng_state)),
            epoch=self.epoch,
            losses=list(self.losses),
            fingerprint=dict(self.fingerprint),
            extra=dict(self.extra),
        )


def _copy_state(state: dict) -> dict:
    out = {}
    for key, value in state.items():
        if isinstance(value, list):
            out[key] = [np.array(v, copy=True) for v in value]
        elif isinstance(value, np.ndarray):
            out[key] = value.copy()
        else:
            out[key] = value
    return out


def _split_optimizer_state(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Separate a state dict into npz-able arrays and JSON-able scalars."""
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}
    for key, value in state.items():
        if isinstance(value, list) and all(isinstance(v, np.ndarray) for v in value):
            for i, arr in enumerate(value):
                arrays[f"{_OPTIM_PREFIX}{key}.{i:04d}"] = arr
            scalars[f"__len__{key}"] = len(value)
        elif isinstance(value, np.ndarray):
            arrays[f"{_OPTIM_PREFIX}{key}"] = value
        else:
            if isinstance(value, (np.floating, np.integer)):
                value = value.item()
            scalars[key] = value
    return arrays, scalars


def _join_optimizer_state(arrays: dict[str, np.ndarray], scalars: dict) -> dict:
    state: dict = {}
    lengths = {
        key[len("__len__"):]: value
        for key, value in scalars.items()
        if key.startswith("__len__")
    }
    for key, length in lengths.items():
        state[key] = [arrays[f"{_OPTIM_PREFIX}{key}.{i:04d}"] for i in range(length)]
    for key, value in arrays.items():
        stem = key[len(_OPTIM_PREFIX):]
        if "." not in stem:
            state[stem] = value
    for key, value in scalars.items():
        if not key.startswith("__len__"):
            state[key] = value
    return state


def _checksum(arrays: dict[str, np.ndarray], meta_core: dict) -> str:
    digest = hashlib.sha256()
    digest.update(json.dumps(meta_core, sort_keys=True).encode())
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_checkpoint(checkpoint: Checkpoint, path: str | os.PathLike) -> Path:
    """Atomically write ``checkpoint`` to ``path`` and return the path.

    The bundle lands via temp-file + fsync + rename in the destination
    directory, so concurrent readers only ever observe either the old
    complete bundle or the new complete bundle.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        f"{_MODEL_PREFIX}{name}": arr for name, arr in checkpoint.model_state.items()
    }
    optim_arrays, optim_scalars = _split_optimizer_state(checkpoint.optimizer_state)
    arrays.update(optim_arrays)
    meta_core = {
        "version": CHECKPOINT_VERSION,
        "epoch": checkpoint.epoch,
        "losses": [float(v) for v in checkpoint.losses],
        "rng_state": checkpoint.rng_state,
        "fingerprint": checkpoint.fingerprint,
        "optimizer": optim_scalars,
        "extra": checkpoint.extra,
    }
    meta = dict(meta_core, checksum=_checksum(arrays, meta_core))
    payload = dict(arrays)
    payload[_META_KEY] = np.array(json.dumps(meta))

    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def load_checkpoint(
    path: str | os.PathLike, expected_fingerprint: dict | None = None
) -> Checkpoint:
    """Read, checksum-verify, and (optionally) fingerprint-check a bundle."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointCorrupt(f"{path}: not a checkpoint bundle (no metadata)")
            meta = json.loads(str(archive[_META_KEY]))
            arrays = {
                name: archive[name] for name in archive.files if name != _META_KEY
            }
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointCorrupt(f"{path}: unreadable checkpoint ({exc})") from exc

    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"{path}: checkpoint version {meta.get('version')} != "
            f"supported {CHECKPOINT_VERSION}"
        )
    stored = meta.pop("checksum", None)
    if stored != _checksum(arrays, meta):
        raise CheckpointCorrupt(f"{path}: checksum mismatch — bundle is corrupt")
    if expected_fingerprint is not None and meta["fingerprint"] != expected_fingerprint:
        diff = sorted(
            set(meta["fingerprint"].items()) ^ set(expected_fingerprint.items())
        )
        raise CheckpointMismatch(
            f"{path}: refusing resume under a different configuration "
            f"(differing keys: {sorted({k for k, _ in diff})})"
        )

    model_state = {
        name[len(_MODEL_PREFIX):]: arr
        for name, arr in arrays.items()
        if name.startswith(_MODEL_PREFIX)
    }
    optim_arrays = {
        name: arr for name, arr in arrays.items() if name.startswith(_OPTIM_PREFIX)
    }
    return Checkpoint(
        model_state=model_state,
        optimizer_state=_join_optimizer_state(optim_arrays, meta["optimizer"]),
        rng_state=meta["rng_state"],
        epoch=int(meta["epoch"]),
        losses=[float(v) for v in meta["losses"]],
        fingerprint=meta["fingerprint"],
        extra=meta.get("extra", {}),
    )


class CheckpointManager:
    """Rolling ``last``/``best`` checkpoint retention in one directory.

    On construction the manager scans its directory for crash debris:
    leftover ``*.tmp`` files (a kill mid-write, before the atomic
    rename) and ``last``/``best`` bundles that no longer verify (torn
    by a kill mid-rename or bit-rot).  Debris is moved into a
    ``quarantine/`` subdirectory — created only when needed — rather
    than deleted, so a post-mortem can still inspect it; the paths land
    in ``self.quarantined``.  :meth:`load_last` then falls back to the
    newest bundle that still verifies instead of raising
    :class:`CheckpointCorrupt` at resume time (a *fingerprint* mismatch
    still raises — that is a configuration error, not corruption).
    """

    LAST = "last.ckpt.npz"
    BEST = "best.ckpt.npz"
    QUARANTINE = "quarantine"

    def __init__(self, directory: str | os.PathLike, scan: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.quarantined: list[Path] = []
        if scan:
            self._startup_scan()

    @property
    def last_path(self) -> Path:
        return self.directory / self.LAST

    @property
    def best_path(self) -> Path:
        return self.directory / self.BEST

    def _quarantine(self, path: Path) -> Path:
        """Move crash debris aside (never delete evidence)."""
        qdir = self.directory / self.QUARANTINE
        qdir.mkdir(exist_ok=True)
        dest = qdir / path.name
        counter = 0
        while dest.exists():
            counter += 1
            dest = qdir / f"{path.name}.{counter}"
        os.replace(path, dest)
        self.quarantined.append(dest)
        return dest

    def _startup_scan(self) -> None:
        for tmp in sorted(self.directory.glob("*.tmp")):
            self._quarantine(tmp)
        for name in (self.LAST, self.BEST):
            path = self.directory / name
            if not path.exists():
                continue
            try:
                load_checkpoint(path)
            except CheckpointCorrupt:
                self._quarantine(path)

    def save(self, checkpoint: Checkpoint, is_best: bool = False) -> Path:
        """Write ``last`` (and ``best`` when flagged), each atomically."""
        path = save_checkpoint(checkpoint, self.last_path)
        if is_best:
            save_checkpoint(checkpoint, self.best_path)
        return path

    def load_last(self, expected_fingerprint: dict | None = None) -> Checkpoint | None:
        """The newest bundle that verifies, or None if no valid one remains.

        Preference order is ``last`` then ``best`` (``last`` is by
        construction the most recent save).  A bundle that fails its
        checksum is quarantined and the next candidate tried, so a
        crash that corrupted ``last`` degrades the resume by one
        checkpoint instead of aborting it.
        """
        for path in (self.last_path, self.best_path):
            if not path.exists():
                continue
            try:
                return load_checkpoint(path, expected_fingerprint)
            except CheckpointCorrupt:
                self._quarantine(path)
        return None

    def load_best(self, expected_fingerprint: dict | None = None) -> Checkpoint | None:
        if not self.best_path.exists():
            return None
        return load_checkpoint(self.best_path, expected_fingerprint)
