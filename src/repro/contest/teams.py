"""The Table-II contenders as flow configurations.

Table II compares the paper's flow against the MLCAD 2023 winners on a
common machine.  The winner binaries are not redistributable, so each
team is reproduced as its published *strategy* running on this repo's
shared placement substrate (DESIGN.md §2) — the comparison Table II
makes is precisely between congestion-estimation/inflation strategies:

* **UTDA** [11] — DREAMPlaceFPGA-MP: RUDY-driven inflation, single
  inflation pass (the contest's top analytical method).
* **SEU** — contest co-winner: RUDY-driven with a re-prediction pass
  (two inflation rounds) and a slightly hotter gain.
* **MPKU-Improve** [16] — OpenPARF 3.0 style: multi-electrostatics with
  stronger spreading effort and a pin-density-augmented analytical
  estimate; fastest T_P&R in the paper.
* **Ours** — the paper's flow: the trained MFA+transformer model
  replaces RUDY as the congestion estimator (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..models import CongestionModel, ModelEstimator
from ..netlist import Design
from ..placement import (
    CongestionEstimator,
    GPConfig,
    PinDensityAwareEstimator,
    PlacerConfig,
    RudyEstimator,
)

__all__ = ["TeamConfig", "TEAM_NAMES", "contest_teams"]

TEAM_NAMES = ("UTDA", "SEU", "MPKU-Improve", "Ours")


@dataclass
class TeamConfig:
    """One Table-II contender: estimator + flow configuration."""

    name: str
    description: str
    estimator_factory: Callable[[Design], CongestionEstimator]
    placer_config_factory: Callable[[], PlacerConfig]


def _gp(seed: int = 0, max_iters: int = 400, lr: float = 0.45) -> GPConfig:
    return GPConfig(bins=32, max_iters=max_iters, lr=lr, seed=seed)


def contest_teams(
    model: CongestionModel | None = None,
    model_grid: int = 64,
    seed: int = 0,
) -> list[TeamConfig]:
    """Build the four Table-II teams.

    ``model`` is the trained congestion predictor used by "Ours"; when
    omitted, "Ours" falls back to the pin-density-aware analytical
    estimate so the harness still runs (clearly weaker — train a model
    for the real comparison).
    """
    teams = [
        TeamConfig(
            name="UTDA",
            description="RUDY-driven inflation, single pass [11]",
            estimator_factory=lambda design: RudyEstimator(
                grid=design.device.tile_cols, gain=0.85
            ),
            placer_config_factory=lambda: PlacerConfig(
                gp=_gp(seed=seed), inflation_rounds=1
            ),
        ),
        TeamConfig(
            name="SEU",
            description="RUDY-driven inflation, two passes (contest co-winner)",
            estimator_factory=lambda design: RudyEstimator(
                grid=design.device.tile_cols, gain=1.05
            ),
            placer_config_factory=lambda: PlacerConfig(
                gp=_gp(seed=seed), inflation_rounds=2
            ),
        ),
        TeamConfig(
            name="MPKU-Improve",
            description="multi-electrostatics + pin-density-aware estimate [16]",
            estimator_factory=lambda design: PinDensityAwareEstimator(
                grid=design.device.tile_cols
            ),
            placer_config_factory=lambda: PlacerConfig(
                gp=_gp(seed=seed, max_iters=500, lr=0.40),
                inflation_rounds=2,
                stage2_iters=180,
            ),
        ),
    ]

    if model is not None:
        ours_estimator: Callable[[Design], CongestionEstimator] = (
            lambda design: ModelEstimator(
                model=model,
                model_grid=model_grid,
                out_grid=design.device.tile_cols,
            )
        )
    else:
        ours_estimator = lambda design: PinDensityAwareEstimator(
            grid=design.device.tile_cols, gain=0.9, pin_weight=0.35
        )
    teams.append(
        TeamConfig(
            name="Ours",
            description="MFA+transformer model-driven inflation (Section IV)",
            estimator_factory=ours_estimator,
            placer_config_factory=lambda: PlacerConfig(
                gp=_gp(seed=seed), inflation_rounds=2
            ),
        )
    )
    return teams
