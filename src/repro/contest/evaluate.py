"""Table-II evaluation harness: place, route, score, tabulate.

Runs each team's flow on each design, scores the result with the
contest metrics (Eqs. 1–3), and formats the same rows Table II reports
(S_score, S_R, T_P&R, S_IR, S_DR per design plus Average and Ratio
rows, where Ratio normalizes every team's average to "Ours").

A full Table-II sweep is hours of placement + routing; one crashing
(team, design) pair must not discard the rest.  :func:`run_table2`
therefore records per-design failures in an error manifest
(:attr:`Table2Result.errors`) and keeps going — averages, ratios and
the formatted table are computed over the designs that survived, and
the manifest is appended so partial results are never mistaken for
complete ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import MLCAD2023_SPECS, TABLE2_DESIGNS, generate_design
from ..placement import place_design
from ..routing import DetailedRoutingModel, congestion_report, route_design
from .scoring import ContestScore, initial_routing_score
from .teams import TeamConfig

__all__ = ["Table2Result", "evaluate_team_on_design", "run_table2", "format_table2"]

_COLUMNS = ("S_score", "S_R", "T_P&R", "S_IR", "S_DR")


def evaluate_team_on_design(
    team: TeamConfig,
    design_name: str,
    scale: float = 1.0 / 64.0,
) -> ContestScore:
    """Run one team's full flow on one design and score it."""
    spec = MLCAD2023_SPECS[design_name]
    design = generate_design(spec, scale=scale)
    estimator = team.estimator_factory(design)
    outcome = place_design(
        design, estimator=estimator, config=team.placer_config_factory()
    )

    routing = route_design(design)
    report = congestion_report(routing)
    s_ir = initial_routing_score(report)
    detailed = DetailedRoutingModel().evaluate(routing, report)
    return ContestScore(
        design=design_name,
        team=team.name,
        s_ir=s_ir,
        s_dr=detailed.iterations,
        t_macro_minutes=outcome.t_macro_minutes,
        t_pr_hours=detailed.hours,
    )


@dataclass
class Table2Result:
    """All scores of a Table-II run, indexed [team][design].

    ``errors`` is the failure manifest of a resilient run: one entry
    per (team, design) pair whose flow raised, holding the error
    string in place of a score.  ``complete`` is False whenever the
    manifest is non-empty.
    """

    scores: dict[str, dict[str, ContestScore]] = field(default_factory=dict)
    errors: dict[str, dict[str, str]] = field(default_factory=dict)

    def add(self, score: ContestScore) -> None:
        self.scores.setdefault(score.team, {})[score.design] = score

    def add_error(self, team: str, design: str, error: str) -> None:
        self.errors.setdefault(team, {})[design] = error

    @property
    def complete(self) -> bool:
        return not self.errors

    def error_manifest(self) -> list[dict[str, str]]:
        """Flat (team, design, error) rows of every recorded failure."""
        return [
            {"team": team, "design": design, "error": error}
            for team, by_design in sorted(self.errors.items())
            for design, error in sorted(by_design.items())
        ]

    def averages(self) -> dict[str, dict[str, float]]:
        """Per-team average of every Table-II column."""
        result: dict[str, dict[str, float]] = {}
        for team, by_design in self.scores.items():
            rows = [s.row() for s in by_design.values()]
            if not rows:
                continue
            result[team] = {
                col: float(np.mean([r[col] for r in rows])) for col in _COLUMNS
            }
        return result

    def rows(self) -> list[dict[str, object]]:
        """Flat per-(team, design) rows for CSV/Markdown export."""
        flat: list[dict[str, object]] = []
        for team, by_design in self.scores.items():
            for design, score in sorted(by_design.items()):
                row: dict[str, object] = {"team": team, "design": design}
                row.update(score.row())
                flat.append(row)
        return flat

    def to_csv(self) -> str:
        """Export every score as CSV (via :mod:`repro.analysis.reports`)."""
        from ..analysis import rows_to_csv

        return rows_to_csv(self.rows())

    def to_markdown(self) -> str:
        """Export every score as a Markdown table."""
        from ..analysis import rows_to_markdown

        return rows_to_markdown(self.rows())

    def ratios(self, reference: str = "Ours") -> dict[str, dict[str, float]]:
        """Each team's averages normalized to the reference team's."""
        avgs = self.averages()
        if reference not in avgs:
            raise KeyError(f"no scores recorded for reference team {reference!r}")
        ref = avgs[reference]
        return {
            team: {
                col: (vals[col] / ref[col] if ref[col] else float("nan"))
                for col in _COLUMNS
            }
            for team, vals in avgs.items()
        }


def run_table2(
    teams: list[TeamConfig],
    design_names: tuple[str, ...] = TABLE2_DESIGNS,
    scale: float = 1.0 / 64.0,
    verbose: bool = False,
    resilient: bool = True,
) -> Table2Result:
    """Evaluate every team on every design.

    With ``resilient`` (the default) a failing (team, design) pair is
    recorded in the result's error manifest and the sweep continues,
    yielding partial scores; ``resilient=False`` restores fail-fast
    behaviour for debugging.
    """
    result = Table2Result()
    for team in teams:
        for name in design_names:
            try:
                score = evaluate_team_on_design(team, name, scale=scale)
            except Exception as exc:
                if not resilient:
                    raise
                result.add_error(team.name, name, f"{type(exc).__name__}: {exc}")
                if verbose:
                    print(f"{team.name:<14} {name:<12} FAILED: {exc}")
                continue
            result.add(score)
            if verbose:
                print(f"{team.name:<14} {name:<12} {score.row()}")
    return result


def format_table2(result: Table2Result) -> str:
    """Render the Table-II layout: design rows, Average and Ratio rows."""
    teams = list(result.scores)
    designs = sorted(
        {d for by_design in result.scores.values() for d in by_design}
    )
    header = f"{'Design':<12}"
    for team in teams:
        header += f" | {team:^37}"
    sub = f"{'':<12}"
    for _ in teams:
        sub += " | " + " ".join(f"{c:>7}" for c in _COLUMNS)
    lines = [header, sub, "-" * len(sub)]
    for design in designs:
        line = f"{design:<12}"
        for team in teams:
            score = result.scores[team].get(design)
            if score is None:
                line += " | " + " ".join(["     --"] * len(_COLUMNS))
            else:
                row = score.row()
                line += " | " + " ".join(f"{row[c]:>7.2f}" for c in _COLUMNS)
        lines.append(line)
    avgs = result.averages()
    line = f"{'Average':<12}"
    for team in teams:
        if team in avgs:
            line += " | " + " ".join(f"{avgs[team][c]:>7.2f}" for c in _COLUMNS)
        else:
            line += " | " + " ".join(["     --"] * len(_COLUMNS))
    lines.append(line)
    if "Ours" in avgs:
        ratios = result.ratios("Ours")
        line = f"{'Ratio':<12}"
        for team in teams:
            if team in ratios:
                line += " | " + " ".join(
                    f"{ratios[team][c]:>7.2f}" for c in _COLUMNS
                )
            else:
                line += " | " + " ".join(["     --"] * len(_COLUMNS))
        lines.append(line)
    if result.errors:
        lines.append("")
        lines.append(f"partial results — {len(result.error_manifest())} failure(s):")
        for entry in result.error_manifest():
            lines.append(
                f"  {entry['team']:<14} {entry['design']:<12} {entry['error']}"
            )
    return "\n".join(lines)
