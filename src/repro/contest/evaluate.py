"""Table-II evaluation harness: place, route, score, tabulate.

Runs each team's flow on each design, scores the result with the
contest metrics (Eqs. 1–3), and formats the same rows Table II reports
(S_score, S_R, T_P&R, S_IR, S_DR per design plus Average and Ratio
rows, where Ratio normalizes every team's average to "Ours").

A full Table-II sweep is hours of placement + routing; one crashing
(team, design) pair must not discard the rest.  :func:`run_table2`
therefore records per-design failures in an error manifest
(:attr:`Table2Result.errors`) and keeps going — averages, ratios and
the formatted table are computed over the designs that survived, and
the manifest is appended so partial results are never mistaken for
complete ones.

The sweep is embarrassingly parallel, so ``run_table2`` can fan the
(team, design) grid across the :mod:`repro.orchestrate` worker pool:
``run_table2(parallel=N, seed=..., journal_path=...)`` supervises N
worker processes with deadlines, retries and quarantine, journals every
transition for ``resume=True``, and — because each job's RNG stream is
spawned from the root seed by grid position — produces scores bitwise
identical to the serial ``parallel=0`` run.  Teams are rebuilt inside
each worker from a dotted factory reference (``team_source``), since
:class:`TeamConfig` closures do not pickle.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..netlist import MLCAD2023_SPECS, TABLE2_DESIGNS, generate_design
from ..placement import place_design
from ..routing import DetailedRoutingModel, congestion_report, route_design
from .scoring import ContestScore, initial_routing_score
from .teams import TEAM_NAMES, TeamConfig

__all__ = [
    "Table2Result",
    "evaluate_team_on_design",
    "run_table2",
    "format_table2",
    "table2_artifact",
    "write_table2_artifact",
]

#: Default dotted factory workers use to rebuild the Table-II teams.
DEFAULT_TEAM_SOURCE = "repro.contest.teams:contest_teams"

_COLUMNS = ("S_score", "S_R", "T_P&R", "S_IR", "S_DR")


def evaluate_team_on_design(
    team: TeamConfig,
    design_name: str,
    scale: float = 1.0 / 64.0,
) -> ContestScore:
    """Run one team's full flow on one design and score it."""
    spec = MLCAD2023_SPECS[design_name]
    design = generate_design(spec, scale=scale)
    estimator = team.estimator_factory(design)
    outcome = place_design(
        design, estimator=estimator, config=team.placer_config_factory()
    )

    routing = route_design(design)
    report = congestion_report(routing)
    s_ir = initial_routing_score(report)
    detailed = DetailedRoutingModel().evaluate(routing, report)
    return ContestScore(
        design=design_name,
        team=team.name,
        s_ir=s_ir,
        s_dr=detailed.iterations,
        t_macro_minutes=outcome.t_macro_minutes,
        t_pr_hours=detailed.hours,
    )


def _structured_error(error) -> dict:
    """Normalize an error (string or dict) to type/message/traceback."""
    if isinstance(error, dict):
        return {
            "type": str(error.get("type", "Error")),
            "message": str(error.get("message", "")),
            "traceback": list(error.get("traceback", [])),
        }
    text = str(error)
    head, sep, rest = text.partition(": ")
    if sep and head.isidentifier():
        return {"type": head, "message": rest, "traceback": []}
    return {"type": "Error", "message": text, "traceback": []}


@dataclass
class Table2Result:
    """All scores of a Table-II run, indexed [team][design].

    ``errors`` is the failure manifest of a resilient run: one
    structured entry (exception type, message, traceback tail) per
    (team, design) pair whose flow raised, in place of a score.
    ``incidents`` is the orchestration incident log (REPRO5xx events)
    of a parallel run — empty for serial in-process sweeps.
    ``complete`` is False whenever the error manifest is non-empty.
    """

    scores: dict[str, dict[str, ContestScore]] = field(default_factory=dict)
    errors: dict[str, dict[str, dict]] = field(default_factory=dict)
    incidents: list[dict] = field(default_factory=list)

    def add(self, score: ContestScore) -> None:
        self.scores.setdefault(score.team, {})[score.design] = score

    def add_error(self, team: str, design: str, error) -> None:
        """Record a failure; ``error`` may be a string or a structured dict."""
        self.errors.setdefault(team, {})[design] = _structured_error(error)

    @property
    def complete(self) -> bool:
        return not self.errors

    def error_manifest(self) -> list[dict[str, object]]:
        """Flat rows of every recorded failure.

        Each row carries the legacy ``error`` display string plus the
        structured ``type`` and ``traceback`` tail, so artifacts keep
        enough context to debug a failure without re-running it.
        """
        return [
            {
                "team": team,
                "design": design,
                "error": f"{info['type']}: {info['message']}",
                "type": info["type"],
                "traceback": info["traceback"],
            }
            for team, by_design in sorted(self.errors.items())
            for design, info in sorted(by_design.items())
        ]

    def averages(self) -> dict[str, dict[str, float]]:
        """Per-team average of every Table-II column."""
        result: dict[str, dict[str, float]] = {}
        for team, by_design in self.scores.items():
            rows = [s.row() for s in by_design.values()]
            if not rows:
                continue
            result[team] = {
                col: float(np.mean([r[col] for r in rows])) for col in _COLUMNS
            }
        return result

    def rows(self) -> list[dict[str, object]]:
        """Flat per-(team, design) rows for CSV/Markdown export."""
        flat: list[dict[str, object]] = []
        for team, by_design in self.scores.items():
            for design, score in sorted(by_design.items()):
                row: dict[str, object] = {"team": team, "design": design}
                row.update(score.row())
                flat.append(row)
        return flat

    def to_csv(self) -> str:
        """Export every score as CSV (via :mod:`repro.analysis.reports`)."""
        from ..analysis import rows_to_csv

        return rows_to_csv(self.rows())

    def to_markdown(self) -> str:
        """Export every score as a Markdown table."""
        from ..analysis import rows_to_markdown

        return rows_to_markdown(self.rows())

    def ratios(self, reference: str = "Ours") -> dict[str, dict[str, float]]:
        """Each team's averages normalized to the reference team's."""
        avgs = self.averages()
        if reference not in avgs:
            raise KeyError(f"no scores recorded for reference team {reference!r}")
        ref = avgs[reference]
        return {
            team: {
                col: (vals[col] / ref[col] if ref[col] else float("nan"))
                for col in _COLUMNS
            }
            for team, vals in avgs.items()
        }


def _table2_job(
    team_name: str,
    design_name: str,
    scale: float,
    team_source: str = DEFAULT_TEAM_SOURCE,
    team_kwargs: dict | None = None,
    seed_seq=None,
) -> dict:
    """One orchestrated (team, design) evaluation, run inside a worker.

    Rebuilds the team from its dotted factory reference (closures in
    :class:`TeamConfig` do not pickle), derives the placer seed from
    the job's private ``seed_seq`` when the run is seeded, and returns
    the score as a JSON-safe payload for the journal.
    """
    from ..orchestrate.worker import resolve_callable

    kwargs = dict(team_kwargs or {})
    if seed_seq is not None:
        kwargs["seed"] = int(seed_seq.generate_state(1)[0] % np.iinfo(np.int32).max)
    factory = resolve_callable(team_source)
    teams = factory(**kwargs)
    by_name = {team.name: team for team in teams}
    if team_name not in by_name:
        raise KeyError(f"team source {team_source!r} knows no team {team_name!r}")
    score = evaluate_team_on_design(by_name[team_name], design_name, scale=scale)
    return {
        "design": score.design,
        "team": score.team,
        "s_ir": int(score.s_ir),
        "s_dr": int(score.s_dr),
        "t_macro_minutes": float(score.t_macro_minutes),
        "t_pr_hours": float(score.t_pr_hours),
    }


def _validate_score_payload(payload) -> None:
    """Reject malformed/corrupted result payloads (REPRO506 on failure)."""
    if not isinstance(payload, dict):
        raise ValueError(f"score payload must be a dict, got {type(payload).__name__}")
    required = ("design", "team", "s_ir", "s_dr", "t_macro_minutes", "t_pr_hours")
    missing = [key for key in required if key not in payload]
    if missing:
        raise ValueError(f"score payload missing fields: {missing}")
    for key in ("s_ir", "s_dr", "t_macro_minutes", "t_pr_hours"):
        value = payload[key]
        if not isinstance(value, (int, float)) or not np.isfinite(value):
            raise ValueError(f"score payload field {key!r} is not finite: {value!r}")


def _run_table2_orchestrated(
    design_names: tuple[str, ...],
    scale: float,
    verbose: bool,
    parallel: int,
    seed: int | None,
    journal_path,
    resume: bool,
    chaos,
    team_source: str,
    team_kwargs: dict | None,
    team_names: tuple[str, ...],
    runtime_config,
) -> Table2Result:
    from ..orchestrate import JobSpec, RuntimeConfig, run_jobs

    jobs = [
        JobSpec(
            key=f"{team}:{design}",
            fn="repro.contest.evaluate:_table2_job",
            args=(team, design, scale, team_source, team_kwargs),
        )
        for team in team_names
        for design in design_names
    ]
    if runtime_config is None:
        config = RuntimeConfig(
            workers=parallel,
            deadline=3600.0,
            max_attempts=2,
            seed=seed,
            chaos=chaos,
            validate=_validate_score_payload,
            verbose=verbose,
        )
    else:
        config = replace(
            runtime_config,
            workers=parallel,
            seed=seed if seed is not None else runtime_config.seed,
            chaos=chaos if chaos is not None else runtime_config.chaos,
            validate=runtime_config.validate or _validate_score_payload,
        )
    report = run_jobs(jobs, config, journal_path=journal_path, resume=resume)

    result = Table2Result()
    result.incidents = [incident.to_dict() for incident in report.incidents]
    for outcome in report.outcomes:
        team, _, design = outcome.key.partition(":")
        if outcome.status == "done":
            result.add(ContestScore(**outcome.result))
            if verbose:
                suffix = " (resumed)" if outcome.resumed else ""
                print(f"{team:<14} {design:<12} {result.scores[team][design].row()}{suffix}")
        else:
            error = outcome.error or {
                "type": "Unknown", "message": outcome.status, "traceback": [],
            }
            result.add_error(team, design, error)
            if verbose:
                print(f"{team:<14} {design:<12} FAILED: {error['message']}")
    return result


def run_table2(
    teams: list[TeamConfig] | None = None,
    design_names: tuple[str, ...] = TABLE2_DESIGNS,
    scale: float = 1.0 / 64.0,
    verbose: bool = False,
    resilient: bool = True,
    *,
    parallel: int | None = None,
    seed: int | None = None,
    journal_path=None,
    resume: bool = False,
    chaos=None,
    team_source: str = DEFAULT_TEAM_SOURCE,
    team_kwargs: dict | None = None,
    team_names: tuple[str, ...] = TEAM_NAMES,
    runtime_config=None,
) -> Table2Result:
    """Evaluate every team on every design.

    With ``resilient`` (the default) a failing (team, design) pair is
    recorded in the result's error manifest and the sweep continues,
    yielding partial scores; ``resilient=False`` restores fail-fast
    behaviour for debugging.

    Passing ``parallel`` (or ``journal_path``/``resume``) routes the
    sweep through the :mod:`repro.orchestrate` supervisor: ``parallel``
    worker processes (0 = supervised serial), per-job deadlines and
    retries, quarantine, a durable journal and REPRO5xx incidents on
    the returned result.  ``seed`` makes every evaluation's placer seed
    a deterministic function of its (team, design) grid position, so a
    parallel sweep is bitwise-identical to ``parallel=0``.  Teams are
    then rebuilt in each worker from ``team_source`` — a dotted
    ``contest_teams``-style factory — which is incompatible with
    passing prebuilt ``teams`` (their closures don't pickle).
    """
    orchestrated = parallel is not None or journal_path is not None or resume
    if orchestrated:
        if teams is not None:
            raise ValueError(
                "run_table2: pass either prebuilt teams (serial in-process) or "
                "parallel/journal options with team_source (orchestrated), not both"
            )
        return _run_table2_orchestrated(
            design_names, scale, verbose,
            parallel=0 if parallel is None else int(parallel),
            seed=seed, journal_path=journal_path, resume=resume, chaos=chaos,
            team_source=team_source, team_kwargs=team_kwargs,
            team_names=tuple(team_names), runtime_config=runtime_config,
        )

    from .teams import contest_teams

    if teams is None:
        teams = contest_teams(**(team_kwargs or {}))
    result = Table2Result()
    for team in teams:
        for name in design_names:
            try:
                score = evaluate_team_on_design(team, name, scale=scale)
            except Exception as exc:
                if not resilient:
                    raise
                from ..orchestrate.worker import error_info

                result.add_error(team.name, name, error_info(exc))
                if verbose:
                    print(f"{team.name:<14} {name:<12} FAILED: {exc}")
                continue
            result.add(score)
            if verbose:
                print(f"{team.name:<14} {name:<12} {score.row()}")
    return result


def format_table2(result: Table2Result) -> str:
    """Render the Table-II layout: design rows, Average and Ratio rows."""
    teams = list(result.scores)
    designs = sorted(
        {d for by_design in result.scores.values() for d in by_design}
    )
    header = f"{'Design':<12}"
    for team in teams:
        header += f" | {team:^37}"
    sub = f"{'':<12}"
    for _ in teams:
        sub += " | " + " ".join(f"{c:>7}" for c in _COLUMNS)
    lines = [header, sub, "-" * len(sub)]
    for design in designs:
        line = f"{design:<12}"
        for team in teams:
            score = result.scores[team].get(design)
            if score is None:
                line += " | " + " ".join(["     --"] * len(_COLUMNS))
            else:
                row = score.row()
                line += " | " + " ".join(f"{row[c]:>7.2f}" for c in _COLUMNS)
        lines.append(line)
    avgs = result.averages()
    line = f"{'Average':<12}"
    for team in teams:
        if team in avgs:
            line += " | " + " ".join(f"{avgs[team][c]:>7.2f}" for c in _COLUMNS)
        else:
            line += " | " + " ".join(["     --"] * len(_COLUMNS))
    lines.append(line)
    if "Ours" in avgs:
        ratios = result.ratios("Ours")
        line = f"{'Ratio':<12}"
        for team in teams:
            if team in ratios:
                line += " | " + " ".join(
                    f"{ratios[team][c]:>7.2f}" for c in _COLUMNS
                )
            else:
                line += " | " + " ".join(["     --"] * len(_COLUMNS))
        lines.append(line)
    if result.errors:
        lines.append("")
        lines.append(f"partial results — {len(result.error_manifest())} failure(s):")
        for entry in result.error_manifest():
            lines.append(
                f"  {entry['team']:<14} {entry['design']:<12} {entry['error']}"
            )
    return "\n".join(lines)


def table2_artifact(result: Table2Result) -> dict:
    """JSON-safe record of a Table-II run: scores, failures, incidents.

    This is what lands under ``results/`` after a sweep — enough to
    audit a partial run (structured error manifest with traceback
    tails, the REPRO5xx orchestration incident log) without re-running
    anything.
    """
    return {
        "complete": result.complete,
        "scores": result.rows(),
        "averages": result.averages(),
        "error_manifest": result.error_manifest(),
        "incidents": list(result.incidents),
    }


def write_table2_artifact(
    result: Table2Result, path: str | os.PathLike = "results/table2_run.json"
) -> Path:
    """Atomically persist :func:`table2_artifact` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(table2_artifact(result), indent=2, sort_keys=True) + "\n"
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path
