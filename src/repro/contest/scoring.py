"""MLCAD 2023 contest scoring (Section II-B, Eqs. 1–3).

* ``S_IR`` (Eq. 1) penalizes the design's worst short/global congestion
  level in each of the four directions, quadratically above level 3.
* ``S_DR`` is the detailed-router iteration count.
* ``S_R = S_IR × S_DR`` (Eq. 2).
* ``S_score = [1 + max(0, T_macro − 10)] × S_R × T_P&R`` (Eq. 3), with
  ``T_macro`` in minutes and ``T_P&R`` in hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing import CongestionReport

__all__ = ["initial_routing_score", "routability_score", "final_score", "ContestScore"]


def initial_routing_score(report: CongestionReport) -> int:
    """Eq. 1: S_IR from the worst levels per direction and wire class."""
    short = report.max_short_by_direction()
    global_ = report.max_global_by_direction()
    penalty = 0.0
    for levels in (short, global_):
        excess = np.maximum(0, levels.astype(np.int64) - 3)
        penalty += float((excess**2).sum())
    return int(1 + penalty)


def routability_score(s_ir: float, s_dr: float) -> float:
    """Eq. 2: S_R = S_IR × S_DR."""
    return float(s_ir) * float(s_dr)


def final_score(
    s_r: float, t_macro_minutes: float, t_pr_hours: float
) -> float:
    """Eq. 3: S_score = [1 + max(0, T_macro − 10)] × S_R × T_P&R."""
    macro_factor = 1.0 + max(0.0, t_macro_minutes - 10.0)
    return macro_factor * s_r * t_pr_hours


@dataclass(frozen=True)
class ContestScore:
    """All contest metrics for one placement of one design."""

    design: str
    team: str
    s_ir: int
    s_dr: int
    t_macro_minutes: float
    t_pr_hours: float

    @property
    def s_r(self) -> float:
        return routability_score(self.s_ir, self.s_dr)

    @property
    def s_score(self) -> float:
        return final_score(self.s_r, self.t_macro_minutes, self.t_pr_hours)

    def row(self) -> dict[str, float]:
        """Table II row fragment for this (team, design)."""
        return {
            "S_score": round(self.s_score, 2),
            "S_R": round(self.s_r, 2),
            "T_P&R": round(self.t_pr_hours, 2),
            "S_IR": self.s_ir,
            "S_DR": self.s_dr,
        }
