"""MLCAD 2023 contest scoring, teams and the Table-II harness."""

from .evaluate import (
    Table2Result,
    evaluate_team_on_design,
    format_table2,
    run_table2,
    table2_artifact,
    write_table2_artifact,
)
from .scoring import (
    ContestScore,
    final_score,
    initial_routing_score,
    routability_score,
)
from .teams import TEAM_NAMES, TeamConfig, contest_teams

__all__ = [
    "initial_routing_score",
    "routability_score",
    "final_score",
    "ContestScore",
    "TeamConfig",
    "TEAM_NAMES",
    "contest_teams",
    "Table2Result",
    "evaluate_team_on_design",
    "run_table2",
    "format_table2",
    "table2_artifact",
    "write_table2_artifact",
]
