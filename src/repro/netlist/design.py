"""Netlist containers used across placement, routing and feature extraction.

A :class:`Design` is a flat netlist over a :class:`~repro.arch.FPGADevice`:
instances (CLB-level cells and DSP/BRAM/URAM macros), multi-pin nets,
cascade-shape and region constraints, and the placement state (one
``(x, y)`` per instance, in site units).

For vectorized math the design exposes *pin arrays*: ``pin_inst[k]`` and
``pin_net[k]`` give the instance/net of the k-th pin, so wirelength,
RUDY and net-density evaluations are single ``np.add.at`` passes instead
of Python loops over nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch import (
    CascadeShape,
    FPGADevice,
    RegionConstraint,
    ResourceType,
)

__all__ = ["Instance", "Net", "Design"]


@dataclass
class Instance:
    """A placeable netlist object.

    ``demand`` maps each resource the instance consumes to its amount —
    a CLB-level cell is typically ``{LUT: 8, FF: 16}`` while a macro is
    ``{DSP: 1}`` etc.  ``movable`` is false for IO pads and other
    pre-placed objects.
    """

    name: str
    resource: ResourceType
    demand: dict[ResourceType, float] = field(default_factory=dict)
    movable: bool = True

    def __post_init__(self) -> None:
        if not self.demand:
            self.demand = {self.resource: 1.0}

    @property
    def is_macro(self) -> bool:
        return self.resource.is_macro


@dataclass
class Net:
    """A multi-pin net; ``pins`` are instance indices."""

    pins: tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise ValueError("a net needs at least two pins")

    def __len__(self) -> int:
        return len(self.pins)


class Design:
    """A netlist plus its placement state on a device.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``Design_116``).
    device:
        Target fabric.
    instances, nets:
        The netlist proper.
    cascades, regions:
        Contest constraints (Section II-A).
    nominal_stats:
        The full-scale statistics this (possibly scaled-down) synthetic
        design emulates, as reported in Table I — used for reporting
        only.
    """

    def __init__(
        self,
        name: str,
        device: FPGADevice,
        instances: list[Instance],
        nets: list[Net],
        cascades: list[CascadeShape] | None = None,
        regions: list[RegionConstraint] | None = None,
        nominal_stats: dict[str, int] | None = None,
    ) -> None:
        self.name = name
        self.device = device
        self.instances = instances
        self.nets = nets
        self.cascades = cascades or []
        self.regions = regions or []
        self.nominal_stats = nominal_stats or {}

        n = len(instances)
        self.x = np.full(n, 0.5 * device.width)
        self.y = np.full(n, 0.5 * device.height)
        self._build_arrays()
        self._validate()

    # -- construction ------------------------------------------------------------

    def _build_arrays(self) -> None:
        pin_inst: list[int] = []
        pin_net: list[int] = []
        for net_idx, net in enumerate(self.nets):
            pin_inst.extend(net.pins)
            pin_net.extend([net_idx] * len(net.pins))
        self.pin_inst = np.asarray(pin_inst, dtype=np.int64)
        self.pin_net = np.asarray(pin_net, dtype=np.int64)
        self.net_weights = np.asarray([n.weight for n in self.nets])
        self.net_degrees = np.asarray([len(n) for n in self.nets], dtype=np.int64)
        self.movable_mask = np.asarray([i.movable for i in self.instances])
        self.macro_mask = np.asarray([i.is_macro for i in self.instances])
        # Pins per instance (for pin-density features).
        self.inst_num_pins = np.bincount(
            self.pin_inst, minlength=len(self.instances)
        ).astype(np.float64)

        self.resource_codes = np.asarray(
            [list(ResourceType).index(i.resource) for i in self.instances],
            dtype=np.int64,
        )
        self.demand_matrix = np.zeros((len(self.instances), len(ResourceType)))
        for idx, inst in enumerate(self.instances):
            for res, amount in inst.demand.items():
                self.demand_matrix[idx, list(ResourceType).index(res)] = amount

    def _validate(self) -> None:
        n = len(self.instances)
        if self.pin_inst.size and self.pin_inst.max() >= n:
            raise ValueError("net pin references a nonexistent instance")
        for cascade in self.cascades:
            for idx in cascade.instances:
                if idx >= n:
                    raise ValueError("cascade references a nonexistent instance")
                if not self.instances[idx].is_macro:
                    raise ValueError(
                        "cascade shapes may only constrain macros, got "
                        f"{self.instances[idx].resource}"
                    )
        for region in self.regions:
            for idx in region.instances:
                if idx >= n:
                    raise ValueError("region references a nonexistent instance")

    # -- convenience -----------------------------------------------------------------

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return int(self.pin_inst.size)

    def instances_of(self, resource: ResourceType) -> np.ndarray:
        """Indices of all instances whose primary resource matches."""
        code = list(ResourceType).index(resource)
        return np.flatnonzero(self.resource_codes == code)

    def macro_indices(self) -> np.ndarray:
        return np.flatnonzero(self.macro_mask)

    def total_demand(self, resource: ResourceType) -> float:
        """Total netlist demand for ``resource``."""
        col = list(ResourceType).index(resource)
        return float(self.demand_matrix[:, col].sum())

    def utilization(self, resource: ResourceType) -> float:
        """Demand / device capacity for a resource type."""
        cap = self.device.resource_capacity(resource)
        if cap == 0.0:
            return 0.0
        return self.total_demand(resource) / cap

    def set_placement(self, x: np.ndarray, y: np.ndarray) -> None:
        """Install a placement (copies, with bounds clipping)."""
        if x.shape != self.x.shape or y.shape != self.y.shape:
            raise ValueError("placement arrays have wrong shape")
        self.x = np.clip(np.asarray(x, dtype=np.float64), 0, self.device.width - 1e-6)
        self.y = np.clip(np.asarray(y, dtype=np.float64), 0, self.device.height - 1e-6)

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the current placement."""
        px = self.x[self.pin_inst]
        py = self.y[self.pin_inst]
        num = self.num_nets
        max_x = np.full(num, -np.inf)
        min_x = np.full(num, np.inf)
        max_y = np.full(num, -np.inf)
        min_y = np.full(num, np.inf)
        np.maximum.at(max_x, self.pin_net, px)
        np.minimum.at(min_x, self.pin_net, px)
        np.maximum.at(max_y, self.pin_net, py)
        np.minimum.at(min_y, self.pin_net, py)
        spans = (max_x - min_x) + (max_y - min_y)
        return float((spans * self.net_weights).sum())

    def stats(self) -> dict[str, int]:
        """Actual instantiated resource counts (may be scaled down)."""
        return {
            res.value: int(round(self.total_demand(res)))
            for res in ResourceType
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Design({self.name}: {self.num_instances} instances, "
            f"{self.num_nets} nets, {len(self.cascades)} cascades, "
            f"{len(self.regions)} regions)"
        )
