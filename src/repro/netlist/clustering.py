"""Bottom-up netlist clustering (BestChoice-style first-choice pass).

Analytical placers (incl. DREAMPlaceFPGA) cluster tightly connected
cells before global placement to shrink the variable count, then expand
back.  This module provides that substrate: cells merge with their
highest-affinity neighbour (affinity = Σ 1/(|net|−1) over shared nets,
the standard clique-model edge weight) under a LUT-capacity cap; macros,
fixed instances and region-fenced cells never merge across fences.

Usage::

    clustered, mapping = cluster_cells(design, max_lut=16.0)
    # place `clustered` ... then carry positions back:
    x, y = expand_placement(clustered, mapping)
    design.set_placement(x, y)
"""

from __future__ import annotations

import numpy as np

from ..arch import ResourceType
from .design import Design, Instance, Net

__all__ = ["cluster_cells", "expand_placement"]

_LUT_COL = list(ResourceType).index(ResourceType.LUT)


def _affinities(design: Design, clusterable: np.ndarray) -> dict[int, dict[int, float]]:
    """Pairwise clique-model affinities among clusterable instances."""
    clusterable_set = set(int(i) for i in clusterable)
    graph: dict[int, dict[int, float]] = {int(i): {} for i in clusterable}
    for net in design.nets:
        pins = [p for p in sorted(set(net.pins)) if p in clusterable_set]
        k = len(net.pins)
        if len(pins) < 2 or k < 2 or k > 16:
            continue
        weight = net.weight / (k - 1)
        for i, a in enumerate(pins):
            for b in pins[i + 1:]:
                graph[a][b] = graph[a].get(b, 0.0) + weight
                graph[b][a] = graph[b].get(a, 0.0) + weight
    return graph


def cluster_cells(
    design: Design,
    max_lut: float = 16.0,
    seed: int = 0,
) -> tuple[Design, np.ndarray]:
    """Merge tightly connected cells; returns ``(clustered, mapping)``.

    ``mapping[i]`` is the clustered-design instance index of original
    instance ``i``.  Macros and fixed instances map 1:1.  Cells inside
    different region fences (or fenced vs. unfenced) never merge, so
    region constraints survive clustering unchanged.
    """
    rng = np.random.default_rng(seed)
    fence_of: dict[int, int] = {}
    for ridx, region in enumerate(design.regions):
        for inst in region.instances:
            fence_of[inst] = ridx

    clusterable = np.array(
        [
            int(i)
            for i in design.instances_of(ResourceType.LUT)
            if design.instances[int(i)].movable
            and design.demand_matrix[int(i)].sum() > 0
        ],
        dtype=np.int64,
    )
    graph = _affinities(design, clusterable)

    # First-choice pass: each cell merges with its best eligible
    # neighbour if the merged LUT demand fits under the cap.
    group_of = {int(i): int(i) for i in clusterable}
    group_lut = {
        int(i): float(design.demand_matrix[int(i), _LUT_COL])
        for i in clusterable
    }

    def find(i: int) -> int:
        while group_of[i] != i:
            group_of[i] = group_of[group_of[i]]
            i = group_of[i]
        return i

    order = rng.permutation(clusterable)
    for raw in order:
        a = find(int(raw))
        best_b, best_w = -1, 0.0
        for nbr, weight in graph[int(raw)].items():
            b = find(nbr)
            if b == a:
                continue
            if fence_of.get(int(raw)) != fence_of.get(nbr):
                continue
            if group_lut[a] + group_lut[b] > max_lut:
                continue
            if weight > best_w:
                best_b, best_w = b, weight
        if best_b >= 0:
            group_of[best_b] = a
            group_lut[a] += group_lut[best_b]

    # Build the clustered design.
    mapping = np.full(design.num_instances, -1, dtype=np.int64)
    instances: list[Instance] = []
    rep_position: list[int] = []  # representative original index

    cluster_index: dict[int, int] = {}
    for idx in range(design.num_instances):
        inst = design.instances[idx]
        if idx in group_of:
            root = find(idx)
            if root not in cluster_index:
                cluster_index[root] = len(instances)
                instances.append(
                    Instance(
                        name=f"cluster_{len(instances)}",
                        resource=ResourceType.LUT,
                        demand={},
                        movable=True,
                    )
                )
                rep_position.append(root)
            mapping[idx] = cluster_index[root]
        else:
            mapping[idx] = len(instances)
            instances.append(
                Instance(
                    name=inst.name,
                    resource=inst.resource,
                    demand=dict(inst.demand),
                    movable=inst.movable,
                )
            )
            rep_position.append(idx)

    # Accumulate merged demands onto each cluster.
    demand_acc: dict[int, dict] = {}
    for idx in range(design.num_instances):
        if idx not in group_of:
            continue
        slot = int(mapping[idx])
        acc = demand_acc.setdefault(slot, {})
        for res, amount in design.instances[idx].demand.items():
            acc[res] = acc.get(res, 0.0) + amount
    for slot, acc in demand_acc.items():
        instances[slot].demand = acc

    # Re-map nets; drop degenerate ones.
    nets: list[Net] = []
    for net in design.nets:
        pins = tuple(sorted({int(mapping[p]) for p in net.pins}))
        if len(pins) >= 2:
            nets.append(Net(pins, weight=net.weight))

    from ..arch import CascadeShape, RegionConstraint

    cascades = [
        CascadeShape(tuple(int(mapping[i]) for i in c.instances))
        for c in design.cascades
    ]
    regions = [
        RegionConstraint(
            r.xlo, r.ylo, r.xhi, r.yhi,
            frozenset(int(mapping[i]) for i in r.instances),
        )
        for r in design.regions
    ]
    clustered = Design(
        name=f"{design.name}(clustered)",
        device=design.device,
        instances=instances,
        nets=nets,
        cascades=cascades,
        regions=regions,
        nominal_stats=dict(design.nominal_stats),
    )
    # Seed positions from the representatives (incl. fixed IO).
    clustered.set_placement(
        design.x[np.asarray(rep_position)], design.y[np.asarray(rep_position)]
    )
    clustered._mapping_source = design  # for expand_placement
    clustered._mapping = mapping
    return clustered, mapping


def expand_placement(
    clustered: Design, mapping: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Original-design coordinates from a placed clustered design."""
    # Advanced indexing already materializes fresh arrays; a trailing
    # .copy() would double the allocation for nothing (REPRO303).
    return clustered.x[mapping], clustered.y[mapping]
