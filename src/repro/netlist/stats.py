"""Design statistics reporting (the left columns of Tables I/II)."""

from __future__ import annotations

from ..arch import ResourceType
from .design import Design

__all__ = ["design_row", "format_stats_table"]


def design_row(design: Design) -> dict[str, object]:
    """One benchmark-statistics row: nominal (paper-scale) and actual counts."""
    nominal = design.nominal_stats
    actual = design.stats()
    return {
        "design": design.name,
        "#LUT": nominal.get("LUT", actual.get("LUT", 0)),
        "#FF": nominal.get("FF", actual.get("FF", 0)),
        "#DSP": nominal.get("DSP", actual.get("DSP", 0)),
        "#BRAM": nominal.get("BRAM", actual.get("BRAM", 0)),
        "instantiated": {
            "LUT": actual["LUT"],
            "FF": actual["FF"],
            "DSP": actual["DSP"],
            "BRAM": actual["BRAM"],
            "URAM": actual["URAM"],
        },
        "#nets": design.num_nets,
        "#pins": design.num_pins,
        "#cascades": len(design.cascades),
        "#regions": len(design.regions),
        "util_LUT": round(design.utilization(ResourceType.LUT), 3),
        "util_DSP": round(design.utilization(ResourceType.DSP), 3),
        "util_BRAM": round(design.utilization(ResourceType.BRAM), 3),
    }


def format_stats_table(designs: list[Design]) -> str:
    """Human-readable statistics table for examples and bench output."""
    header = (
        f"{'Design':<12} {'#LUT':>8} {'#FF':>8} {'#DSP':>6} {'#BRAM':>6} "
        f"{'nets':>7} {'pins':>8} {'casc':>5} {'regs':>5}"
    )
    lines = [header, "-" * len(header)]
    for design in designs:
        row = design_row(design)
        lines.append(
            f"{row['design']:<12} {row['#LUT']:>8} {row['#FF']:>8} "
            f"{row['#DSP']:>6} {row['#BRAM']:>6} {row['#nets']:>7} "
            f"{row['#pins']:>8} {row['#cascades']:>5} {row['#regions']:>5}"
        )
    return "\n".join(lines)
