"""Design persistence in a bookshelf-style text format.

Generated benchmarks can be written to disk and reloaded bit-exactly —
useful for freezing a benchmark suite, diffing placements, or feeding
the same netlist to external tooling.  The format is line-oriented with
explicit sections, in the spirit of the bookshelf ``.nodes/.nets/.pl``
files classic placers consume, but self-contained in one file:

.. code-block:: text

    REPRO-NETLIST v1
    DESIGN <name>
    DEVICE <cols> <rows> <tile_cols> <tile_rows> <short_cap> <global_cap>
    COLUMNS <CLB|DSP|BRAM|URAM|IO>...
    INSTANCE <name> <resource> <movable:0|1> <res>=<amount>...
    NET <weight> <pin_index>...
    CASCADE <inst_index>...
    REGION <xlo> <ylo> <xhi> <yhi> <inst_index>...
    PLACE <inst_index> <x> <y>
    END
"""

from __future__ import annotations

import os
from pathlib import Path

from ..arch import CascadeShape, FPGADevice, RegionConstraint, ResourceType, SiteType
from .design import Design, Instance, Net

__all__ = ["save_design", "load_design"]

_FORMAT_HEADER = "REPRO-NETLIST v1"


def save_design(design: Design, path: str | os.PathLike) -> str:
    """Serialize a design (netlist + constraints + placement) to ``path``."""
    device = design.device
    lines = [
        _FORMAT_HEADER,
        f"DESIGN {design.name}",
        f"DEVICE {device.num_cols} {device.num_rows} "
        f"{device.tile_cols} {device.tile_rows} "
        f"{device.short_capacity:g} {device.global_capacity:g}",
        "COLUMNS " + " ".join(t.value for t in device.column_types),
    ]
    for key, value in design.nominal_stats.items():
        lines.append(f"NOMINAL {key} {value}")
    for inst in design.instances:
        demand = " ".join(
            f"{res.value}={amount:.17g}" for res, amount in inst.demand.items()
        )
        lines.append(
            f"INSTANCE {inst.name} {inst.resource.value} "
            f"{int(inst.movable)} {demand}"
        )
    for net in design.nets:
        pins = " ".join(str(p) for p in net.pins)
        lines.append(f"NET {net.weight:.17g} {pins}")
    for cascade in design.cascades:
        lines.append("CASCADE " + " ".join(str(i) for i in cascade.instances))
    for region in design.regions:
        members = " ".join(str(i) for i in sorted(region.instances))
        lines.append(
            f"REGION {region.xlo:.17g} {region.ylo:.17g} "
            f"{region.xhi:.17g} {region.yhi:.17g} {members}".rstrip()
        )
    for idx in range(design.num_instances):
        lines.append(f"PLACE {idx} {design.x[idx]:.17g} {design.y[idx]:.17g}")
    lines.append("END")
    # Frozen benchmark files are durable artifacts: write to a temp
    # sibling, fsync, rename, so a crash never leaves a torn netlist at
    # the final name.
    path = Path(path)
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return str(path)


def load_design(path: str | os.PathLike) -> Design:
    """Reload a design written by :func:`save_design`."""
    with open(path) as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or lines[0] != _FORMAT_HEADER:
        raise ValueError(f"{path}: not a {_FORMAT_HEADER} file")

    name = "unnamed"
    device: FPGADevice | None = None
    device_params: tuple | None = None
    nominal: dict[str, int] = {}
    instances: list[Instance] = []
    nets: list[Net] = []
    cascades: list[CascadeShape] = []
    regions: list[RegionConstraint] = []
    placements: list[tuple[int, float, float]] = []

    for lineno, line in enumerate(lines[1:], start=2):
        if not line or line.startswith("#"):
            continue
        if line == "END":
            break
        keyword, _, rest = line.partition(" ")
        fields = rest.split()
        try:
            if keyword == "DESIGN":
                name = rest.strip()
            elif keyword == "DEVICE":
                device_params = (
                    int(fields[0]), int(fields[1]), int(fields[2]),
                    int(fields[3]), float(fields[4]), float(fields[5]),
                )
            elif keyword == "COLUMNS":
                if device_params is None:
                    raise ValueError("COLUMNS before DEVICE")
                cols, rows, tc, tr, sc, gc = device_params
                device = FPGADevice(
                    num_cols=cols, num_rows=rows,
                    column_types=tuple(SiteType(v) for v in fields),
                    tile_cols=tc, tile_rows=tr,
                    short_capacity=sc, global_capacity=gc,
                    name=f"loaded:{name}",
                )
            elif keyword == "NOMINAL":
                nominal[fields[0]] = int(fields[1])
            elif keyword == "INSTANCE":
                demand = {}
                for token in fields[3:]:
                    res_name, _, amount = token.partition("=")
                    demand[ResourceType(res_name)] = float(amount)
                instances.append(
                    Instance(
                        name=fields[0],
                        resource=ResourceType(fields[1]),
                        demand=demand or None,
                        movable=bool(int(fields[2])),
                    )
                )
            elif keyword == "NET":
                nets.append(
                    Net(tuple(int(p) for p in fields[1:]), weight=float(fields[0]))
                )
            elif keyword == "CASCADE":
                cascades.append(CascadeShape(tuple(int(i) for i in fields)))
            elif keyword == "REGION":
                regions.append(
                    RegionConstraint(
                        float(fields[0]), float(fields[1]),
                        float(fields[2]), float(fields[3]),
                        frozenset(int(i) for i in fields[4:]),
                    )
                )
            elif keyword == "PLACE":
                placements.append(
                    (int(fields[0]), float(fields[1]), float(fields[2]))
                )
            else:
                raise ValueError(f"unknown keyword {keyword!r}")
        except (IndexError, KeyError) as exc:
            raise ValueError(f"{path}:{lineno}: malformed line: {line!r}") from exc

    if device is None:
        raise ValueError(f"{path}: missing DEVICE/COLUMNS sections")

    # Instance() replaces an empty demand with the default; preserve
    # explicitly-empty demand (IO pads) via a zero entry.
    for inst in instances:
        if not inst.demand:
            inst.demand = {inst.resource: 1.0}

    design = Design(
        name=name,
        device=device,
        instances=instances,
        nets=nets,
        cascades=cascades,
        regions=regions,
        nominal_stats=nominal,
    )
    if placements:
        x = design.x.copy()
        y = design.y.copy()
        for idx, px, py in placements:
            x[idx] = px
            y[idx] = py
        design.set_placement(x, y)
    return design
