"""Synthetic MLCAD-2023-like benchmark generator.

The contest benchmark files are public but not available offline, so
this module generates netlists that reproduce their *reported shape*
(DESIGN.md §2): the per-design LUT/FF/DSP/BRAM statistics of Table I,
thousands-of-macros scale, cascade-shape chains, rectangular region
constraints, and the modular Rent's-rule-style connectivity that makes
some placements congested — hub modules with heavy inter-module
connectivity, wide macro buses that stress the routing around DSP/BRAM
columns, and edge IO.

Designs can be instantiated at a ``scale`` < 1 so the pure-Python flow
stays laptop-fast; ``nominal_stats`` preserves the full-scale numbers
for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch import (
    CascadeShape,
    FPGADevice,
    RegionConstraint,
    ResourceType,
    SiteType,
    xcvu3p_like,
)
from .design import Design, Instance, Net

__all__ = [
    "DesignSpec",
    "MLCAD2023_SPECS",
    "generate_design",
    "mlcad2023_suite",
    "TABLE1_DESIGNS",
    "TABLE2_DESIGNS",
]

_LUTS_PER_CLUSTER = 8.0


@dataclass(frozen=True)
class DesignSpec:
    """Full-scale statistics and difficulty knobs for one benchmark.

    ``hub_fraction`` and ``long_net_factor`` control how much
    inter-module (long-range) connectivity the design has — the paper's
    ten benchmarks are "the most congested and challenging" of the
    suite, so these are set high and vary per design.
    """

    name: str
    num_lut: int
    num_ff: int
    num_dsp: int
    num_bram: int
    num_uram: int = 32
    seed: int = 0
    hub_fraction: float = 0.10
    long_net_factor: float = 0.60
    region_count: int = 2
    cascade_fraction: float = 0.30


# Statistics straight from Table I (Design_230 appears only in Table II;
# the paper does not list its stats, so we interpolate from its peers).
MLCAD2023_SPECS: dict[str, DesignSpec] = {
    spec.name: spec
    for spec in [
        DesignSpec("Design_116", 370_000, 315_000, 2052, 648, seed=116,
                   hub_fraction=0.16, long_net_factor=0.95),
        DesignSpec("Design_120", 383_000, 315_000, 2052, 648, seed=120,
                   hub_fraction=0.08, long_net_factor=0.55),
        DesignSpec("Design_136", 315_000, 268_000, 1870, 590, seed=136,
                   hub_fraction=0.10, long_net_factor=0.70),
        DesignSpec("Design_156", 338_000, 291_000, 1961, 619, seed=156,
                   hub_fraction=0.09, long_net_factor=0.60),
        DesignSpec("Design_176", 370_000, 315_000, 2052, 648, seed=176,
                   hub_fraction=0.17, long_net_factor=1.00),
        DesignSpec("Design_180", 383_000, 315_000, 2052, 648, seed=180,
                   hub_fraction=0.15, long_net_factor=0.90),
        DesignSpec("Design_190", 312_000, 256_000, 1824, 576, seed=190,
                   hub_fraction=0.13, long_net_factor=0.80),
        DesignSpec("Design_197", 323_000, 268_000, 1870, 590, seed=197,
                   hub_fraction=0.08, long_net_factor=0.50),
        DesignSpec("Design_227", 363_000, 303_000, 2006, 634, seed=227,
                   hub_fraction=0.11, long_net_factor=0.70),
        DesignSpec("Design_230", 352_000, 300_000, 1989, 629, seed=230,
                   hub_fraction=0.12, long_net_factor=0.75),
        DesignSpec("Design_237", 379_000, 315_000, 2052, 648, seed=237,
                   hub_fraction=0.10, long_net_factor=0.65),
    ]
}

TABLE1_DESIGNS = (
    "Design_116", "Design_120", "Design_136", "Design_156", "Design_176",
    "Design_180", "Design_190", "Design_197", "Design_227", "Design_237",
)
TABLE2_DESIGNS = (
    "Design_116", "Design_120", "Design_136", "Design_156", "Design_176",
    "Design_180", "Design_190", "Design_197", "Design_227", "Design_230",
)


def _sample_net_size(rng: np.random.Generator) -> int:
    """Net degree distribution: dominated by 2–4 pin nets, rare wide nets."""
    r = rng.random()
    if r < 0.55:
        return 2
    if r < 0.80:
        return 3
    if r < 0.92:
        return int(rng.integers(4, 7))
    return int(rng.integers(7, 17))


def generate_design(
    spec: DesignSpec,
    scale: float = 1.0 / 64.0,
    device: FPGADevice | None = None,
) -> Design:
    """Instantiate a synthetic design for ``spec`` at the given scale.

    Parameters
    ----------
    spec:
        Full-scale statistics and difficulty knobs.
    scale:
        Fraction of the full-scale netlist to instantiate.  Cell and
        macro counts both scale linearly so device utilization is
        preserved.
    device:
        Target device; defaults to :func:`~repro.arch.xcvu3p_like` at the
        same scale.
    """
    if device is None:
        device = xcvu3p_like(scale)
    rng = np.random.default_rng(spec.seed)

    n_lut = max(64, int(round(spec.num_lut * scale)))
    ff_per_lut = spec.num_ff / spec.num_lut
    # Macro counts track the *utilization* of the real part (XCVU3P:
    # 2280 DSP / 720 BRAM / 320 URAM sites) rather than raw netlist
    # scale, so the scaled design stresses macro legalization and the
    # macro-column congestion the same way the contest designs do.
    xcvu3p_sites = {
        ResourceType.DSP: 2280.0,
        ResourceType.BRAM: 720.0,
        ResourceType.URAM: 320.0,
    }
    counts = {}
    for res, nominal in (
        (ResourceType.DSP, spec.num_dsp),
        (ResourceType.BRAM, spec.num_bram),
        (ResourceType.URAM, spec.num_uram),
    ):
        utilization = nominal / xcvu3p_sites[res]
        capacity = device.resource_capacity(res)
        counts[res] = int(np.clip(round(utilization * capacity), 2, capacity))
    n_dsp = counts[ResourceType.DSP]
    n_bram = counts[ResourceType.BRAM]
    n_uram = counts[ResourceType.URAM]

    instances: list[Instance] = []
    nets: list[Net] = []

    # -- CLB-level cells: clusters of 8 LUTs + proportional FFs ------------
    num_clusters = int(np.ceil(n_lut / _LUTS_PER_CLUSTER))
    for i in range(num_clusters):
        luts = min(_LUTS_PER_CLUSTER, n_lut - i * _LUTS_PER_CLUSTER)
        instances.append(
            Instance(
                name=f"clb_{i}",
                resource=ResourceType.LUT,
                demand={
                    ResourceType.LUT: float(luts),
                    ResourceType.FF: float(luts) * ff_per_lut * 2.0,
                },
            )
        )
    cluster_ids = np.arange(num_clusters)

    # -- macros --------------------------------------------------------------
    macro_ids: dict[ResourceType, np.ndarray] = {}
    for res, count in (
        (ResourceType.DSP, n_dsp),
        (ResourceType.BRAM, n_bram),
        (ResourceType.URAM, n_uram),
    ):
        start = len(instances)
        for i in range(count):
            instances.append(
                Instance(name=f"{res.value.lower()}_{i}", resource=res)
            )
        macro_ids[res] = np.arange(start, start + count)

    # -- IO pads, fixed on the device boundary ---------------------------------
    num_io = max(8, num_clusters // 24)
    io_start = len(instances)
    io_positions: list[tuple[float, float]] = []
    for i in range(num_io):
        instances.append(
            Instance(
                name=f"io_{i}",
                resource=ResourceType.LUT,
                demand={ResourceType.LUT: 0.0},
                movable=False,
            )
        )
        side = i % 4
        along = rng.uniform(0.05, 0.95)
        if side == 0:
            io_positions.append((0.0, along * device.height))
        elif side == 1:
            io_positions.append((device.width - 1, along * device.height))
        elif side == 2:
            io_positions.append((along * device.width, 0.0))
        else:
            io_positions.append((along * device.width, device.height - 1))

    # -- modular connectivity ------------------------------------------------------
    # Partition clusters into modules of geometric sizes; a fraction of the
    # modules are "hubs" that attract heavy inter-module traffic (what
    # makes these benchmarks congestion-challenging).
    module_of = np.zeros(num_clusters, dtype=np.int64)
    modules: list[np.ndarray] = []
    cursor = 0
    while cursor < num_clusters:
        size = int(np.clip(rng.geometric(1.0 / 24.0), 4, 120))
        size = min(size, num_clusters - cursor)
        members = cluster_ids[cursor : cursor + size]
        module_of[members] = len(modules)
        modules.append(members)
        cursor += size
    num_modules = len(modules)
    num_hubs = max(1, int(round(spec.hub_fraction * num_modules)))
    hub_modules = rng.choice(num_modules, size=num_hubs, replace=False)

    # Intra-module nets: ~1.4 nets per cluster, local connectivity.
    for members in modules:
        count = max(1, int(round(1.4 * len(members))))
        for _ in range(count):
            size = min(_sample_net_size(rng), len(members))
            if size < 2:
                if len(members) < 2:
                    continue
                size = 2
            pins = rng.choice(members, size=size, replace=False)
            nets.append(Net(tuple(int(p) for p in pins)))

    # Inter-module nets: hub-biased, these become the long congested routes.
    inter_count = int(round(spec.long_net_factor * num_clusters))
    hub_set = set(int(h) for h in hub_modules)
    for _ in range(inter_count):
        if rng.random() < 0.7 and hub_set:
            m_a = int(rng.choice(list(hub_set)))
        else:
            m_a = int(rng.integers(num_modules))
        m_b = int(rng.integers(num_modules))
        if m_a == m_b:
            m_b = (m_b + 1) % num_modules
        size = _sample_net_size(rng)
        n_a = max(1, size // 2)
        n_b = max(1, size - n_a)
        pins_a = rng.choice(modules[m_a], size=min(n_a, len(modules[m_a])), replace=False)
        pins_b = rng.choice(modules[m_b], size=min(n_b, len(modules[m_b])), replace=False)
        pins = tuple(int(p) for p in np.concatenate([pins_a, pins_b]))
        if len(set(pins)) >= 2:
            nets.append(Net(tuple(sorted(set(pins)))))

    # Macro buses: each macro talks to one module through several nets
    # (address/data buses), concentrating demand around macro columns.
    for res, ids in macro_ids.items():
        buses = 3 if res is ResourceType.DSP else 4
        for macro in ids:
            module = modules[int(rng.integers(num_modules))]
            for _ in range(buses):
                fan = min(int(rng.integers(2, 5)), len(module))
                pins = rng.choice(module, size=fan, replace=False)
                nets.append(
                    Net((int(macro),) + tuple(int(p) for p in pins))
                )

    # IO nets.
    for i in range(num_io):
        module = modules[int(rng.integers(num_modules))]
        fan = min(int(rng.integers(1, 4)), len(module))
        pins = rng.choice(module, size=fan, replace=False)
        nets.append(Net((io_start + i,) + tuple(int(p) for p in pins)))

    # -- cascade shapes ------------------------------------------------------------
    cascades: list[CascadeShape] = []
    for res, max_len in (
        (ResourceType.BRAM, 6),
        (ResourceType.DSP, 4),
        (ResourceType.URAM, 3),
    ):
        ids = list(macro_ids[res])
        rng.shuffle(ids)
        budget = int(round(spec.cascade_fraction * len(ids)))
        cursor = 0
        while cursor + 2 <= budget:
            length = int(rng.integers(2, max_len + 1))
            length = min(length, budget - cursor)
            if length < 2:
                break
            chain = tuple(int(i) for i in ids[cursor : cursor + length])
            cascades.append(CascadeShape(chain))
            # Cascaded macros are also tightly connected.
            for a, b in zip(chain[:-1], chain[1:]):
                nets.append(Net((a, b)))
            cursor += length

    # -- region constraints -----------------------------------------------------------
    regions: list[RegionConstraint] = []
    cascaded = {i for c in cascades for i in c.instances}
    already_fenced: set[int] = set()

    def _sites_in_rect(site_type, xlo: float, xhi: float, ylo: float, yhi: float) -> int:
        cols = device.columns_of_type(site_type)
        cols_in = int(((cols >= xlo) & (cols < xhi)).sum())
        rows_in = max(0, int(np.floor(yhi)) - int(np.ceil(ylo)))
        return cols_in * rows_in

    for r in range(spec.region_count):
        w = rng.uniform(0.30, 0.50) * device.width
        h = rng.uniform(0.30, 0.50) * device.height
        xlo = rng.uniform(0, device.width - w)
        ylo = rng.uniform(0, device.height - h)
        xhi, yhi = xlo + w, ylo + h
        # Assign modules and (non-cascaded) macros only up to ~60% of the
        # region's actual site capacity so every region stays legalizable.
        assigned: set[int] = set()
        clb_budget = int(0.6 * _sites_in_rect(SiteType.CLB, xlo, xhi, ylo, yhi))
        taken = 0
        for _ in range(4):
            module = modules[int(rng.integers(num_modules))]
            fresh = [int(i) for i in module if int(i) not in already_fenced]
            if taken + len(fresh) > clb_budget:
                continue
            assigned.update(fresh)
            taken += len(fresh)
        for res in (ResourceType.DSP, ResourceType.BRAM):
            site_budget = int(
                0.5 * _sites_in_rect(res.site_type, xlo, xhi, ylo, yhi)
            )
            pool = [
                int(i)
                for i in macro_ids[res]
                if int(i) not in cascaded and int(i) not in already_fenced
            ]
            take = min(site_budget, len(pool) // (2 * spec.region_count))
            if take > 0:
                assigned.update(
                    int(i) for i in rng.choice(pool, size=take, replace=False)
                )
        already_fenced.update(assigned)
        regions.append(
            RegionConstraint(xlo, ylo, xhi, yhi, frozenset(assigned))
        )

    design = Design(
        name=spec.name,
        device=device,
        instances=instances,
        nets=nets,
        cascades=cascades,
        regions=regions,
        nominal_stats={
            "LUT": spec.num_lut,
            "FF": spec.num_ff,
            "DSP": spec.num_dsp,
            "BRAM": spec.num_bram,
            "URAM": spec.num_uram,
        },
    )

    # Install fixed IO locations and a random initial placement.
    x = rng.uniform(0.3 * device.width, 0.7 * device.width, design.num_instances)
    y = rng.uniform(0.3 * device.height, 0.7 * device.height, design.num_instances)
    for i, (ix, iy) in enumerate(io_positions):
        x[io_start + i] = ix
        y[io_start + i] = iy
    design.set_placement(x, y)
    return design


def mlcad2023_suite(
    names: tuple[str, ...] = TABLE1_DESIGNS,
    scale: float = 1.0 / 64.0,
    device: FPGADevice | None = None,
) -> list[Design]:
    """Generate the requested contest designs at a common scale/device."""
    if device is None:
        device = xcvu3p_like(scale)
    return [
        generate_design(MLCAD2023_SPECS[name], scale=scale, device=device)
        for name in names
    ]
