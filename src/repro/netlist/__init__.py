"""Netlist containers and the synthetic MLCAD-2023-like benchmark suite."""

from .design import Design, Instance, Net
from .generator import (
    MLCAD2023_SPECS,
    TABLE1_DESIGNS,
    TABLE2_DESIGNS,
    DesignSpec,
    generate_design,
    mlcad2023_suite,
)
from .clustering import cluster_cells, expand_placement
from .io import load_design, save_design
from .stats import design_row, format_stats_table

__all__ = [
    "Design",
    "Instance",
    "Net",
    "DesignSpec",
    "MLCAD2023_SPECS",
    "TABLE1_DESIGNS",
    "TABLE2_DESIGNS",
    "generate_design",
    "mlcad2023_suite",
    "design_row",
    "format_stats_table",
    "save_design",
    "load_design",
    "cluster_cells",
    "expand_placement",
]
