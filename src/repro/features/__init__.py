"""Grid-based placement feature extraction (Section III-B)."""

from .grids import FEATURE_NAMES, FeatureExtractor, extract_features, resize_map

__all__ = ["FEATURE_NAMES", "FeatureExtractor", "extract_features", "resize_map"]
