"""Grid-based input features (Section III-B).

Six maps are extracted from a placement, each on a ``grid × grid`` bin
grid over the device:

* **Macro map** — fraction of each grid cell occupied by macros.
* **Horizontal / vertical net density** — per-bin expected horizontal /
  vertical routing demand: every net spreads ``1/h_bins`` (horizontal)
  and ``1/w_bins`` (vertical) demand uniformly over its bounding box.
* **RUDY** — the classic Rectangular Uniform wire DensitY [3]: the
  superposition of horizontal and vertical net density.
* **Pin RUDY** — per-bin pin density of all nets: each net spreads its
  pin count uniformly over its bounding box.
* **Cell density** — LUT-demand per bin, normalized by bin CLB capacity.

All rectangle accumulations use the 2-D difference-array trick (corner
updates + cumulative sums) so extraction is O(#nets + grid²).

Maps are normalized by physically meaningful constants (routing/site
capacity per bin) so values are comparable across designs — the paper
trains one model over ten designs, which requires exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch import ResourceType, SiteType
from ..netlist import Design

__all__ = [
    "FEATURE_NAMES",
    "FeatureExtractor",
    "extract_features",
    "resize_map",
]

FEATURE_NAMES = (
    "macro_map",
    "h_net_density",
    "v_net_density",
    "rudy",
    "pin_rudy",
    "cell_density",
)


def _scatter_add(grid: int, x: np.ndarray, y: np.ndarray, values) -> np.ndarray:
    """Vectorized add-scatter onto a ``grid × grid`` map, float32 output.

    ``np.bincount`` over flattened bin indices replaces ``np.add.at``:
    the buffered one-pass accumulation is several times faster than the
    unbuffered per-element ``ufunc.at`` path (REPRO312; measured in
    repro.perf.validate).  bincount accumulates in float64 — welcome
    extra headroom — and the result is narrowed once at the end.
    """
    flat = np.bincount(x * grid + y, weights=values, minlength=grid * grid)
    # ``weights=None`` counts occurrences (ints); both paths narrow here.
    return flat.reshape(grid, grid).astype(np.float32)


def _rect_accumulate(
    grid: int,
    x0: np.ndarray,
    x1: np.ndarray,
    y0: np.ndarray,
    y1: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """Add ``values[k]`` to every bin of rectangle ``[x0..x1] × [y0..y1]``."""
    size = grid + 1
    corners_x = np.concatenate([x0, x1 + 1, x0, x1 + 1])
    corners_y = np.concatenate([y0, y0, y1 + 1, y1 + 1])
    signed = np.concatenate([values, -values, -values, values])
    # bincount accumulates in float64 — the headroom keeps the cumsum
    # cancellation exact; only the returned map narrows to float32.
    flat = np.bincount(
        corners_x * size + corners_y, weights=signed, minlength=size * size
    )
    diff = flat.reshape(size, size)
    out = diff.cumsum(axis=0).cumsum(axis=1)[:grid, :grid]
    # Cumulative-sum cancellation can leave ~1e-16 negatives; clamp them.
    return np.maximum(out, 0.0).astype(np.float32)


def resize_map(data: np.ndarray, out_w: int, out_h: int) -> np.ndarray:
    """Bilinear resize of a 2-D map (used to match the model's H×W)."""
    in_w, in_h = data.shape
    if (in_w, in_h) == (out_w, out_h):
        return data.copy()
    # Interpolation weights follow the map's dtype: float64 weights on a
    # float32 map would silently widen every product below (REPRO301).
    dt = data.dtype if data.dtype.kind == "f" else np.dtype(np.float32)
    x = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
    y = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
    x = np.clip(x, 0, in_w - 1)
    y = np.clip(y, 0, in_h - 1)
    x0 = np.clip(x.astype(np.int64), 0, in_w - 2) if in_w > 1 else np.zeros(out_w, np.int64)
    y0 = np.clip(y.astype(np.int64), 0, in_h - 2) if in_h > 1 else np.zeros(out_h, np.int64)
    fx = (x - x0).astype(dt) if in_w > 1 else np.zeros(out_w, dtype=dt)
    fy = (y - y0).astype(dt) if in_h > 1 else np.zeros(out_h, dtype=dt)
    x1 = np.minimum(x0 + 1, in_w - 1)
    y1 = np.minimum(y0 + 1, in_h - 1)
    a = data[np.ix_(x0, y0)] * (1 - fx)[:, None] * (1 - fy)[None, :]
    b = data[np.ix_(x1, y0)] * fx[:, None] * (1 - fy)[None, :]
    c = data[np.ix_(x0, y1)] * (1 - fx)[:, None] * fy[None, :]
    d = data[np.ix_(x1, y1)] * fx[:, None] * fy[None, :]
    return a + b + c + d


@dataclass
class FeatureExtractor:
    """Extracts the six Section III-B feature maps from a placement.

    Parameters
    ----------
    grid:
        Bin-grid resolution (the paper resizes everything to 256×256;
        benches default to the interconnect tile grid size).
    """

    grid: int = 64

    def __call__(
        self, design: Design, x: np.ndarray | None = None, y: np.ndarray | None = None
    ) -> np.ndarray:
        """Return a ``(6, grid, grid)`` feature stack for the placement."""
        if x is None:
            x = design.x
        if y is None:
            y = design.y
        g = self.grid
        device = design.device
        bx = np.clip((x / device.width * g).astype(np.int64), 0, g - 1)
        by = np.clip((y / device.height * g).astype(np.int64), 0, g - 1)

        # -- macro map -----------------------------------------------------
        macros = design.macro_indices()
        macro_map = _scatter_add(g, bx[macros], by[macros], None)
        sites_per_bin = (device.num_cols / g) * (device.num_rows / g)
        macro_map = np.minimum(macro_map / max(sites_per_bin, 1.0), 1.0)

        # -- net bounding boxes ------------------------------------------------
        px = bx[design.pin_inst]
        py = by[design.pin_inst]
        num = design.num_nets
        nx0 = np.full(num, g, dtype=np.int64)
        nx1 = np.full(num, -1, dtype=np.int64)
        ny0 = np.full(num, g, dtype=np.int64)
        ny1 = np.full(num, -1, dtype=np.int64)
        np.minimum.at(nx0, design.pin_net, px)
        np.maximum.at(nx1, design.pin_net, px)
        np.minimum.at(ny0, design.pin_net, py)
        np.maximum.at(ny1, design.pin_net, py)
        w_bins = (nx1 - nx0 + 1).astype(np.float32)
        h_bins = (ny1 - ny0 + 1).astype(np.float32)

        # Horizontal demand: each net needs ~1 horizontal track across its
        # box height; spread uniformly -> 1/h per bin (and v: 1/w).
        h_density = _rect_accumulate(g, nx0, nx1, ny0, ny1, 1.0 / h_bins)
        v_density = _rect_accumulate(g, nx0, nx1, ny0, ny1, 1.0 / w_bins)
        rudy = h_density + v_density

        # -- pin RUDY ---------------------------------------------------------
        pins_per_net = design.net_degrees.astype(np.float32)
        pin_rudy = _rect_accumulate(
            g, nx0, nx1, ny0, ny1, pins_per_net / (w_bins * h_bins)
        )

        # -- cell density -------------------------------------------------------
        lut_col = list(ResourceType).index(ResourceType.LUT)
        lut_demand = design.demand_matrix[:, lut_col]
        cell_density = _scatter_add(g, bx, by, lut_demand)
        clb_cols = device.columns_of_type(SiteType.CLB).size
        lut_capacity_per_bin = (
            device.resource_capacity(ResourceType.LUT) / (g * g)
            if clb_cols
            else 1.0
        )
        cell_density = cell_density / max(lut_capacity_per_bin, 1e-9)

        # -- normalization of routing-demand maps ----------------------------------
        # One short wire per tile boundary is the natural demand unit; the
        # per-bin track budget normalizes H/V density and RUDY.
        tiles_per_bin = max(
            (device.tile_cols / g) * (device.tile_rows / g), 1e-9
        )
        track_budget = device.short_capacity * tiles_per_bin
        h_density = h_density / track_budget
        v_density = v_density / track_budget
        rudy = rudy / (2.0 * track_budget)
        pin_rudy = pin_rudy / (4.0 * track_budget)

        return np.stack(
            [macro_map, h_density, v_density, rudy, pin_rudy, cell_density]
        )

    def resized(
        self,
        design: Design,
        out: int,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
    ) -> np.ndarray:
        """Features resized to ``(6, out, out)`` (paper: 256×256)."""
        stack = self(design, x, y)
        return np.stack([resize_map(m, out, out) for m in stack])


def extract_features(
    design: Design,
    grid: int = 64,
    x: np.ndarray | None = None,
    y: np.ndarray | None = None,
) -> np.ndarray:
    """Convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(grid=grid)(design, x, y)
