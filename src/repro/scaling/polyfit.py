"""Exact polynomial fitting over integer cost sequences.

Traced costs (FLOPs, bytes, tape entries) are *polynomials in the grid
side by construction*: every shape in the graph is an affine function
of the grid, and costs are products of shape extents.  That licenses a
much stronger fit than least squares — exact Lagrange/Newton
interpolation over ``fractions.Fraction``, with *verification points*:
a degree-``d`` claim is only certified when the interpolant through
``d + 1`` sample points exactly reproduces at least one sample it was
not built from.  Residuals are not "small"; they are zero, or the fit
is rejected.

Peak memory is the one exception: it is a *max* of polynomials, so the
argmax buffer can change within a regime.  :func:`fit_suffix` handles
it by fitting the asymptotic branch — the longest suffix of the sample
ladder on which a single polynomial is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

__all__ = ["Poly", "interpolate", "fit_minimal", "fit_suffix"]


@dataclass(frozen=True)
class Poly:
    """A polynomial with exact rational coefficients, ascending order."""

    coeffs: tuple[Fraction, ...]

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def leading(self) -> Fraction:
        return self.coeffs[-1]

    def __call__(self, x) -> Fraction:
        acc = Fraction(0)
        for c in reversed(self.coeffs):
            acc = acc * x + c
        return acc

    def __add__(self, other: "Poly") -> "Poly":
        n = max(len(self.coeffs), len(other.coeffs))
        a = list(self.coeffs) + [Fraction(0)] * (n - len(self.coeffs))
        b = list(other.coeffs) + [Fraction(0)] * (n - len(other.coeffs))
        return _strip(tuple(x + y for x, y in zip(a, b)))

    def to_json(self) -> dict:
        return {
            "degree": self.degree,
            "leading": str(self.leading),
            "coeffs": [str(c) for c in self.coeffs],
        }


ZERO = Poly((Fraction(0),))


def _strip(coeffs: tuple[Fraction, ...]) -> Poly:
    n = len(coeffs)
    while n > 1 and coeffs[n - 1] == 0:
        n -= 1
    return Poly(coeffs[:n])


def interpolate(points: list[tuple[int, int]]) -> Poly:
    """Exact Newton interpolation through all ``points`` (distinct x)."""
    xs = [Fraction(x) for x, _ in points]
    coef = [Fraction(y) for _, y in points]
    n = len(points)
    for j in range(1, n):
        for i in range(n - 1, j - 1, -1):
            coef[i] = (coef[i] - coef[i - 1]) / (xs[i] - xs[i - j])
    # Expand the Newton form into the power basis.
    poly = [coef[n - 1]]
    for k in range(n - 2, -1, -1):
        shifted = [Fraction(0)] * (len(poly) + 1)
        for i, c in enumerate(poly):
            shifted[i + 1] += c
            shifted[i] -= c * xs[k]
        shifted[0] += coef[k]
        poly = shifted
    return _strip(tuple(poly))


def fit_minimal(
    xs: list[int],
    ys: list[int],
    *,
    min_verify: int = 1,
    max_degree: int | None = None,
) -> Poly | None:
    """Minimal-degree polynomial through a prefix, exact on the rest.

    Tries degree 0, 1, ... — each candidate interpolates the first
    ``d + 1`` samples and must exactly reproduce every remaining one.
    At least ``min_verify`` samples must remain beyond the interpolation
    set, so a fit is never a vacuous pass-through of all points.
    Returns ``None`` when no degree within the cap generalizes.
    """
    n = len(xs)
    cap = n - 1 - min_verify
    if max_degree is not None:
        cap = min(cap, max_degree)
    for d in range(cap + 1):
        poly = interpolate(list(zip(xs[: d + 1], ys[: d + 1])))
        if all(poly(x) == y for x, y in zip(xs[d + 1 :], ys[d + 1 :])):
            return poly
    return None


def fit_suffix(
    xs: list[int],
    ys: list[int],
    *,
    min_verify: int = 1,
    max_degree: int | None = None,
) -> tuple[Poly, int] | None:
    """Fit the longest exactly-polynomial suffix of ``(xs, ys)``.

    Samples must be in ascending x order.  Returns ``(poly, start)``
    where ``xs[start:]`` is the widest suffix admitting an exact
    minimal-degree fit (with verification); used for max-of-polynomial
    envelopes whose argmax stabilizes at large sizes.
    """
    n = len(xs)
    for start in range(0, n - 1 - min_verify):
        poly = fit_minimal(
            xs[start:], ys[start:], min_verify=min_verify, max_degree=max_degree
        )
        if poly is not None:
            return poly, start
    return None
