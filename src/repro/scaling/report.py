"""Scalecheck driver and sealed report (``repro.scaling/v1``).

``scalecheck`` runs the two analysis families — parametric cost
envelopes over the traced models (:mod:`.envelopes`) and the loop-nest
complexity lint over the untraced flow code (:mod:`.nests`) — and
bundles their findings in the shared diagnostic format.  The bundle is
*sealed*: its ``fingerprint`` is the hash of the deterministic slice
(exponents, exact rational leading coefficients, flow orders — never
paths, timings or measured bytes), so two runs over the same source
produce byte-identical certified claims or the seal visibly changes.

``check_scaling_baseline`` diffs that same slice against
``benchmarks/scaling_baseline.json`` through :mod:`repro.baselines`:
an exponent drifting from ``G^2`` to ``G^3`` anywhere in a model is a
one-line CI failure, not a silent slowdown.
"""

from __future__ import annotations

import hashlib
import json

from repro.baselines import diff_counts, diff_entries
from repro.diagnostics import is_blocking

from .envelopes import DEFAULT_LADDER, scale_model
from .nests import audit_nests

__all__ = [
    "SCHEMA",
    "MODEL_NAMES",
    "scalecheck",
    "baseline_from_scaling",
    "check_scaling_baseline",
]

SCHEMA = "repro.scaling/v1"

#: Registry models, in certification order (kept in sync with
#: repro.models.MODEL_NAMES by a test, not an import, so the lint half
#: of scalecheck works without the model stack importable).
MODEL_NAMES = ("unet", "pgnn", "pros2", "ours")


def scalecheck(
    target: str = "all",
    *,
    preset: str = "fast",
    batch: int = 1,
    seed: int = 0,
    ladder: tuple[int, ...] = DEFAULT_LADDER,
    cache_dir: str | None = None,
    measure: bool = True,
    root: str | None = None,
    package: str = "repro",
) -> dict:
    """Certify scaling for ``target``: a model name, ``flow`` or ``all``."""
    models = {}
    flow = None
    if target == "all":
        names, do_flow = MODEL_NAMES, True
    elif target == "flow":
        names, do_flow = (), True
    else:
        names, do_flow = (target,), False

    findings: list[dict] = []
    for name in names:
        report = scale_model(
            name, preset=preset, batch=batch, seed=seed, ladder=ladder,
            cache_dir=cache_dir, measure=measure,
        )
        models[name] = report
        findings.extend(report["findings"])
    if do_flow:
        flow_findings, flow_summary = audit_nests(root, package)
        flow = {"findings": flow_findings, "summary": flow_summary}
        findings.extend(flow_findings)

    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f["code"]] = by_code.get(f["code"], 0) + 1

    bundle = {
        "schema": SCHEMA,
        "target": target,
        "preset": preset,
        "batch": batch,
        "ladder": list(ladder),
        "models": models,
        "flow": flow,
        "by_code": dict(sorted(by_code.items())),
        "findings": findings,
        "failures": [f["message"] for f in findings if f["blocking"]],
    }
    bundle["fingerprint"] = _fingerprint(bundle)
    return bundle


def _fingerprint(bundle: dict) -> str:
    """Seal over the deterministic slice only (no paths, no timings)."""
    slice_ = baseline_from_scaling(bundle)
    return hashlib.sha256(
        json.dumps(slice_, sort_keys=True).encode()
    ).hexdigest()


def _envelope_entries(bundle: dict) -> list[dict]:
    entries: list[dict] = []
    for name in sorted(bundle["models"]):
        report = bundle["models"][name]
        for regime in report["regimes"]:
            span = f"{regime['lo']}-{regime['hi']}"
            base = {"model": name, "preset": report["preset"]}

            def entry(stage: str, doc: dict, fields=("flops", "bytes")):
                row = dict(base, regime=span, stage=stage)
                for f in fields:
                    row[f"{f}_degree"] = doc[f]["degree"]
                    row[f"{f}_leading"] = doc[f]["leading"]
                return row

            for stage in sorted(regime["stages"]):
                entries.append(entry(stage, regime["stages"][stage]))
            entries.append(entry("(total)", regime["total"]))
            for label in sorted(regime["memory"]):
                doc = regime["memory"][label]
                row = dict(base, regime=span, stage=f"(memory:{label})")
                row["degree"] = doc["degree"]
                row["leading"] = doc["leading"]
                if "valid_from" in doc:
                    row["valid_from"] = doc["valid_from"]
                entries.append(row)
    return entries


def baseline_from_scaling(bundle: dict) -> dict:
    """Reduce a scalecheck bundle to its deterministic, path-free slice.

    Certified exponents and exact leading coefficients per
    model/regime/stage, flow-lint orders and per-code counts — nothing
    host- or checkout-dependent.
    """
    doc: dict = {"schema": SCHEMA, "entries": _envelope_entries(bundle)}
    if bundle.get("flow") is not None:
        summary = bundle["flow"]["summary"]
        flow_codes: dict[str, int] = {}
        for f in bundle["flow"]["findings"]:
            flow_codes[f["code"]] = flow_codes.get(f["code"], 0) + 1
        doc["flow"] = {
            "budgets": dict(summary["budgets"]),
            "max_order": dict(summary["max_order"]),
            "by_code": dict(sorted(flow_codes.items())),
        }
    doc["by_code"] = dict(bundle["by_code"])
    return doc


def check_scaling_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Diff the deterministic slice against a pinned baseline."""
    reduced = baseline_from_scaling(bundle)
    problems = diff_entries(
        baseline.get("entries", []),
        reduced["entries"],
        key=("model", "preset", "regime", "stage"),
        verb="certified",
    )
    want_flow = baseline.get("flow")
    got_flow = reduced.get("flow")
    if want_flow is not None and got_flow is None:
        problems.append("flow lint in baseline but not run (target was a model)")
    elif want_flow is not None:
        problems += diff_counts(
            want_flow.get("max_order", {}),
            got_flow["max_order"],
            label="flow module '{key}' max nest order changed",
        )
        problems += diff_counts(
            want_flow.get("by_code", {}),
            got_flow["by_code"],
            label="flow {key} count changed",
        )
    problems += diff_counts(
        baseline.get("by_code", {}),
        reduced["by_code"],
        label="{key} count changed",
    )
    return problems


def has_blocking(bundle: dict) -> bool:
    return any(
        is_blocking(f["code"]) for f in bundle["findings"]
    )
