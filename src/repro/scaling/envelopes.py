"""Parametric cost envelopes: certified scaling laws per model.

Traces every registry model at a ladder of grids — forward via
:func:`repro.ir.trace.trace_model`, the full training step (forward +
cross-entropy loss + backward tape) via :func:`trace_tape` — and fits
each node's, stage's and the model's FLOP/byte counts to exact
polynomials in the grid side ``G`` (grid *area* is ``G**2``, so an
area-linear op certifies at degree 2).

Structure is not assumed constant across the ladder: models that pool
their attention tokens adaptively change graph structure at size
thresholds, making every cost *piecewise* polynomial.  The sampler
partitions the ladder into **regimes** of identical graph structure,
refines the boundaries by bisection, and densifies each regime with
extra step-aligned grids until fits have verification points.  Costs
must then fit exactly per regime (REPRO707, blocking) and a grid that
breaks structural stability strictly inside a regime is REPRO708.

Budgets: a node's certified exponent in ``G`` must not exceed its
op-kind budget — 2 (one grid area) for elementwise/reduction/conv
lowering, 4 for contractions and anything inside an attention module,
whose token count is itself an area (REPRO701; stage/model totals:
REPRO702).  Peak memory is a max of polynomials, so its envelope is
fitted on the asymptotic branch of each regime and cross-checked
against the planner at the held-out grid within 10% (REPRO703), and
against one tracemalloc-measured training step (REPRO709), reusing the
warm-up + ``gc.collect`` discipline of ``repro.perf.validate``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from fractions import Fraction

from ..diagnostics import is_blocking
from ..ir.cost import _stage_of
from .polyfit import Poly, fit_minimal, fit_suffix

__all__ = [
    "DEFAULT_LADDER",
    "MEASURED_GRID",
    "GRID_STEP",
    "LadderSampler",
    "Regime",
    "scale_model",
    "measure_training_step",
]

DEFAULT_LADDER = (64, 96, 128, 192, 256, 384, 512)
#: Grid every sampled size must be a multiple of ("ours" requires % 16).
GRID_STEP = 16
#: Smallest grid the sampler will probe when extending the lowest regime.
MIN_GRID = 16
#: Grids per regime the sampler aims for before fitting.
TARGET_POINTS = 8
#: Ladder grid excluded from every fit; the measured cross-check point.
MEASURED_GRID = 96
#: Relative tolerance for the held-out peak-memory checks (703/709).
MEM_REL_TOL = 0.10
#: Highest exponent in G any fit may certify.
MAX_DEGREE = 6

#: Ops whose output is a contraction over an area-sized axis: one extra
#: area factor is expected (attention scores, im2col GEMMs).
_CONTRACTION_OPS = frozenset({"matmul", "einsum", "bmm"})
#: Module scopes whose token count is an area: everything inside them
#: (including elementwise softmax arithmetic) may be O(area^2).
_ATTENTION_SCOPE_RE = re.compile(
    r"(^|\.)(pam|cam|attn|attention|mha|self_attention)\d*(\.|$)"
)
_STAGE_BUDGET_CAP = 4


def node_budget(op: str, scope: str) -> int:
    """Max certified exponent in G allowed for a node of this kind."""
    if op in _CONTRACTION_OPS or _ATTENTION_SCOPE_RE.search(scope):
        return 4
    return 2


def _source_fingerprint() -> str:
    """Hash of the packages whose code determines traced costs."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for pkg in ("models", "nn", "ir", "adjoint"):
        pkg_dir = os.path.join(root, pkg)
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_dir)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
    return digest.hexdigest()


@dataclass(frozen=True)
class GridSample:
    """All grid-dependent costs of one model at one grid size."""

    grid: int
    signature: str
    nodes: tuple[tuple[str, str, str], ...]  # (op, kind, scope) per op node
    flops: tuple[int, ...]
    bytes_: tuple[int, ...]
    fwd_peak: int
    train_peak: int
    grad_bytes_total: int
    tape_entries: int


class LadderSampler:
    """Traces one model across grids, with optional on-disk caching.

    Tracing is symbolic (no payload data), so a sample costs the same
    at grid 512 as at 64; the cache exists so CI can key a whole
    ladder sweep on the source fingerprint of the traced packages.
    """

    def __init__(
        self,
        model: str,
        *,
        preset: str = "fast",
        batch: int = 1,
        seed: int = 0,
        cache_dir: str | None = None,
    ) -> None:
        self.model = model
        self.preset = preset
        self.batch = batch
        self.seed = seed
        self.cache_dir = cache_dir
        self._samples: dict[int, GridSample] = {}
        self._fingerprint = _source_fingerprint() if cache_dir else ""

    def _cache_path(self, grid: int) -> str:
        key = hashlib.sha256(
            json.dumps(
                [self.model, self.preset, self.batch, self.seed, grid,
                 self._fingerprint]
            ).encode()
        ).hexdigest()[:32]
        return os.path.join(self.cache_dir, f"trace-{key}.json")

    def sample(self, grid: int) -> GridSample:
        if grid in self._samples:
            return self._samples[grid]
        if self.cache_dir:
            path = self._cache_path(grid)
            if os.path.exists(path):
                with open(path) as fh:
                    doc = json.load(fh)
                sample = GridSample(
                    grid=doc["grid"],
                    signature=doc["signature"],
                    nodes=tuple(tuple(n) for n in doc["nodes"]),
                    flops=tuple(doc["flops"]),
                    bytes_=tuple(doc["bytes"]),
                    fwd_peak=doc["fwd_peak"],
                    train_peak=doc["train_peak"],
                    grad_bytes_total=doc["grad_bytes_total"],
                    tape_entries=doc["tape_entries"],
                )
                self._samples[grid] = sample
                return sample
        sample = self._trace(grid)
        self._samples[grid] = sample
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)
            doc = {
                "grid": sample.grid,
                "signature": sample.signature,
                "nodes": [list(n) for n in sample.nodes],
                "flops": list(sample.flops),
                "bytes": list(sample.bytes_),
                "fwd_peak": sample.fwd_peak,
                "train_peak": sample.train_peak,
                "grad_bytes_total": sample.grad_bytes_total,
                "tape_entries": sample.tape_entries,
            }
            path = self._cache_path(grid)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(doc, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        return sample

    def _trace(self, grid: int) -> GridSample:
        from ..adjoint.memory import plan_training_memory
        from ..ir.memory import plan_memory
        from ..ir.trace import trace_model, trace_tape

        graph = trace_model(
            self.model, preset=self.preset, grid=grid, batch=self.batch,
            seed=self.seed,
        )
        op_nodes = [n for n in graph if n.kind == "op"]
        nodes = tuple((n.op, n.kind, n.scope) for n in op_nodes)
        signature = hashlib.sha256(
            repr([(n.op, n.kind, n.scope) for n in graph]).encode()
        ).hexdigest()
        fwd_peak = plan_memory(graph)["peak_bytes"]

        step, _ = build_training_step(
            self.model, preset=self.preset, grid=grid, batch=self.batch,
            seed=self.seed, num_classes=_num_classes(graph),
        )
        tgraph, tape = trace_tape(
            step, (self.batch, 6, grid, grid), input_vrange=(0.0, 1.0),
            name=f"{self.model}-step",
        )
        train = plan_training_memory(tgraph, tape)
        sample = GridSample(
            grid=grid,
            signature=signature,
            nodes=nodes,
            flops=tuple(n.flops for n in op_nodes),
            bytes_=tuple(n.bytes for n in op_nodes),
            fwd_peak=fwd_peak,
            train_peak=train["train_peak_bytes"],
            grad_bytes_total=train["grad_bytes_total"],
            tape_entries=train["tape_entries"],
        )
        return sample


def _num_classes(graph) -> int:
    out = graph[graph.outputs[0]]
    return int(out.shape[1])


def build_training_step(
    model_name: str,
    *,
    preset: str,
    grid: int,
    batch: int,
    seed: int,
    num_classes: int,
):
    """The traceable forward+loss module used for training envelopes.

    Mirrors the planner-vs-measured harness of ``tests/adjoint``: the
    envelope and the tracemalloc measurement must describe the same
    computation or the 10% cross-check is meaningless.
    """
    import numpy as np

    from ..models import build_model
    from ..nn.loss import CrossEntropyLoss2d
    from ..nn.module import Module

    class TrainStep(Module):
        def __init__(self, model, targets):
            super().__init__()
            self.model = model
            self.loss = CrossEntropyLoss2d(num_classes)
            self.targets = targets

        def forward(self, x):
            return self.loss(self.model(x), self.targets)

    model = build_model(model_name, preset=preset, grid=grid, seed=seed)
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, num_classes, size=(batch, grid, grid))
    return TrainStep(model, targets), model


@dataclass
class Regime:
    """A maximal grid interval with one graph structure."""

    lo: int
    hi: int
    grids: list[int]
    held_out: int = 0
    fit_grids: list[int] = field(default_factory=list)

    def finalize(self) -> None:
        self.grids.sort()
        self.lo, self.hi = self.grids[0], self.grids[-1]
        self.held_out = self.grids[-1]
        self.fit_grids = [
            g for g in self.grids if g not in (self.held_out, MEASURED_GRID)
        ]


def _densify_candidates(have: list[int], lo: int, hi: int) -> list[int]:
    """Step-aligned grids inside [lo, hi] by descending isolation.

    Deterministic farthest-point ordering: each pick maximizes the
    distance to the nearest already-chosen grid (ties to the smaller
    grid), so two runs sample identical ladders byte for byte.
    """
    pool = [
        g
        for g in range(-(-lo // GRID_STEP) * GRID_STEP, hi + 1, GRID_STEP)
        if g not in have
    ]
    chosen: list[int] = []
    anchors = sorted(have)
    while pool:
        best = max(
            pool,
            key=lambda g: (min(abs(g - a) for a in anchors + chosen), -g),
        )
        chosen.append(best)
        pool.remove(best)
    return chosen


def build_regimes(
    sampler: LadderSampler, ladder: tuple[int, ...]
) -> tuple[list[Regime], list[dict]]:
    """Partition the ladder into structural regimes; REPRO708 findings."""
    findings: list[dict] = []
    ladder = tuple(sorted(set(ladder)))
    samples = {g: sampler.sample(g) for g in ladder}
    regimes: list[Regime] = []
    for g in ladder:
        if regimes and samples[g].signature == sampler.sample(
            regimes[-1].grids[-1]
        ).signature:
            regimes[-1].grids.append(g)
            regimes[-1].hi = g
        else:
            regimes.append(Regime(lo=g, hi=g, grids=[g]))

    def sig_of(regime: Regime) -> str:
        return sampler.sample(regime.grids[0]).signature

    # Refine each boundary by bisection over step-aligned grids so a
    # regime's span (and with it the envelope's validity interval) is
    # maximal before densification.
    for left, right in zip(regimes, regimes[1:]):
        lo, hi = left.hi, right.lo
        while hi - lo > GRID_STEP:
            mid = ((lo + hi) // 2) // GRID_STEP * GRID_STEP
            if mid <= lo or mid >= hi:
                break
            sig = sampler.sample(mid).signature
            if sig == sig_of(left):
                left.grids.append(mid)
                left.hi = mid
                lo = mid
            elif sig == sig_of(right):
                right.grids.append(mid)
                right.lo = mid
                hi = mid
            else:
                findings.append(
                    _structure_finding(
                        sampler, mid, lo, hi,
                        "matches neither neighbouring regime",
                    )
                )
                break

    # Densify: sample extra grids inside each span until fits will have
    # enough verification points; the lowest regime may extend below
    # the ladder floor (structure permitting) to reach the target.
    for idx, regime in enumerate(regimes):
        for g in _densify_candidates(regime.grids, regime.lo, regime.hi):
            if len(regime.grids) >= TARGET_POINTS:
                break
            if sampler.sample(g).signature != sig_of(regime):
                findings.append(
                    _structure_finding(
                        sampler, g, regime.lo, regime.hi,
                        "breaks structural stability inside the regime",
                    )
                )
                continue
            regime.grids.append(g)
        if idx == 0:
            g = min(regime.grids) - GRID_STEP
            while len(regime.grids) < TARGET_POINTS and g >= MIN_GRID:
                try:
                    if sampler.sample(g).signature != sig_of(regime):
                        break
                except Exception:
                    break
                regime.grids.append(g)
                g -= GRID_STEP
        regime.finalize()
    return regimes, findings


def _structure_finding(sampler, grid, lo, hi, detail) -> dict:
    return {
        "code": "REPRO708",
        "blocking": is_blocking("REPRO708"),
        "model": sampler.model,
        "grid": grid,
        "message": (
            f"{sampler.model}: graph structure at grid {grid} {detail} "
            f"[{lo}, {hi}] — costs are not piecewise polynomial over the "
            "ladder"
        ),
    }


def _poly_json(poly: Poly, field_name: str) -> dict:
    doc = poly.to_json()
    doc["field"] = field_name
    return doc


def _rel_err(got: int, want: Fraction) -> float:
    if got == 0:
        return 0.0 if want == 0 else float("inf")
    return abs(float(want) - got) / abs(got)


def scale_model(
    model: str,
    *,
    preset: str = "fast",
    batch: int = 1,
    seed: int = 0,
    ladder: tuple[int, ...] = DEFAULT_LADDER,
    cache_dir: str | None = None,
    measure: bool = True,
) -> dict:
    """Fit and certify one model's cost envelopes; returns the report."""
    sampler = LadderSampler(
        model, preset=preset, batch=batch, seed=seed, cache_dir=cache_dir
    )
    regimes, findings = build_regimes(sampler, ladder)
    regime_docs = []
    for regime in regimes:
        regime_docs.append(
            _fit_regime(sampler, regime, findings, model)
        )

    asymptotic = regime_docs[-1] if regime_docs else None
    if asymptotic is not None:
        _budget_findings(asymptotic, findings, model)
    for doc in regime_docs:
        doc.pop("_nodes", None)

    report = {
        "model": model,
        "preset": preset,
        "batch": batch,
        "ladder": list(ladder),
        "measured_grid": MEASURED_GRID,
        "regimes": regime_docs,
        "findings": findings,
    }
    if measure:
        _measured_check(sampler, regimes, regime_docs, findings, report)
    return report


def _fit_regime(sampler, regime: Regime, findings: list[dict], model) -> dict:
    xs = regime.fit_grids
    verify = [g for g in regime.grids if g not in xs]
    samples = {g: sampler.sample(g) for g in regime.grids}
    ref = samples[regime.grids[0]]
    n_nodes = len(ref.nodes)

    def fit_exact(series: dict[int, int], label: str) -> Poly | None:
        ys = [series[g] for g in xs]
        poly = fit_minimal(xs, ys, max_degree=MAX_DEGREE)
        if poly is not None and all(poly(g) == series[g] for g in verify):
            return poly
        findings.append(
            {
                "code": "REPRO707",
                "blocking": is_blocking("REPRO707"),
                "model": model,
                "regime": [regime.lo, regime.hi],
                "message": (
                    f"{model}: {label} admits no exact polynomial fit over "
                    f"grids {regime.grids} (regime [{regime.lo}, "
                    f"{regime.hi}])"
                ),
            }
        )
        return None

    stage_flops: dict[str, Poly] = {}
    stage_bytes: dict[str, Poly] = {}
    node_degrees: list[dict] = []
    for i in range(n_nodes):
        op, _, scope = ref.nodes[i]
        stage = _stage_of(scope)
        f_poly = fit_exact(
            {g: samples[g].flops[i] for g in regime.grids},
            f"node {i} ({op}, {scope}) flops",
        )
        b_poly = fit_exact(
            {g: samples[g].bytes_[i] for g in regime.grids},
            f"node {i} ({op}, {scope}) bytes",
        )
        if f_poly is None or b_poly is None:
            continue
        stage_flops[stage] = stage_flops.get(stage, _zero()) + f_poly
        stage_bytes[stage] = stage_bytes.get(stage, _zero()) + b_poly
        node_degrees.append(
            {
                "index": i,
                "op": op,
                "scope": scope,
                "stage": stage,
                "budget": node_budget(op, scope),
                "flops": f_poly,
                "bytes": b_poly,
            }
        )

    doc = {
        "lo": regime.lo,
        "hi": regime.hi,
        "grids": regime.grids,
        "held_out": regime.held_out,
        "op_nodes": n_nodes,
        "stages": {},
        "total": {},
        "memory": {},
        "_nodes": node_degrees,  # in-process only; stripped on seal
    }
    total_f = _zero()
    total_b = _zero()
    for stage in sorted(set(stage_flops) | set(stage_bytes)):
        f_poly = stage_flops.get(stage, _zero())
        b_poly = stage_bytes.get(stage, _zero())
        total_f = total_f + f_poly
        total_b = total_b + b_poly
        doc["stages"][stage] = {
            "flops": _poly_json(f_poly, "flops"),
            "bytes": _poly_json(b_poly, "bytes"),
            "budget": max(
                (n["budget"] for n in node_degrees if n["stage"] == stage),
                default=2,
            ),
        }
    doc["total"] = {
        "flops": _poly_json(total_f, "flops"),
        "bytes": _poly_json(total_b, "bytes"),
    }

    # Exact series that ride with training: tape length, gradient bytes.
    for label, attr in (
        ("tape_entries", "tape_entries"),
        ("grad_bytes_total", "grad_bytes_total"),
    ):
        poly = fit_exact(
            {g: getattr(samples[g], attr) for g in regime.grids},
            f"training {label}",
        )
        if poly is not None:
            doc["memory"][label] = _poly_json(poly, label)

    # Peak envelopes: max-of-polynomials, fitted on the asymptotic
    # branch of the regime, then cross-checked at the held-out grid.
    # The argmax buffer can shift several times inside a regime, so the
    # peak series uses every step-aligned grid in the span (each one
    # also re-checks structural stability — REPRO708), and a suffix
    # short enough to leave no internal verification point is accepted
    # as pure interpolation: the held-out grid is its verification.
    ref_sig = ref.signature
    dense: list[int] = []
    for g in range(regime.lo, regime.hi + 1, GRID_STEP):
        if g in regime.grids:
            dense.append(g)
            continue
        if sampler.sample(g).signature != ref_sig:
            findings.append(
                _structure_finding(
                    sampler, g, regime.lo, regime.hi,
                    "breaks structural stability inside the regime",
                )
            )
            continue
        dense.append(g)
    xs_peak = [g for g in dense if g != regime.held_out]
    peak_samples = {g: sampler.sample(g) for g in xs_peak}
    for label, attr in (("fwd_peak", "fwd_peak"), ("train_peak", "train_peak")):
        ys = [getattr(peak_samples[g], attr) for g in xs_peak]
        fitted = fit_suffix(
            xs_peak, ys, min_verify=0, max_degree=_STAGE_BUDGET_CAP
        )
        if fitted is None:
            findings.append(
                {
                    "code": "REPRO703",
                    "blocking": is_blocking("REPRO703"),
                    "model": model,
                    "regime": [regime.lo, regime.hi],
                    "message": (
                        f"{model}: {label} envelope admits no exact fit on "
                        f"any suffix of grids {xs_peak}"
                    ),
                }
            )
            continue
        poly, start = fitted
        held = regime.held_out
        planner = getattr(samples[held], attr)
        rel = _rel_err(planner, poly(held))
        entry = _poly_json(poly, label)
        entry["valid_from"] = xs_peak[start]
        entry["held_out"] = {
            "grid": held,
            "planner": planner,
            "envelope": str(poly(held)),
            "rel_err": rel,
        }
        doc["memory"][label] = entry
        if rel > MEM_REL_TOL:
            findings.append(
                {
                    "code": "REPRO703",
                    "blocking": is_blocking("REPRO703"),
                    "model": model,
                    "regime": [regime.lo, regime.hi],
                    "message": (
                        f"{model}: fitted {label} envelope misses the "
                        f"planner at held-out grid {held}: "
                        f"envelope {float(poly(held)):.0f} vs planner "
                        f"{planner} ({rel:.1%} > {MEM_REL_TOL:.0%})"
                    ),
                }
            )
    return doc


def _zero() -> Poly:
    return Poly((Fraction(0),))


def _budget_findings(regime_doc: dict, findings: list[dict], model) -> None:
    lo, hi = regime_doc["lo"], regime_doc["hi"]
    for node in regime_doc.get("_nodes", ()):
        degree = max(node["flops"].degree, node["bytes"].degree)
        if degree > node["budget"]:
            findings.append(
                {
                    "code": "REPRO701",
                    "blocking": is_blocking("REPRO701"),
                    "model": model,
                    "regime": [lo, hi],
                    "message": (
                        f"{model}: node {node['index']} ({node['op']} in "
                        f"{node['scope']}) certifies exponent G^{degree}, "
                        f"budget for its kind is G^{node['budget']} "
                        f"(regime [{lo}, {hi}])"
                    ),
                }
            )
    superlinear = []
    for stage, entry in regime_doc["stages"].items():
        degree = max(entry["flops"]["degree"], entry["bytes"]["degree"])
        if degree > entry["budget"]:
            findings.append(
                {
                    "code": "REPRO702",
                    "blocking": is_blocking("REPRO702"),
                    "model": model,
                    "regime": [lo, hi],
                    "message": (
                        f"{model}: stage '{stage}' certifies exponent "
                        f"G^{degree}, stage budget is "
                        f"G^{entry['budget']} (regime [{lo}, {hi}])"
                    ),
                }
            )
        if degree > 2:
            superlinear.append(
                (stage, degree, Fraction(entry["flops"]["leading"]))
            )
    total_degree = max(
        regime_doc["total"]["flops"]["degree"],
        regime_doc["total"]["bytes"]["degree"],
    )
    if total_degree > _STAGE_BUDGET_CAP:
        findings.append(
            {
                "code": "REPRO702",
                "blocking": is_blocking("REPRO702"),
                "model": model,
                "regime": [lo, hi],
                "message": (
                    f"{model}: model total certifies exponent "
                    f"G^{total_degree}, cap is G^{_STAGE_BUDGET_CAP}"
                ),
            }
        )
    if superlinear:
        superlinear.sort(key=lambda item: (-item[1], -item[2], item[0]))
        ranked = ", ".join(
            f"{stage} (G^{degree})" for stage, degree, _ in superlinear[:5]
        )
        findings.append(
            {
                "code": "REPRO710",
                "blocking": is_blocking("REPRO710"),
                "model": model,
                "regime": [lo, hi],
                "message": (
                    f"{model}: superlinear-in-area stages dominate "
                    f"asymptotic cost: {ranked}"
                ),
            }
        )


def measure_training_step(
    model: str, *, preset: str, batch: int, seed: int, grid: int
) -> int:
    """tracemalloc peak of one real training step at ``grid``.

    Same discipline as ``repro.perf.validate``: one warm-up run (numpy
    pools, einsum paths), ``gc.collect``, then a measured run.
    """
    import gc
    import tracemalloc

    import numpy as np

    from ..ir.trace import trace_model
    from ..nn.tensor import Tensor

    graph = trace_model(model, preset=preset, grid=grid, batch=batch, seed=seed)
    step, net = build_training_step(
        model, preset=preset, grid=grid, batch=batch, seed=seed,
        num_classes=_num_classes(graph),
    )
    rng = np.random.default_rng(seed + 1)
    x = Tensor(rng.random((batch, 6, grid, grid)))

    def run_step():
        for p in net.parameters():
            p.grad = None
        step(x).backward()

    run_step()
    gc.collect()
    tracemalloc.start()
    run_step()
    _, measured = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(measured)


def _measured_check(sampler, regimes, regime_docs, findings, report) -> None:
    grid = MEASURED_GRID
    doc = None
    for regime, rdoc in zip(regimes, regime_docs):
        if regime.lo <= grid <= regime.hi:
            doc = rdoc
            break
    if doc is None or "train_peak" not in doc["memory"]:
        return
    entry = doc["memory"]["train_peak"]
    if entry.get("valid_from", grid) > grid:
        return
    envelope = Fraction(0)
    for power, coeff in enumerate(entry["coeffs"]):
        envelope += Fraction(coeff) * grid**power
    measured = measure_training_step(
        sampler.model, preset=sampler.preset, batch=sampler.batch,
        seed=sampler.seed, grid=grid,
    )
    rel = _rel_err(measured, envelope)
    report["measured"] = {
        "grid": grid,
        "train_peak_measured": measured,
        "train_peak_envelope": str(envelope),
        "rel_err": rel,
        "bound": MEM_REL_TOL,
    }
    if rel > MEM_REL_TOL:
        findings.append(
            {
                "code": "REPRO709",
                "blocking": is_blocking("REPRO709"),
                "model": sampler.model,
                "grid": grid,
                "message": (
                    f"{sampler.model}: measured training-step peak at grid "
                    f"{grid} is {measured:,} bytes but the fitted envelope "
                    f"predicts {float(envelope):,.0f} ({rel:.1%} > "
                    f"{MEM_REL_TOL:.0%})"
                ),
            }
        )
