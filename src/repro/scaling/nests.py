"""AST loop-nest complexity lint over the untraced flow code.

The IR certifier covers everything that runs through the tracer; the
placement/routing/netlist/features flow is plain numpy + Python and can
go accidentally superlinear without any cost model noticing.  This
lint infers, per function, the *grid order* of its loop nests — how
many nested loops range over grid- or netlist-sized iterables — and
propagates it interprocedurally through the same call-resolution logic
``repro.concheck`` uses for its call graph, so a helper whose per-row
scan is invoked under a per-column loop is charged the full nest.

Classification is deliberately **under-approximating**: only loops
whose iterable is provably grid-sized count — a name that matches the
grid/netlist vocabulary (``rows``, ``cols``, ``nets``, ``pins``, ...),
``range()`` over such names / ``len()`` of them / ``.shape`` extents,
direct iteration over an inferred ``ndarray``, or a loop whose body
subscripts an inferred ``ndarray`` with the loop variable (the
per-element-scan signature).  Iteration-count loops
(``range(max_iters)``), ``while`` loops and unknown iterables do not
count, so a clean bill of health is a certificate over the loops the
lint *can* see, and every flagged nest is real.

Codes: REPRO704 (function's nest order exceeds its flow module's
budget), REPRO705 (per-element scan reachable from the hot placer
loop), REPRO706 (``list.pop(k)`` / ``in``-on-list inside a grid-order
loop).  ``# noqa: REPRO7xx`` on the offending line suppresses, same as
every other repro lint.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from ..concheck.callgraph import CallGraph, _FunctionScanner, build_call_graph
from ..concheck.index import FunctionInfo, PackageIndex, build_index
from ..diagnostics import is_blocking

__all__ = [
    "FLOW_PACKAGES",
    "NEST_BUDGETS",
    "HOT_ROOTS",
    "audit_nests",
    "analyze_orders",
]

#: Flow subpackages the lint certifies (everything the tracer cannot see).
FLOW_PACKAGES = ("placement", "routing", "features", "netlist")

#: Documented per-module complexity budgets: the max grid order any
#: loop nest (including through callees) may reach.  placement's
#: budget is the column x row window scan; routing allows net x
#: candidate x edge-stamp; netlist allows the net x pin x pin clique
#: expansion of the clustering affinity model.
NEST_BUDGETS = {
    "placement": 2,
    "routing": 3,
    "features": 2,
    "netlist": 3,
}

#: The hot placer loop: every gradient step of global placement runs
#: this closure, so a per-element Python scan here multiplies the whole
#: Nesterov iteration count (REPRO705).  Stored as (module, attr) pairs
#: rather than spelled "module:attr" — ``repro.concheck`` treats every
#: in-package dotted-ref string literal as a worker entry point, and
#: these are lint configuration, not job references.
HOT_ROOTS = (
    ("repro.placement.nesterov", "GlobalPlacer.step"),
    ("repro.placement.inflation", "inflate_all_fields"),
    ("repro.placement.netweight", "apply_congestion_net_weights"),
)
_HOT_QUALNAMES = tuple(f"{mod}:{attr}" for mod, attr in HOT_ROOTS)

#: Vocabulary of grid-/netlist-sized iterables.  Matched against the
#: last identifier of the iterable expression, underscore-aware.
_GRID_NAME_RE = re.compile(
    r"(?:^|_)("
    r"grid|rows?|cols?|columns?|bins?|sites?|tracks?|tiles?"
    r"|nets?|pins?|cells?|insts?|instances?|macros?|paths?|edges?"
    r"|nodes?|items|singles|offenders|waypoints|movers|cascades"
    r"|num_rows|num_cols|num_nets|num_instances"
    r")(?:$|_)",
    re.IGNORECASE,
)

_NDARRAY_FACTORIES = frozenset({
    "array", "asarray", "zeros", "ones", "full", "empty", "arange",
    "linspace", "fromiter", "nonzero", "argsort", "where", "concatenate",
    "stack", "hstack", "vstack", "cumsum", "abs", "argmin", "argmax",
    "maximum", "minimum", "clip", "sort", "unique", "copy", "hypot",
})

_LIST_FACTORIES = frozenset({"list", "sorted"})

_ORDER_CAP = 9


def _last_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class _LoopInfo:
    line: int
    depth: int  # grid-loop depth *including* this loop


@dataclass
class FnNest:
    """Everything order inference needs about one function."""

    fn: FunctionInfo
    own_depth: int = 0  # deepest intra-function grid nest
    grid_loops: list[_LoopInfo] = field(default_factory=list)
    #: per-element scans: (line, reason) — ndarray subscripted by the
    #: loop variable, or direct iteration over an inferred ndarray
    scans: list[tuple[int, str]] = field(default_factory=list)
    #: (enclosing grid depth, callee qualname, line) per resolved call
    calls: list[tuple[int, str, int]] = field(default_factory=list)
    #: REPRO706 sites: (line, message)
    list_abuse: list[tuple[int, str]] = field(default_factory=list)
    order: int = 0
    deepest_callee: str | None = None


class _CallResolver(_FunctionScanner):
    """concheck's call resolution, re-targeted to per-site queries.

    The class-hierarchy fallback is disabled: over-approximated edges
    are the safe direction for reachability but would inflate nest
    orders through methods the function never calls.
    """

    def __init__(self, index: PackageIndex, fn: FunctionInfo) -> None:
        super().__init__(CallGraph(index=index), fn)
        self.targets: list[str] = []
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                cls = self._call_class(node.value)
                if cls is not None:
                    self.var_types[node.targets[0].id] = cls

    def _add_edge(self, target_qualname: str) -> None:
        self.targets.append(target_qualname)

    def _cha(self, method_name: str) -> None:
        return

    def resolve(self, call: ast.Call) -> list[str]:
        self.targets = []
        self._resolve_call(call)
        return list(self.targets)


class _NestScanner(ast.NodeVisitor):
    """One pass over a function body, tracking grid-loop depth."""

    def __init__(self, index: PackageIndex, fn: FunctionInfo) -> None:
        self.index = index
        self.fn = fn
        self.nest = FnNest(fn=fn)
        self.resolver = _CallResolver(index, fn)
        self.depth = 0
        self.ndarrays: set[str] = set()
        self.lists: set[str] = set()
        self._infer_locals()

    # -- local type inference (flow-insensitive, assignment-driven) --

    def _is_ndarray_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.ndarrays
        if isinstance(node, ast.Call):
            name = _last_name(node.func)
            if name in _NDARRAY_FACTORIES:
                return True
            if name == "copy" and isinstance(node.func, ast.Attribute):
                return self._is_ndarray_expr(node.func.value)
            return False
        if isinstance(node, ast.Subscript):
            return self._is_ndarray_expr(node.value)
        if isinstance(node, ast.UnaryOp):
            return self._is_ndarray_expr(node.operand)
        if isinstance(node, ast.BinOp):
            return self._is_ndarray_expr(node.left) or self._is_ndarray_expr(
                node.right
            )
        return False

    def _is_list_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.lists
        if isinstance(node, ast.Call):
            name = _last_name(node.func)
            if isinstance(node.func, ast.Name) and name in _LIST_FACTORIES:
                return True
            if name == "tolist":
                return True
        return False

    def _infer_locals(self) -> None:
        args = self.fn.node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            note = arg.annotation
            text = ast.unparse(note) if note is not None else ""
            if "ndarray" in text or "NDArray" in text:
                self.ndarrays.add(arg.arg)
        for _ in range(2):  # two rounds: chase one level of aliasing
            for node in ast.walk(self.fn.node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if self._is_ndarray_expr(node.value):
                    self.ndarrays.add(target.id)
                if self._is_list_expr(node.value):
                    self.lists.add(target.id)

    # -- loop classification --

    def _name_is_grid(self, name: str | None) -> bool:
        if not name or name.isupper():
            return False  # ALL_CAPS names are module constants, not grids
        return bool(_GRID_NAME_RE.search(name))

    def _grid_sized(self, node: ast.AST) -> bool:
        """Is this expression a grid-/netlist-sized iterable?"""
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._name_is_grid(_last_name(node))
        if isinstance(node, ast.Subscript):
            # pins[i+1:], order[: k] — a slice of a grid iterable.
            return self._grid_sized(node.value)
        if isinstance(node, ast.Call):
            fname = _last_name(node.func)
            if isinstance(node.func, ast.Name):
                if fname == "range":
                    return any(self._range_arg_grid(a) for a in node.args)
                if fname in ("enumerate", "sorted", "reversed", "list",
                             "tuple", "set"):
                    return bool(node.args) and self._grid_sized(node.args[0])
                if fname == "zip":
                    return any(self._grid_sized(a) for a in node.args)
            if fname in ("items", "keys", "values") and isinstance(
                node.func, ast.Attribute
            ):
                return self._grid_sized(node.func.value)
            if fname in ("nonzero", "argsort", "flatten", "ravel") and (
                isinstance(node.func, ast.Attribute)
            ):
                return self._grid_sized(node.func.value)
        return False

    def _range_arg_grid(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._name_is_grid(_last_name(node))
        if isinstance(node, ast.Call):
            fname = _last_name(node.func)
            if fname == "len" and node.args:
                arg = node.args[0]
                return self._grid_sized(arg) or self._is_ndarray_expr(arg)
        if isinstance(node, ast.Subscript):
            # a.shape[0] — any shape extent is grid-sized in flow code.
            if (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "shape"
            ):
                return True
            return False
        if isinstance(node, ast.BinOp):
            return self._range_arg_grid(node.left) or self._range_arg_grid(
                node.right
            )
        return False

    def _loop_vars(self, target: ast.AST) -> set[str]:
        return {
            n.id for n in ast.walk(target) if isinstance(n, ast.Name)
        }

    def _body_scans_array(self, loop: ast.For) -> str | None:
        """Does the loop body subscript an ndarray with the loop var?

        Only ``range()``/``enumerate()`` loops qualify: their loop
        variables are scalar indices, so ``arr[i]`` in the body is a
        per-element scan.  Any other iterable may yield index *arrays*
        (``for members, rect in zip(...): x[members]``), where the
        same subscript is vectorized fancy indexing.
        """
        if not (
            isinstance(loop.iter, ast.Call)
            and _last_name(loop.iter.func) in ("range", "enumerate")
        ):
            return None
        names = self._loop_vars(loop.target)
        for node in ast.walk(loop):
            if not isinstance(node, ast.Subscript):
                continue
            if not self._is_ndarray_expr(node.value):
                continue
            index_names = {
                n.id
                for n in ast.walk(node.slice)
                if isinstance(n, ast.Name)
            }
            if index_names & names:
                array = _last_name(node.value) or "<array>"
                return f"subscripts ndarray '{array}' with the loop variable"
        return None

    def _classify(self, loop: ast.For | ast.comprehension) -> str | None:
        """Grid-order reason, or None when the loop does not count."""
        iterable = loop.iter
        if self._grid_sized(iterable):
            return f"iterates grid-sized '{ast.unparse(iterable)}'"
        if self._is_ndarray_expr(iterable):
            return f"iterates ndarray '{ast.unparse(iterable)}'"
        if isinstance(iterable, ast.Call):
            fname = _last_name(iterable.func)
            if fname in ("enumerate", "zip", "sorted", "reversed") and any(
                self._is_ndarray_expr(a) for a in iterable.args
            ):
                return f"iterates ndarray via {fname}()"
        return None

    # -- traversal --

    def _enter_loop(self, loop, reason: str | None, is_scan: bool):
        if reason is None:
            return 0
        self.depth += 1
        self.nest.grid_loops.append(_LoopInfo(loop.lineno, self.depth))
        self.nest.own_depth = max(self.nest.own_depth, self.depth)
        if is_scan:
            self.nest.scans.append((loop.lineno, reason))
        return 1

    def visit_For(self, node: ast.For) -> None:
        # Counting the loop and spotting a per-element scan are
        # independent facts: range(len(arr)) classifies as grid-sized,
        # and arr[i] in its body is still a scan.
        reason = self._classify(node)
        scan = self._body_scans_array(node)
        if reason is None:
            reason = scan
        is_scan = scan is not None or bool(reason and "ndarray" in reason)
        entered = self._enter_loop(node, scan or reason, is_scan)
        self._check_list_abuse(node)
        self.generic_visit(node)
        self.depth -= entered

    def visit_While(self, node: ast.While) -> None:
        # while loops are never counted (documented under-approximation)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        entered = 0
        for gen in node.generators:
            reason = self._classify(gen)
            if reason is not None:
                self.depth += 1
                entered += 1
                self.nest.grid_loops.append(_LoopInfo(node.lineno, self.depth))
                self.nest.own_depth = max(self.nest.own_depth, self.depth)
        self.generic_visit(node)
        self.depth -= entered

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        for target in self.resolver.resolve(node):
            self.nest.calls.append((self.depth, target, node.lineno))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs belong to this unit (the index does not split
        # them out) but their bodies do not run at the definition
        # point, so their loops count from depth zero, not under the
        # enclosing nest.
        saved = self.depth
        self.depth = 0
        self.generic_visit(node)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_list_abuse(self, loop: ast.For) -> None:
        if self.depth == 0 and self._classify(loop) is None:
            return
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    node.func.attr == "pop"
                    and node.args
                    and self._is_list_expr(node.func.value)
                    and not (
                        isinstance(node.args[0], ast.UnaryOp)
                        and isinstance(node.args[0].op, ast.USub)
                    )
                ):
                    self.nest.list_abuse.append(
                        (
                            node.lineno,
                            "list.pop(k) is O(n) inside a grid-order loop "
                            "— use a deque or index bookkeeping",
                        )
                    )
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                receiver = node.comparators[0]
                if self._is_list_expr(receiver):
                    self.nest.list_abuse.append(
                        (
                            node.lineno,
                            "'in' on a list is O(n) inside a grid-order "
                            "loop — use a set",
                        )
                    )

    def scan(self) -> FnNest:
        self.generic_visit(self.fn.node)
        return self.nest


def _flow_module(qualname: str, package: str) -> str | None:
    module = qualname.partition(":")[0]
    prefix = package + "."
    if not module.startswith(prefix):
        return None
    head = module[len(prefix):].split(".")[0]
    return head if head in FLOW_PACKAGES else None


def analyze_orders(index: PackageIndex) -> dict[str, FnNest]:
    """Per-function nest info + interprocedural order fixpoint."""
    nests: dict[str, FnNest] = {}
    for qualname, fn in index.functions.items():
        if _flow_module(qualname, index.package) is None:
            continue
        nests[qualname] = _NestScanner(index, fn).scan()

    for nest in nests.values():
        nest.order = nest.own_depth
    changed = True
    while changed:
        changed = False
        for nest in nests.values():
            best = nest.own_depth
            deepest = None
            for depth, callee, _line in nest.calls:
                callee_order = nests[callee].order if callee in nests else 0
                candidate = min(depth + callee_order, _ORDER_CAP)
                if candidate > best:
                    best = candidate
                    deepest = callee
            if best > nest.order:
                nest.order = best
                nest.deepest_callee = deepest
                changed = True
    return nests


def _chain_of(nests: dict[str, FnNest], qualname: str) -> list[str]:
    chain = [qualname]
    seen = {qualname}
    while True:
        nxt = nests[chain[-1]].deepest_callee
        if nxt is None or nxt in seen or nxt not in nests:
            break
        chain.append(nxt)
        seen.add(nxt)
    return chain


def _suppressed(index: PackageIndex, fn: FunctionInfo, line: int, code) -> bool:
    module = index.modules.get(fn.module)
    return bool(module and module.suppressed(line, code))


def _finding(code, fn: FunctionInfo, line: int, message: str) -> dict:
    return {
        "code": code,
        "blocking": is_blocking(code),
        "path": fn.path,
        "line": line,
        "function": fn.qualname,
        "message": message,
    }


def audit_nests(
    root: str | None = None, package: str = "repro"
) -> tuple[list[dict], dict]:
    """Run the flow-code lint; returns (findings, summary)."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    index = build_index(root, package)
    graph = build_call_graph(index)
    nests = analyze_orders(index)

    findings: list[dict] = []
    max_order: dict[str, int] = {m: 0 for m in NEST_BUDGETS}

    def _over_budget(qualname: str) -> bool:
        module = _flow_module(qualname, package)
        return nests[qualname].order > NEST_BUDGETS.get(module, 2)

    for qualname in sorted(nests):
        nest = nests[qualname]
        fn = nest.fn
        module = _flow_module(qualname, package)
        budget = NEST_BUDGETS.get(module, 2)
        max_order[module] = max(max_order.get(module, 0), nest.order)
        # Blame the root cause only: a caller whose excess order is
        # inherited from an over-budget callee stays quiet — fixing
        # the callee fixes the whole chain.
        inherited = (
            nest.deepest_callee is not None
            and nest.deepest_callee in nests
            and _over_budget(nest.deepest_callee)
        )
        if nest.order > budget and not inherited:
            # Point at the deepest loop — the level to eliminate.
            line = (
                max(nest.grid_loops, key=lambda g: g.depth).line
                if nest.grid_loops
                else fn.lineno
            )
            if not _suppressed(index, fn, line, "REPRO704"):
                chain = " -> ".join(
                    q.partition(":")[2] for q in _chain_of(nests, qualname)
                )
                findings.append(
                    _finding(
                        "REPRO704",
                        fn,
                        line,
                        f"{qualname}: grid loop nest reaches order "
                        f"{nest.order} (through {chain}), module "
                        f"'{module}' budget is {budget}",
                    )
                )
        for line, message in nest.list_abuse:
            if not _suppressed(index, fn, line, "REPRO706"):
                findings.append(
                    _finding("REPRO706", fn, line, f"{qualname}: {message}")
                )

    # REPRO705: per-element scans reachable from the hot placer loop.
    hot: set[str] = set()
    frontier = [q for q in _HOT_QUALNAMES if q in index.functions]
    hot.update(frontier)
    while frontier:
        current = frontier.pop()
        for callee in graph.edges.get(current, ()):
            if callee not in hot:
                hot.add(callee)
                frontier.append(callee)
    for qualname in sorted(hot):
        nest = nests.get(qualname)
        if nest is None:
            continue
        for line, reason in nest.scans:
            if not _suppressed(index, nest.fn, line, "REPRO705"):
                findings.append(
                    _finding(
                        "REPRO705",
                        nest.fn,
                        line,
                        f"{qualname}: per-element Python loop ({reason}) "
                        "is reachable from the hot placer loop — "
                        "vectorize it",
                    )
                )

    summary = {
        "functions": len(nests),
        "hot_functions": len([q for q in hot if q in nests]),
        "budgets": dict(NEST_BUDGETS),
        "max_order": max_order,
        "hot_roots": [q for q in _HOT_QUALNAMES if q in index.functions],
    }
    return findings, summary
