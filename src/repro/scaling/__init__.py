"""Static asymptotic-complexity & resource-envelope certifier.

The cost model (:mod:`repro.ir.cost`) prices every op *at one grid*;
this package certifies how those prices *grow*.  Two halves:

* **Parametric cost envelopes** (:mod:`.envelopes`) — trace each
  registry model at a ladder of grids, partition the ladder into
  structural regimes, and fit per-node / per-stage / per-model FLOP,
  byte and peak-memory counts to **exact** polynomials in the grid
  side over :mod:`fractions` (:mod:`.polyfit`).  Costs are polynomial
  by construction, so a residual is a bug, not noise: a non-fitting
  node is blocking (REPRO707), exponents above per-kind budgets are
  REPRO701/702, and peak envelopes are cross-checked against the
  memory planner at a held-out grid (REPRO703) and against one
  tracemalloc-measured training step (REPRO709).

* **Loop-nest complexity lint** (:mod:`.nests`) — the flow code
  (placement, routing, features, netlist) never passes through the
  tracer, so its complexity is inferred from the AST: grid-indexed
  loop-nest orders with interprocedural propagation through the
  ``repro.concheck`` call graph (REPRO704), per-element scans
  reachable from the hot placer loop (REPRO705), and O(n) list
  primitives inside grid-order loops (REPRO706).

CLI: ``repro scalecheck``; baseline:
``benchmarks/scaling_baseline.json``; docs: ``docs/SCALING.md``.
The fitted envelopes are the admission-control / tile-sizing oracle
for the serving arc in ROADMAP.md.
"""

from repro.diagnostics import codes_for

from .envelopes import (
    DEFAULT_LADDER,
    GRID_STEP,
    MEASURED_GRID,
    LadderSampler,
    Regime,
    build_regimes,
    measure_training_step,
    node_budget,
    scale_model,
)
from .nests import FLOW_PACKAGES, HOT_ROOTS, NEST_BUDGETS, analyze_orders, audit_nests
from .polyfit import Poly, fit_minimal, fit_suffix, interpolate
from .report import (
    MODEL_NAMES,
    SCHEMA,
    baseline_from_scaling,
    check_scaling_baseline,
    scalecheck,
)

#: The diagnostic band this package owns (REPRO701-710).
SCALING_RULES = codes_for("scaling")

__all__ = [
    "SCHEMA",
    "SCALING_RULES",
    "MODEL_NAMES",
    "DEFAULT_LADDER",
    "GRID_STEP",
    "MEASURED_GRID",
    "FLOW_PACKAGES",
    "HOT_ROOTS",
    "NEST_BUDGETS",
    "LadderSampler",
    "Regime",
    "build_regimes",
    "Poly",
    "interpolate",
    "fit_minimal",
    "fit_suffix",
    "node_budget",
    "scale_model",
    "measure_training_step",
    "analyze_orders",
    "audit_nests",
    "scalecheck",
    "baseline_from_scaling",
    "check_scaling_baseline",
]
