"""Training objectives.

The paper's model classifies each grid cell into one of 8 congestion
levels via a softmax head, which corresponds to per-pixel cross-entropy;
the regression baselines (PROS 2.0 style) use mean squared error.  Both
losses operate on NCHW logit/target maps and reduce to a scalar.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["CrossEntropyLoss2d", "MSELoss", "one_hot_levels"]


def one_hot_levels(levels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert an ``(N, H, W)`` integer level map to ``(N, K, H, W)`` one-hot."""
    levels = np.asarray(levels, dtype=np.int64)
    if levels.min() < 0 or levels.max() >= num_classes:
        raise ValueError(
            f"levels outside [0, {num_classes}): "
            f"[{levels.min()}, {levels.max()}]"
        )
    n, h, w = levels.shape
    out = np.zeros((n, num_classes, h, w))
    rows = np.arange(n)[:, None, None]
    hh = np.arange(h)[None, :, None]
    ww = np.arange(w)[None, None, :]
    out[rows, levels, hh, ww] = 1.0
    return out


class CrossEntropyLoss2d(Module):
    """Per-pixel cross-entropy over an ``(N, K, H, W)`` logit map.

    ``weight`` optionally rescales each class, which matters here because
    congestion maps are dominated by level-0 cells; the paper's penalty
    structure (Eq. 1) makes the rare high levels the ones that count.
    """

    def __init__(self, num_classes: int, weight: np.ndarray | None = None):
        super().__init__()
        self.num_classes = num_classes
        if weight is not None:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != (num_classes,):
                raise ValueError(
                    f"weight must have shape ({num_classes},), got {weight.shape}"
                )
        self.weight = weight

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        """``logits``: (N, K, H, W); ``targets``: integer (N, H, W) levels."""
        n, k, h, w = logits.shape
        if k != self.num_classes:
            raise ValueError(f"expected {self.num_classes} classes, got {k}")
        log_probs = F.log_softmax(logits, axis=1)
        target_onehot = one_hot_levels(targets, k)
        if self.weight is not None:
            class_w = self.weight.reshape(1, k, 1, 1)
            target_onehot = target_onehot * class_w
            # A batch whose targets all land on zero-weight classes would
            # otherwise divide by zero and poison every gradient with NaN
            # (REPRO102); such a batch carries no signal, so clamp the
            # normalizer and let the loss collapse to 0 instead.
            norm = max(float(target_onehot.sum()), np.finfo(np.float64).tiny)
        else:
            norm = n * h * w
        picked = log_probs * Tensor(target_onehot)
        return -picked.sum() * (1.0 / norm)


class MSELoss(Module):
    """Mean squared error between prediction and target maps."""

    def forward(self, pred: Tensor, target) -> Tensor:
        target = as_tensor(target)
        diff = pred - target
        return (diff * diff).mean()
