"""Multi-head self-attention (Eq. 9 of the paper).

Implements scaled dot-product attention
``Softmax(Q K^T / sqrt(d_k)) V`` with ``Q``, ``K``, ``V`` obtained from
the input sequence by linear projections, split across heads, and
recombined by an output projection — the MSA block inside each vision
transformer layer (Fig. 4).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .tensor import Tensor, no_grad

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over ``(batch, tokens, dim)`` sequences.

    Parameters
    ----------
    dim:
        Embedding dimension ``C_t`` of the token sequence.
    num_heads:
        Number of attention heads; must divide ``dim``.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        # (B, T, D) -> (B, heads, T, head_dim)
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose(
            (0, 2, 1, 3)
        )

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        if dim != self.dim:
            raise ValueError(f"expected embedding dim {self.dim}, got {dim}")
        q = self._split_heads(self.q_proj(x), batch, tokens)
        k = self._split_heads(self.k_proj(x), batch, tokens)
        v = self._split_heads(self.v_proj(x), batch, tokens)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose((0, 1, 3, 2))) * scale
        weights = F.softmax(scores, axis=-1)
        context = weights @ v  # (B, heads, T, head_dim)
        merged = context.transpose((0, 2, 1, 3)).reshape(batch, tokens, dim)
        return self.out_proj(merged)

    def attention_map(self, x: Tensor) -> np.ndarray:
        """Return the averaged (over heads) attention matrix for analysis.

        Runs under ``no_grad``: this is a read-only diagnostic, and
        recording its ops would leak a graph that no backward pass ever
        frees (caught by ``repro.lint.detect_anomaly``).
        """
        with no_grad():
            batch, tokens, _ = x.shape
            q = self._split_heads(self.q_proj(x), batch, tokens)
            k = self._split_heads(self.k_proj(x), batch, tokens)
            scale = 1.0 / np.sqrt(self.head_dim)
            scores = (q @ k.transpose((0, 1, 3, 2))) * scale
            return F.softmax(scores, axis=-1).data.mean(axis=1)
