"""Structured neural-network operations with hand-written adjoints.

These are the image-shaped primitives the paper's models need —
2-D convolution (via im2col), max pooling, nearest-neighbour
upsampling, zero padding, softmax/log-softmax and normalization — built
on :class:`repro.nn.tensor.Tensor`.  Each op installs an explicit
backward closure rather than composing scalar autograd primitives, which
keeps numpy training tractable at the grid sizes used by the benchmark
harness.

All image tensors follow the NCHW convention used throughout the paper
(Fig. 5 reports shapes as ``[channels, height, width]``).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "pad2d",
    "im2col",
    "col2im",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "upsample_nearest",
    "softmax",
    "log_softmax",
    "batch_norm",
    "layer_norm",
    "dropout",
    "global_avg_pool2d",
]


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return x
    p = int(padding)
    pads = ((0, 0),) * (x.ndim - 2) + ((p, p), (p, p))

    def backward(out: Tensor) -> None:
        index = (slice(None),) * (x.ndim - 2) + (slice(p, -p), slice(p, -p))
        x._accumulate(out.grad[index])

    return Tensor._make(np.pad(x.data, pads), (x,), backward)


def im2col(
    data: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Unfold padded NCHW data into convolution columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    # Symbolic tracing hook: as_strided does not speak the
    # __array_function__ protocol, so abstract arrays provide their own
    # shape-only implementation (see repro.ir.symbolic).
    symbolic = getattr(data, "__symbolic_im2col__", None)
    if symbolic is not None:
        return symbolic(kernel, stride)
    n, c, h, w = data.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s0, s1, s2, s3 = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to NCHW."""
    symbolic = getattr(cols, "__symbolic_col2im__", None)
    if symbolic is not None:
        return symbolic(shape, kernel, stride)
    n, c, h, w = shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    data = np.zeros(shape, dtype=cols.dtype)
    for ki in range(kernel):
        h_stop = ki + stride * out_h
        for kj in range(kernel):
            w_stop = kj + stride * out_w
            data[:, :, ki:h_stop:stride, kj:w_stop:stride] += cols[:, :, ki, kj]
    return data


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, k, k)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    x = as_tensor(x)
    n = x.shape[0]
    c_out, c_in, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != c_in:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {c_in}"
        )

    padded = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    ) if padding else x.data
    cols, out_h, out_w = im2col(padded, kernel, stride)
    w2d = weight.data.reshape(c_out, -1)
    out_data = np.einsum("ok,nkl->nol", w2d, cols, optimize=True)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(out: Tensor) -> None:
        grad = out.grad.reshape(n, c_out, out_h * out_w)
        if bias is not None:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            grad_w = np.einsum("nol,nkl->ok", grad, cols, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("ok,nol->nkl", w2d, grad, optimize=True)
            grad_padded = col2im(grad_cols, padded.shape, kernel, stride)
            if padding:
                grad_padded = grad_padded[
                    :, :, padding:-padding, padding:-padding
                ]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D transposed convolution (the adjoint of :func:`conv2d`).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_in, C_out, k, k)`` (PyTorch convention).
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.

    Output spatial size is ``(H - 1) * stride + k - 2 * padding``.
    """
    x = as_tensor(x)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if c_in != c_in_w:
        raise ValueError(
            f"input has {c_in} channels but weight expects {c_in_w}"
        )
    out_h = (h - 1) * stride + kernel - 2 * padding
    out_w = (w - 1) * stride + kernel - 2 * padding
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"non-positive output size {(out_h, out_w)}; check padding"
        )

    # Forward of convT == input-backward of conv: expand x through the
    # kernel into columns, then scatter-add (col2im) onto the output.
    w2d = weight.data.reshape(c_in, c_out * kernel * kernel)
    x_flat = x.data.reshape(n, c_in, h * w)
    cols = np.einsum("ik,nil->nkl", w2d, x_flat, optimize=True)
    padded_shape = (n, c_out, out_h + 2 * padding, out_w + 2 * padding)
    out_data = col2im(cols, padded_shape, kernel, stride)
    if padding:
        out_data = out_data[:, :, padding:-padding, padding:-padding]
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(out: Tensor) -> None:
        grad = out.grad
        if bias is not None:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        grad_padded = (
            np.pad(grad, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
            if padding
            else grad
        )
        grad_cols, _, _ = im2col(grad_padded, kernel, stride)
        if weight.requires_grad:
            grad_w = np.einsum("nkl,nil->ik", grad_cols, x_flat, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_x = np.einsum("ik,nkl->nil", w2d, grad_cols, optimize=True)
            x._accumulate(grad_x.reshape(n, c_in, h, w))

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (by default) windows."""
    stride = kernel if stride is None else stride
    if stride != kernel:
        raise ValueError("only stride == kernel pooling is supported")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial dims {(h, w)} not divisible by pooling kernel {kernel}"
        )
    out_h, out_w = h // kernel, w // kernel
    windows = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = windows.max(axis=(3, 5))

    def backward(out: Tensor) -> None:
        mask = windows == out_data[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)
        grad = mask * (out.grad[:, :, :, None, :, None] / counts)
        x._accumulate(grad.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Average pooling over non-overlapping windows."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial dims {(h, w)} not divisible by pooling kernel {kernel}"
        )
    out_h, out_w = h // kernel, w // kernel
    windows = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = windows.mean(axis=(3, 5))

    def backward(out: Tensor) -> None:
        grad = out.grad[:, :, :, None, :, None] / (kernel * kernel)
        x._accumulate(
            np.broadcast_to(grad, (n, c, out_h, kernel, out_w, kernel))
            .reshape(n, c, h, w)
            .copy()
        )

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial axes, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of an NCHW tensor by ``scale``."""
    n, c, h, w = x.shape
    out_data = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward(out: Tensor) -> None:
        grad = out.grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(out: Tensor) -> None:
        g = out.grad
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    probs = np.exp(out_data)

    def backward(out: Tensor) -> None:
        g = out.grad
        x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over an NCHW tensor (per-channel statistics).

    ``running_mean``/``running_var`` are updated in place when
    ``training`` is true, mirroring the PyTorch semantics the paper's
    implementation relies on.
    """
    n, c, h, w = x.shape
    axes = (0, 2, 3)
    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = n * h * w
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        unbiased = var * count / max(count - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    out_data = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(
        1, c, 1, 1
    )

    def backward(out: Tensor) -> None:
        g = out.grad
        beta._accumulate(g.sum(axis=axes))
        gamma._accumulate((g * x_hat).sum(axis=axes))
        if not x.requires_grad:
            return
        gw = g * gamma.data.reshape(1, c, 1, 1)
        if training:
            m = n * h * w
            sum_gw = gw.sum(axis=axes, keepdims=True)
            sum_gw_xhat = (gw * x_hat).sum(axis=axes, keepdims=True)
            grad = (
                inv_std.reshape(1, c, 1, 1)
                / m
                * (m * gw - sum_gw - x_hat * sum_gw_xhat)
            )
        else:
            grad = gw * inv_std.reshape(1, c, 1, 1)
        x._accumulate(grad)

    return Tensor._make(out_data, (x, gamma, beta), backward)


def layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the trailing axis (transformer style)."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out_data = gamma.data * x_hat + beta.data

    def backward(out: Tensor) -> None:
        g = out.grad
        reduce_axes = tuple(range(g.ndim - 1))
        beta._accumulate(g.sum(axis=reduce_axes))
        gamma._accumulate((g * x_hat).sum(axis=reduce_axes))
        if not x.requires_grad:
            return
        gw = g * gamma.data
        d = x.shape[-1]
        sum_gw = gw.sum(axis=-1, keepdims=True)
        sum_gw_xhat = (gw * x_hat).sum(axis=-1, keepdims=True)
        x._accumulate(inv_std / d * (d * gw - sum_gw - x_hat * sum_gw_xhat))

    return Tensor._make(out_data, (x, gamma, beta), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep

    def backward(out: Tensor) -> None:
        x._accumulate(out.grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)
