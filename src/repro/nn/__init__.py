"""Pure-numpy deep-learning substrate (the repo's PyTorch substitute).

Provides reverse-mode autograd (:mod:`repro.nn.tensor`), the layers the
paper's models need (:mod:`repro.nn.layers`, :mod:`repro.nn.attention`,
:mod:`repro.nn.transformer`), losses, optimizers and checkpointing.
See DESIGN.md §2 for why this substitution preserves the paper's
behaviour.
"""

from . import functional
from .attention import MultiHeadSelfAttention
from .extras import FocalLoss2d, GroupNorm, label_smoothing_targets
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    ConvBNReLU,
    Dropout,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    UpsampleNearest,
)
from .loss import CrossEntropyLoss2d, MSELoss, one_hot_levels
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialize import load_module, load_state, save_module, save_state
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    stack,
)
from .transformer import TransformerLayer, TransformerStack

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Sigmoid",
    "Softmax",
    "MaxPool2d",
    "AvgPool2d",
    "UpsampleNearest",
    "Dropout",
    "Identity",
    "ConvBNReLU",
    "MultiHeadSelfAttention",
    "TransformerLayer",
    "TransformerStack",
    "CrossEntropyLoss2d",
    "MSELoss",
    "one_hot_levels",
    "GroupNorm",
    "FocalLoss2d",
    "label_smoothing_targets",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
]
