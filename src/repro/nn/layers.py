"""Concrete layers used by the paper's models.

Everything the architectures in Figs. 2–5 need: convolutions,
normalization, activations, pooling/upsampling, linear projections and
dropout.  Layers own their :class:`~repro.nn.module.Parameter` leaves
and delegate the math to :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "UpsampleNearest",
    "Dropout",
    "Identity",
    "Softmax",
    "ConvBNReLU",
]

_default_rng = np.random.default_rng(0)


class Conv2d(Module):
    """2-D convolution with square kernels.

    Parameters mirror ``torch.nn.Conv2d`` for the subset the paper uses:
    ``in_channels``, ``out_channels``, ``kernel_size``, ``stride``,
    ``padding`` and ``bias``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class ConvTranspose2d(Module):
    """2-D transposed convolution (learnable upsampling).

    ``kernel_size == stride`` with zero padding gives the exact inverse
    geometry of a stride-``s`` convolution — the standard decoder
    upsampler.  Weight shape follows PyTorch: ``(in, out, k, k)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        # Kaiming fan-in for the *gather* direction (in_channels * k²).
        bound = np.sqrt(1.0 / (in_channels * kernel_size * kernel_size))
        self.weight = Parameter(rng.uniform(-bound, bound, size=shape))
        if bias:
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class Linear(Module):
    """Affine projection ``y = x W^T + b`` over the trailing axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), rng)
        )
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.swapaxes(0, 1)
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm2d(Module):
    """Per-channel batch normalization for NCHW tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        from .tensor import get_default_dtype

        dtype = get_default_dtype()
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class LayerNorm(Module):
    """Layer normalization over the trailing feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class UpsampleNearest(Module):
    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, self.scale)


class Dropout(Module):
    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class ConvBNReLU(Module):
    """The paper's decoder building block: 3×3 conv → BatchNorm → ReLU."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=kernel_size // 2,
            bias=False,
            rng=rng,
        )
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))
