"""Weight initialization schemes for :mod:`repro.nn` layers.

The paper's models follow standard PyTorch defaults (Kaiming-uniform
convolutions, Xavier linear layers); these helpers reproduce those
schemes deterministically from a caller-supplied generator so training
runs are reproducible across processes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in, k, k)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, a: float = np.sqrt(5)
) -> np.ndarray:
    """He-uniform init (PyTorch's default for Conv2d/Linear weights)."""
    fan_in, _ = _fan_in_out(shape)
    gain = np.sqrt(2.0 / (1.0 + a * a))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal init, suited to ReLU stacks (ResNet convention)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init, suited to attention projections."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
