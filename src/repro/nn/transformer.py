"""Vision transformer layers (Section III-C3, Fig. 4).

Each layer applies, with residual connections:

    a_l = MSA(LN(z_{l-1})) + z_{l-1}          (Eq. 8)
    z_l = MLP(LN(a_l)) + a_l                  (Eq. 10)

(The paper's Eq. 10 writes ``MSA`` a second time, a typo for the MLP
branch shown in Fig. 4; we implement the canonical pre-norm ViT block
the figure depicts.)  :class:`TransformerStack` additionally provides
the embedding that reshapes the ``[8C, H/16, W/16]`` encoder feature map
into a ``[C_t, L]`` token sequence with learned position embeddings, and
the inverse projection back to a spatial map for the decoder.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import GELU, LayerNorm, Linear
from .module import Module, ModuleList, Parameter
from .tensor import Tensor

__all__ = ["TransformerLayer", "TransformerStack"]


class TransformerLayer(Module):
    """A single pre-norm ViT encoder block: LN→MSA→residual, LN→MLP→residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int = 4,
        mlp_ratio: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads=num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        a = self.attn(self.norm1(z)) + z
        h = self.fc2(self.act(self.fc1(self.norm2(a))))
        return h + a


class TransformerStack(Module):
    """Embedding + ``num_layers`` ViT layers + spatial re-projection.

    The stack consumes an NCHW feature map of shape
    ``(N, in_channels, h, w)`` (the paper's ``[8C, H/16, W/16]`` encoder
    output), embeds each spatial position as a token of dimension
    ``embed_dim`` (the paper's ``C_t``), applies the transformer layers
    in series, and projects tokens back to ``(N, in_channels, h, w)`` so
    the decoder can continue with spatial operations.
    """

    def __init__(
        self,
        in_channels: int,
        embed_dim: int,
        num_layers: int,
        tokens: int,
        num_heads: int = 4,
        mlp_ratio: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.embed_dim = embed_dim
        self.tokens = tokens
        self.embed = Linear(in_channels, embed_dim, rng=rng)
        self.pos_embed = Parameter(
            rng.normal(0.0, 0.02, size=(1, tokens, embed_dim))
        )
        self.layers = ModuleList(
            [
                TransformerLayer(
                    embed_dim, num_heads=num_heads, mlp_ratio=mlp_ratio, rng=rng
                )
                for _ in range(num_layers)
            ]
        )
        self.norm = LayerNorm(embed_dim)
        self.unembed = Linear(embed_dim, in_channels, rng=rng)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        if h * w != self.tokens:
            raise ValueError(
                f"expected {self.tokens} tokens, got {h}x{w}={h * w}"
            )
        # (N, C, H, W) -> (N, L, C): one token per spatial position.
        z = x.reshape(n, c, h * w).transpose((0, 2, 1))
        z = self.embed(z) + self.pos_embed
        for layer in self.layers:
            z = layer(z)
        z = self.norm(z)
        out = self.unembed(z)  # (N, L, C)
        return out.transpose((0, 2, 1)).reshape(n, c, h, w)
