"""Additional layers and losses beyond the paper's baseline recipe.

* :class:`GroupNorm` — batch-size-independent normalization; useful when
  training with the very small batches pure-numpy throughput forces.
* :class:`FocalLoss2d` — focal cross-entropy (Lin et al.) for the
  heavily imbalanced congestion level distribution; an alternative to
  the inverse-frequency class weighting the default trainer uses.
* :func:`label_smoothing_targets` — smoothed one-hot targets.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .loss import one_hot_levels
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["GroupNorm", "FocalLoss2d", "label_smoothing_targets"]


class GroupNorm(Module):
    """Group normalization over NCHW tensors.

    Splits channels into ``num_groups`` groups and normalizes each
    group over (channels-in-group, H, W) — independent of batch size.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"{num_channels} channels not divisible into {num_groups} groups"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = Parameter(np.ones(num_channels))
        self.beta = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        g = self.num_groups
        grouped = x.reshape(n, g, (c // g) * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        centered = grouped - mean
        var = (centered * centered).mean(axis=2, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        normed = normed.reshape(n, c, h, w)
        gamma = self.gamma.reshape(1, c, 1, 1)
        beta = self.beta.reshape(1, c, 1, 1)
        return normed * gamma + beta


def label_smoothing_targets(
    levels: np.ndarray, num_classes: int, smoothing: float = 0.1
) -> np.ndarray:
    """Smoothed one-hot targets: ``1-s`` on the true level, ``s/K`` elsewhere."""
    if not 0.0 <= smoothing < 1.0:
        raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
    onehot = one_hot_levels(levels, num_classes)
    return onehot * (1.0 - smoothing) + smoothing / num_classes


class FocalLoss2d(Module):
    """Focal loss over ``(N, K, H, W)`` logits.

    ``FL = -(1 - p_t)^gamma · log(p_t)`` — down-weights the easy
    (overwhelmingly level-0) cells so gradient signal concentrates on
    the rare congested ones.
    """

    def __init__(self, num_classes: int, gamma: float = 2.0):
        super().__init__()
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.num_classes = num_classes
        self.gamma = gamma

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        n, k, h, w = logits.shape
        if k != self.num_classes:
            raise ValueError(f"expected {self.num_classes} classes, got {k}")
        log_probs = F.log_softmax(logits, axis=1)
        onehot = one_hot_levels(targets, k)
        # p_t per pixel, detached for the modulation factor (standard
        # practice: the focal weight is treated as a constant).
        with_probs = np.exp(log_probs.data)
        p_t = (with_probs * onehot).sum(axis=1, keepdims=True)
        weight = (1.0 - p_t) ** self.gamma
        picked = log_probs * Tensor(onehot * weight)
        return -picked.sum() * (1.0 / (n * h * w))
