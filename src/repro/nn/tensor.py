"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`, the pure-numpy
deep-learning substrate that replaces PyTorch in this reproduction (see
DESIGN.md, substitution table).  A :class:`Tensor` wraps an
``numpy.ndarray`` and records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients to every tensor created
with ``requires_grad=True``.

The graph is a classic dynamic tape: each operation returns a new tensor
holding references to its parents and a closure that, given the output
gradient already accumulated in ``out.grad``, adds the corresponding
contributions to each parent's ``grad``.  Gradient accumulation is
additive, so tensors used several times receive the sum of all path
contributions, as required by the chain rule.

Only the primitives needed by the paper's models live here; convolution,
pooling and other structured image ops live in
:mod:`repro.nn.functional`.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.float64

# Abstract array types (see repro.ir.symbolic) that Tensor must carry
# through untouched instead of coercing with np.asarray.  Registered by
# the IR tracer so that a symbolic forward pass can flow through the
# exact same Tensor/Module code paths as a real one.
_ABSTRACT_ARRAY_TYPES: tuple[type, ...] = ()


def _register_abstract_array_type(cls: type) -> None:
    """Let ``Tensor`` wrap ``cls`` instances without numpy coercion."""
    global _ABSTRACT_ARRAY_TYPES
    if cls not in _ABSTRACT_ARRAY_TYPES:
        _ABSTRACT_ARRAY_TYPES = _ABSTRACT_ARRAY_TYPES + (cls,)

# Optional tape instrumentation (see repro.lint.sanitize).  The hook is a
# callable ``hook(event, tensor, parents, backward)`` receiving "record"
# when an op wires the graph and "pre"/"post" around each backward
# closure.  When no sanitizer is active this is a single ``is None``
# check per op — zero cost for production training.
_TAPE_HOOK: Callable | None = None


def _set_tape_hook(hook: Callable | None) -> None:
    """Install (or clear) the tape instrumentation hook."""
    global _TAPE_HOOK
    _TAPE_HOOK = hook


def _get_tape_hook() -> Callable | None:
    return _TAPE_HOOK


# Gradient-accumulation instrumentation (see repro.adjoint.capture).  The
# hook is ``hook(tensor, grad)`` and fires on every ``_accumulate`` into a
# requires-grad tensor, *before* the addition — it observes the raw
# adjoint each vjp closure hands over, which is what the REPRO201-203
# gradient contract checks audit.  Same zero-cost ``is None`` pattern as
# the tape hook.
_ACCUM_HOOK: Callable | None = None


def _set_accum_hook(hook: Callable | None) -> None:
    """Install (or clear) the gradient-accumulation hook."""
    global _ACCUM_HOOK
    _ACCUM_HOOK = hook


def _get_accum_hook() -> Callable | None:
    return _ACCUM_HOOK


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are coerced to (float32 or float64).

    float64 (the default) is what the numerical gradient checks assume;
    float32 roughly halves training time and memory and is what the
    benchmark harness uses.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported dtype {dtype}; use float32 or float64")
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    """The dtype new tensors are coerced to."""
    return _DEFAULT_DTYPE


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation returns plain
    result tensors with ``requires_grad=False`` and records no parents,
    which keeps inference cheap and makes optimizer updates safe.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting replicates values along new or size-1 axes in the
    forward pass; the adjoint of replication is summation, so the
    gradient of a broadcast operand is the output gradient summed over
    every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` unless already a
        floating numpy array.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` when
        :meth:`backward` runs on a descendant.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if _ABSTRACT_ARRAY_TYPES and isinstance(data, _ABSTRACT_ARRAY_TYPES):
            # Symbolic tracing: keep the abstract array as the payload
            # (an explicit cast keeps dtype semantics observable to the
            # IR's mixed-precision pass).
            arr = data if data.dtype == np.dtype(_DEFAULT_DTYPE) else data.astype(_DEFAULT_DTYPE)
        else:
            arr = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        """Build an op result, wiring the graph only when grad is enabled."""
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs and backward is not None:
            out._parents = tuple(parents)
            out._backward = lambda: backward(out)
            if _TAPE_HOOK is not None:
                _TAPE_HOOK("record", out, out._parents, backward)
        return out

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of the same data cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # -- gradient accumulation -------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if _ACCUM_HOOK is not None:
            _ACCUM_HOOK(self, grad)
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` and therefore requires a scalar tensor.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.data.shape}"
            )

        order = self._topological_order()
        self._accumulate(grad)
        hook = _TAPE_HOOK
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                if hook is not None:
                    hook("pre", node, node._parents, None)
                node._backward()
                if hook is not None:
                    hook("post", node, node._parents, None)
            # Free the tape reference so repeated backward calls fail loudly
            # and intermediate buffers become collectable.
            node._backward = None
            node._parents = ()

    def _topological_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(out.grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(-out.grad, other.shape))

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return Tensor._make(-self.data, (self,), backward)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-out.grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            if exponent == 0:
                # d/dx x**0 = 0 everywhere; the generic formula below
                # evaluates 0 * x**-1 which is 0*inf = nan at x = 0.
                self._accumulate(np.zeros_like(self.data))
                return
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            a, b, g = self.data, other.data, out.grad
            if a.ndim == 2 and b.ndim == 2:
                self._accumulate(g @ b.T)
                other._accumulate(a.T @ g)
            else:
                # Batched matmul: swap the last two axes for the adjoints and
                # unbroadcast over any leading batch dimensions.
                bt = np.swapaxes(b, -1, -2)
                at = np.swapaxes(a, -1, -2)
                self._accumulate(_unbroadcast(g @ bt, self.shape))
                other._accumulate(_unbroadcast(at @ g, other.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; gradient flows to the (first) argmax entries."""
        out_data = self.data.max(axis=axis, keepdims=True)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            mask = self.data == out_data
            # Split gradient evenly among ties to keep the op well-defined.
            # The tie count is cast to the gradient dtype: dividing a
            # float32 gradient by an int64 count would silently promote
            # the adjoint to float64 (REPRO201 dtype contract).
            counts = mask.sum(axis=axis, keepdims=True).astype(grad.dtype)
            self._accumulate(mask * grad / counts)

        result = out_data if keepdims else np.squeeze(out_data, axis=axis)
        if axis is None and not keepdims:
            result = np.asarray(self.data.max())
        return Tensor._make(result, (self,), backward)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        # Normalize negative axes: argsort of a mixed-sign permutation is
        # NOT its inverse, which silently corrupted gradients for square
        # dims and crashed for rectangular ones.
        axes = tuple(a % self.ndim for a in axes)
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        return Tensor._make(self.data[index], (self,), backward)

    # -- elementwise nonlinearities -----------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # exp(-|x|) is bounded in (0, 1], so neither branch can overflow;
        # the naive 1/(1+exp(-x)) form overflows for x << 0 (REPRO101).
        z = np.exp(-np.abs(self.data))
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + z), z / (1.0 + z))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        # math.sqrt yields a *weak* python float: under NEP 50 it adopts
        # the stream's dtype.  np.sqrt here would produce a strong
        # np.float64 scalar that silently widens every float32
        # activation (and its backward) to float64 (REPRO301).
        c = math.sqrt(2.0 / math.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(out: Tensor) -> None:
            dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
            self._accumulate(out.grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars/arrays to :class:`Tensor` (tensors pass through)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(index)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(out: Tensor) -> None:
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(out.grad, i, axis=axis))

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)
