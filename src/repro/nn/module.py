"""Module system: parameter containers with PyTorch-like ergonomics.

A :class:`Module` owns :class:`Parameter` leaves and child modules,
exposes ``parameters()`` / ``named_parameters()`` for optimizers, a
``state_dict`` round-trip for checkpointing, and a ``train()`` /
``eval()`` mode flag consumed by BatchNorm and Dropout.  Attribute
assignment registers children automatically, so model code reads like
the PyTorch the paper was written in.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]

# Optional instrumentation around every Module.__call__ (see
# repro.ir.trace).  The hook is ``hook(event, module)`` with event
# "enter" before forward and "exit" after (also on exception); when no
# tracer is active this is a single ``is None`` check per call.
_CALL_HOOK = None


def _set_call_hook(hook) -> None:
    """Install (or clear) the module-call instrumentation hook."""
    global _CALL_HOOK
    _CALL_HOOK = hook


def _get_call_hook():
    return _CALL_HOOK


class Parameter(Tensor):
    """A tensor that is always trainable and enumerated by ``parameters()``."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even when constructed under
        # ``no_grad`` (e.g. lazily built modules inside an eval pass).
        self.requires_grad = True


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training: bool = True

    # -- registration ----------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the module tree."""
        return sum(p.size for p in self.parameters())

    # -- train/eval mode ----------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- state dict ------------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs "
                    f"{state[name].shape}"
                )
            param.data[...] = state[name]
        for name, buf in own_buffers.items():
            buf[...] = state[name]

    # -- call protocol ----------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        hook = _CALL_HOOK
        if hook is None:
            return self.forward(*args, **kwargs)
        hook("enter", self)
        try:
            return self.forward(*args, **kwargs)
        finally:
            hook("exit", self)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """Hold an indexable list of child modules (no implicit forward)."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._list: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._list))] = module
        self._list.append(module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)
