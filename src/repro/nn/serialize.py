"""Checkpoint serialization for :class:`~repro.nn.module.Module` trees.

State dicts are flat ``name -> ndarray`` mappings, stored as compressed
``.npz`` archives so trained congestion predictors can be saved once and
reused by the placement flow without retraining.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def _npz_path(path: str | os.PathLike) -> Path:
    """The path ``np.savez_compressed`` actually writes to.

    numpy appends ``.npz`` when the suffix is missing, which used to
    break ``load_state(path)`` on the same string; both functions now
    normalize through here so either spelling round-trips.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_state(state: dict[str, np.ndarray], path: str | os.PathLike) -> Path:
    """Write a state dict to a compressed ``.npz`` archive.

    The archive is written to a temporary sibling, fsync'd, and renamed
    into place, so a crash mid-save leaves either the previous complete
    checkpoint or the new one — never a torn archive at the final name
    (the same discipline as :mod:`repro.resilience.checkpoint`).

    Returns the path actually written (with the ``.npz`` suffix that
    numpy appends when it is missing).
    """
    path = _npz_path(path)
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **state)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(_npz_path(path)) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str | os.PathLike) -> Path:
    """Checkpoint a module's parameters and buffers; returns the path."""
    return save_state(module.state_dict(), path)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Restore a checkpoint into an already-constructed module."""
    module.load_state_dict(load_state(path))
    return module
