"""Checkpoint serialization for :class:`~repro.nn.module.Module` trees.

State dicts are flat ``name -> ndarray`` mappings, stored as compressed
``.npz`` archives so trained congestion predictors can be saved once and
reused by the placement flow without retraining.
"""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: dict[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a state dict to a compressed ``.npz`` archive."""
    np.savez_compressed(path, **state)


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Checkpoint a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Restore a checkpoint into an already-constructed module."""
    module.load_state_dict(load_state(path))
    return module
