"""Optimizers.

The paper trains with Adam at learning rate 1e-3 (Section V-A); SGD with
momentum is provided for the ablation/benchmark harness.  Both operate
in-place on :class:`~repro.nn.module.Parameter` data and follow the
standard update rules.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm, which training loops log to detect
    exploding gradients.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, clears gradients."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """All mutable optimizer state, copied (see ``load_state_dict``).

        Subclasses extend the dict with their slot arrays; values are
        either scalars or lists of ndarrays aligned with ``parameters``.
        """
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (resume support)."""
        self.lr = float(state["lr"])

    def _load_slots(self, state: dict, key: str, slots: list[np.ndarray]) -> None:
        saved = state[key]
        if len(saved) != len(slots):
            raise ValueError(
                f"optimizer state {key!r} has {len(saved)} arrays for "
                f"{len(slots)} parameters"
            )
        for slot, arr in zip(slots, saved):
            if slot.shape != arr.shape:
                raise ValueError(
                    f"optimizer state {key!r} shape mismatch: "
                    f"{slot.shape} vs {arr.shape}"
                )
            slot[...] = arr


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_slots(state, "velocity", self._velocity)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction, the paper's optimizer."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1**self._step
        bc2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["step"] = self._step
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._load_slots(state, "m", self._m)
        self._load_slots(state, "v", self._v)
