"""Dataset generation, training loop, and the Table-I metrics."""

from .dataset import (
    CongestionDataset,
    DatasetConfig,
    Sample,
    generate_samples,
    rotate_sample,
)
from .loop import TrainConfig, Trainer, TrainResult
from .metrics import (
    accuracy,
    confusion_matrix,
    evaluate_predictions,
    nrms,
    per_level_recall,
    r_squared,
)
from .schedule import SCHEDULES, lr_at_epoch
from .tta import predict_expected_tta, predict_levels_tta, predict_proba_tta

__all__ = [
    "Sample",
    "DatasetConfig",
    "generate_samples",
    "rotate_sample",
    "CongestionDataset",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "accuracy",
    "r_squared",
    "nrms",
    "evaluate_predictions",
    "confusion_matrix",
    "per_level_recall",
    "lr_at_epoch",
    "SCHEDULES",
    "predict_proba_tta",
    "predict_levels_tta",
    "predict_expected_tta",
]
