"""Training loop for the congestion prediction models.

The paper trains with Adam at lr = 1e-3 (Section V-A).  Congestion
level maps are dominated by low levels, so the cross-entropy loss uses
inverse-sqrt-frequency class weights — without them every model
collapses onto the majority level and Table I's differences vanish.

Long runs are fault-tolerant (``repro.resilience``): with
``checkpoint_dir`` set the trainer writes atomic, checksummed bundles
(model + Adam moments + RNG + loss curve) every ``checkpoint_every``
epochs and can resume bit-for-bit with ``resume=True``; a divergence
guard rolls NaN/exploding epochs back to the last good snapshot with
the learning rate backed off, bounded by ``divergence_retries`` before
:class:`repro.resilience.TrainingDiverged` is raised.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..models.base import CongestionModel
from ..resilience import Checkpoint, CheckpointManager, DivergenceGuard, fingerprint_of
from .dataset import CongestionDataset, Sample
from .metrics import evaluate_predictions
from .schedule import lr_at_epoch

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass
class TrainConfig:
    """Optimizer and schedule knobs (paper: Adam, lr 1e-3)."""

    epochs: int = 10
    batch_size: int = 4
    lr: float = 1e-3
    lr_schedule: str = "constant"  # constant | cosine | step
    loss: str = "ce"  # ce | focal (focal ignores class weighting)
    focal_gamma: float = 2.0
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    class_weighting: bool = True
    max_class_weight: float = 8.0
    # Stop early when the epoch loss has not improved by at least
    # ``patience_delta`` for ``patience`` consecutive epochs (0 disables).
    patience: int = 0
    patience_delta: float = 1e-3
    seed: int = 0
    log_every: int = 0  # epochs between progress prints; 0 silences
    # Run the whole loop under ``repro.lint.detect_anomaly``: op
    # provenance, NaN/Inf gradient origin, in-place mutation and leaked
    # graph detection, plus an unused-parameter check after the first
    # backward pass.  Debugging aid; off by default (zero overhead).
    sanitize: bool = False
    # Fault tolerance (repro.resilience).  ``checkpoint_dir`` enables
    # atomic last/best bundles every ``checkpoint_every`` epochs;
    # ``resume`` restores the last bundle (refusing a mismatched
    # config fingerprint) and continues bit-for-bit.
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    # Divergence guard: an epoch loss that is NaN/Inf or worse than
    # ``divergence_factor`` × the best loss so far rolls back to the
    # last good snapshot with lr × ``lr_backoff``, at most
    # ``divergence_retries`` times (0 disables the guard).
    divergence_factor: float = 10.0
    lr_backoff: float = 0.5
    divergence_retries: int = 3


@dataclass
class TrainResult:
    """Loss curve and timing of one training run."""

    losses: list[float] = field(default_factory=list)
    epochs: int = 0
    seconds: float = 0.0
    # Filled only when ``TrainConfig.sanitize`` is on.
    unused_parameters: list[str] = field(default_factory=list)
    leaked_ops: list[str] = field(default_factory=list)
    # Fault-tolerance bookkeeping: the epoch a resume restarted from
    # (0 for fresh runs) and one dict per divergence rollback.
    resumed_from_epoch: int = 0
    recoveries: list[dict] = field(default_factory=list)


class Trainer:
    """Trains a congestion model on a :class:`CongestionDataset`."""

    def __init__(self, config: TrainConfig | None = None) -> None:
        self.config = config or TrainConfig()

    def _class_weights(self, dataset: CongestionDataset, num_classes: int) -> np.ndarray | None:
        if not self.config.class_weighting:
            return None
        counts = dataset.class_frequencies(num_classes)
        total = counts.sum()
        # Inverse-sqrt frequency, clipped; absent classes get the max.
        weights = np.where(
            counts > 0, np.sqrt(total / (num_classes * np.maximum(counts, 1.0))), 1.0
        )
        weights = np.clip(weights, 1.0 / self.config.max_class_weight, self.config.max_class_weight)
        return weights / weights.mean()

    def _fingerprint(self, model: CongestionModel) -> dict:
        """Config + architecture identity a resumed run must match."""
        fingerprint = fingerprint_of(asdict(self.config))
        fingerprint["model"] = model.__class__.__name__
        fingerprint["model_params"] = int(model.num_parameters())
        return fingerprint

    @staticmethod
    def _snapshot(
        model: CongestionModel,
        optimizer: nn.Optimizer,
        rng: np.random.Generator,
        epoch: int,
        losses: list[float],
        fingerprint: dict,
        lr_scale: float,
    ) -> Checkpoint:
        """A resumable copy of the complete training state."""
        return Checkpoint(
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=rng.bit_generator.state,
            epoch=epoch,
            losses=list(losses),
            fingerprint=fingerprint,
            extra={"lr_scale": lr_scale},
        )

    @staticmethod
    def _restore(
        checkpoint: Checkpoint,
        model: CongestionModel,
        optimizer: nn.Optimizer,
        rng: np.random.Generator,
    ) -> None:
        model.load_state_dict(checkpoint.model_state)
        optimizer.load_state_dict(checkpoint.optimizer_state)
        rng.bit_generator.state = checkpoint.rng_state

    def train(self, model: CongestionModel, dataset: CongestionDataset) -> TrainResult:
        cfg = self.config
        if not dataset.train:
            raise ValueError(
                "empty dataset: no training samples (dataset.train is empty)"
            )
        rng = np.random.default_rng(cfg.seed)
        if cfg.loss == "focal":
            loss_fn = nn.FocalLoss2d(model.num_classes, gamma=cfg.focal_gamma)
        elif cfg.loss == "ce":
            weights = self._class_weights(dataset, model.num_classes)
            loss_fn = nn.CrossEntropyLoss2d(model.num_classes, weight=weights)
        else:
            raise ValueError(f"unknown loss {cfg.loss!r}; use 'ce' or 'focal'")
        optimizer = nn.Adam(
            model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
        )
        result = TrainResult()
        start = time.perf_counter()
        model.train()
        best_loss = np.inf
        stall = 0

        # -- fault tolerance wiring (repro.resilience) --------------------
        fingerprint = self._fingerprint(model)
        manager = (
            CheckpointManager(cfg.checkpoint_dir) if cfg.checkpoint_dir else None
        )
        guard = DivergenceGuard(
            factor=cfg.divergence_factor,
            backoff=cfg.lr_backoff,
            max_retries=cfg.divergence_retries,
        )
        guard_on = cfg.divergence_retries > 0
        lr_scale = 1.0
        start_epoch = 0
        if manager is not None and cfg.resume:
            restored = manager.load_last(expected_fingerprint=fingerprint)
            if restored is not None:
                self._restore(restored, model, optimizer, rng)
                result.losses = list(restored.losses)
                start_epoch = restored.epoch
                lr_scale = float(restored.extra.get("lr_scale", 1.0))
                result.resumed_from_epoch = start_epoch
                for loss in result.losses:
                    guard.observe(loss)
                if result.losses:
                    best_loss = min(result.losses)

        if cfg.sanitize:
            from ..lint.sanitize import detect_anomaly, unused_parameter_report

            anomaly = detect_anomaly()
        else:
            anomaly = nullcontext()
        with anomaly:
            checked_unused = False
            # Rollback point = complete state at the top of the epoch.
            rollback = (
                self._snapshot(
                    model, optimizer, rng, start_epoch, result.losses,
                    fingerprint, lr_scale,
                )
                if (guard_on or manager is not None)
                else None
            )
            epoch = start_epoch
            while epoch < cfg.epochs:
                optimizer.lr = lr_at_epoch(
                    cfg.lr, epoch, cfg.epochs, schedule=cfg.lr_schedule
                ) * lr_scale
                epoch_loss = 0.0
                batches = 0
                batch_blew_up = False
                for feats, labels in dataset.batches(cfg.batch_size, rng):
                    optimizer.zero_grad()
                    logits = model(nn.Tensor(feats))
                    loss = loss_fn(logits, labels)
                    batch_loss = loss.item()
                    if guard_on and not np.isfinite(batch_loss):
                        # Don't even backprop a NaN/Inf loss — its
                        # gradients are poison; bail out to the guard.
                        epoch_loss = batch_loss
                        batch_blew_up = True
                        break
                    loss.backward()
                    if cfg.sanitize and not checked_unused:
                        checked_unused = True
                        result.unused_parameters = unused_parameter_report(model)
                        if result.unused_parameters:
                            print(
                                "sanitize: parameters with no gradient after "
                                f"backward: {result.unused_parameters}"
                            )
                    nn.clip_grad_norm(model.parameters(), cfg.grad_clip)
                    optimizer.step()
                    epoch_loss += batch_loss
                    batches += 1
                mean_loss = (
                    epoch_loss if batch_blew_up else epoch_loss / max(batches, 1)
                )
                if guard_on and (batch_blew_up or guard.is_divergent(mean_loss)):
                    # Roll back to the last good snapshot, back the lr off,
                    # and retry the epoch; raises TrainingDiverged once the
                    # retry budget is spent.
                    lr_scale *= guard.request_rollback(
                        epoch, mean_loss, optimizer.lr
                    )
                    self._restore(rollback, model, optimizer, rng)
                    result.losses = list(rollback.losses)
                    epoch = rollback.epoch
                    result.recoveries = list(guard.events)
                    rollback.extra["lr_scale"] = lr_scale
                    continue
                guard.observe(mean_loss)
                result.losses.append(mean_loss)
                if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                    print(f"epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")
                epoch += 1
                stop = False
                if cfg.patience:
                    if mean_loss < best_loss - cfg.patience_delta:
                        best_loss = mean_loss
                        stall = 0
                    else:
                        stall += 1
                        if stall >= cfg.patience:
                            stop = True
                if guard_on or manager is not None:
                    rollback = self._snapshot(
                        model, optimizer, rng, epoch, result.losses,
                        fingerprint, lr_scale,
                    )
                if manager is not None and (
                    epoch % cfg.checkpoint_every == 0 or epoch == cfg.epochs or stop
                ):
                    manager.save(
                        rollback, is_best=mean_loss <= min(result.losses)
                    )
                if stop:
                    break
        if cfg.sanitize:
            result.leaked_ops = anomaly.leaked_ops()
            if result.leaked_ops:
                print(f"sanitize: {anomaly.describe_leaks()}")
        result.epochs = len(result.losses)
        result.seconds = time.perf_counter() - start
        model.eval()
        return result

    @staticmethod
    def evaluate(model: CongestionModel, samples: list[Sample]) -> dict[str, float]:
        """Table-I metrics of ``model`` on a sample list."""
        if not samples:
            raise ValueError("cannot evaluate on an empty sample list")
        feats = np.stack([s.features for s in samples])
        labels = np.stack([s.labels for s in samples])
        pred = model.predict_levels(feats)
        return evaluate_predictions(pred, labels)

    @staticmethod
    def evaluate_by_design(
        model: CongestionModel, dataset: CongestionDataset
    ) -> dict[str, dict[str, float]]:
        """Per-design metrics plus the cross-design average (Table I rows)."""
        per_design = {
            name: Trainer.evaluate(model, samples)
            for name, samples in sorted(dataset.eval_by_design().items())
        }
        if per_design:
            keys = next(iter(per_design.values())).keys()
            per_design["Average"] = {
                k: float(np.mean([m[k] for m in per_design.values()]))
                for k in keys
            }
        return per_design
