"""Training loop for the congestion prediction models.

The paper trains with Adam at lr = 1e-3 (Section V-A).  Congestion
level maps are dominated by low levels, so the cross-entropy loss uses
inverse-sqrt-frequency class weights — without them every model
collapses onto the majority level and Table I's differences vanish.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..models.base import CongestionModel
from .dataset import CongestionDataset, Sample
from .metrics import evaluate_predictions
from .schedule import lr_at_epoch

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass
class TrainConfig:
    """Optimizer and schedule knobs (paper: Adam, lr 1e-3)."""

    epochs: int = 10
    batch_size: int = 4
    lr: float = 1e-3
    lr_schedule: str = "constant"  # constant | cosine | step
    loss: str = "ce"  # ce | focal (focal ignores class weighting)
    focal_gamma: float = 2.0
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    class_weighting: bool = True
    max_class_weight: float = 8.0
    # Stop early when the epoch loss has not improved by at least
    # ``patience_delta`` for ``patience`` consecutive epochs (0 disables).
    patience: int = 0
    patience_delta: float = 1e-3
    seed: int = 0
    log_every: int = 0  # epochs between progress prints; 0 silences
    # Run the whole loop under ``repro.lint.detect_anomaly``: op
    # provenance, NaN/Inf gradient origin, in-place mutation and leaked
    # graph detection, plus an unused-parameter check after the first
    # backward pass.  Debugging aid; off by default (zero overhead).
    sanitize: bool = False


@dataclass
class TrainResult:
    """Loss curve and timing of one training run."""

    losses: list[float] = field(default_factory=list)
    epochs: int = 0
    seconds: float = 0.0
    # Filled only when ``TrainConfig.sanitize`` is on.
    unused_parameters: list[str] = field(default_factory=list)
    leaked_ops: list[str] = field(default_factory=list)


class Trainer:
    """Trains a congestion model on a :class:`CongestionDataset`."""

    def __init__(self, config: TrainConfig | None = None) -> None:
        self.config = config or TrainConfig()

    def _class_weights(self, dataset: CongestionDataset, num_classes: int) -> np.ndarray | None:
        if not self.config.class_weighting:
            return None
        counts = dataset.class_frequencies(num_classes)
        total = counts.sum()
        # Inverse-sqrt frequency, clipped; absent classes get the max.
        weights = np.where(
            counts > 0, np.sqrt(total / (num_classes * np.maximum(counts, 1.0))), 1.0
        )
        weights = np.clip(weights, 1.0 / self.config.max_class_weight, self.config.max_class_weight)
        return weights / weights.mean()

    def train(self, model: CongestionModel, dataset: CongestionDataset) -> TrainResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.loss == "focal":
            loss_fn = nn.FocalLoss2d(model.num_classes, gamma=cfg.focal_gamma)
        elif cfg.loss == "ce":
            weights = self._class_weights(dataset, model.num_classes)
            loss_fn = nn.CrossEntropyLoss2d(model.num_classes, weight=weights)
        else:
            raise ValueError(f"unknown loss {cfg.loss!r}; use 'ce' or 'focal'")
        optimizer = nn.Adam(
            model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
        )
        result = TrainResult()
        start = time.perf_counter()
        model.train()
        best_loss = np.inf
        stall = 0
        if cfg.sanitize:
            from ..lint.sanitize import detect_anomaly, unused_parameter_report

            anomaly = detect_anomaly()
        else:
            anomaly = nullcontext()
        with anomaly:
            checked_unused = False
            for epoch in range(cfg.epochs):
                optimizer.lr = lr_at_epoch(
                    cfg.lr, epoch, cfg.epochs, schedule=cfg.lr_schedule
                )
                epoch_loss = 0.0
                batches = 0
                for feats, labels in dataset.batches(cfg.batch_size, rng):
                    optimizer.zero_grad()
                    logits = model(nn.Tensor(feats))
                    loss = loss_fn(logits, labels)
                    loss.backward()
                    if cfg.sanitize and not checked_unused:
                        checked_unused = True
                        result.unused_parameters = unused_parameter_report(model)
                        if result.unused_parameters:
                            print(
                                "sanitize: parameters with no gradient after "
                                f"backward: {result.unused_parameters}"
                            )
                    nn.clip_grad_norm(model.parameters(), cfg.grad_clip)
                    optimizer.step()
                    epoch_loss += loss.item()
                    batches += 1
                mean_loss = epoch_loss / max(batches, 1)
                result.losses.append(mean_loss)
                if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                    print(f"epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")
                if cfg.patience:
                    if mean_loss < best_loss - cfg.patience_delta:
                        best_loss = mean_loss
                        stall = 0
                    else:
                        stall += 1
                        if stall >= cfg.patience:
                            break
        if cfg.sanitize:
            result.leaked_ops = anomaly.leaked_ops()
            if result.leaked_ops:
                print(f"sanitize: {anomaly.describe_leaks()}")
        result.epochs = len(result.losses)
        result.seconds = time.perf_counter() - start
        model.eval()
        return result

    @staticmethod
    def evaluate(model: CongestionModel, samples: list[Sample]) -> dict[str, float]:
        """Table-I metrics of ``model`` on a sample list."""
        if not samples:
            raise ValueError("cannot evaluate on an empty sample list")
        feats = np.stack([s.features for s in samples])
        labels = np.stack([s.labels for s in samples])
        pred = model.predict_levels(feats)
        return evaluate_predictions(pred, labels)

    @staticmethod
    def evaluate_by_design(
        model: CongestionModel, dataset: CongestionDataset
    ) -> dict[str, dict[str, float]]:
        """Per-design metrics plus the cross-design average (Table I rows)."""
        per_design = {
            name: Trainer.evaluate(model, samples)
            for name, samples in sorted(dataset.eval_by_design().items())
        }
        if per_design:
            keys = next(iter(per_design.values())).keys()
            per_design["Average"] = {
                k: float(np.mean([m[k] for m in per_design.values()]))
                for k in keys
            }
        return per_design
