"""Test-time augmentation (TTA) for congestion prediction.

The training pipeline already exploits the problem's 4-fold rotational
symmetry for data augmentation (Section V-A); TTA applies the same
symmetry at inference: predict on all four rotations of the input,
rotate the probability maps back, and average.  This is a free accuracy
boost for *any* of the models (applied equally, it does not change
Table I's ordering) and is exposed as :func:`predict_levels_tta` /
:func:`predict_expected_tta`.
"""

from __future__ import annotations

import numpy as np

from ..features import FEATURE_NAMES
from ..models.base import CongestionModel

__all__ = ["predict_proba_tta", "predict_levels_tta", "predict_expected_tta"]

_H_IDX = FEATURE_NAMES.index("h_net_density")
_V_IDX = FEATURE_NAMES.index("v_net_density")


def _rotate_features(features: np.ndarray, k: int) -> np.ndarray:
    """Rotate a ``(N, 6, H, W)`` batch by ``k`` quarter-turns.

    Odd rotations swap the horizontal/vertical net-density channels,
    exactly as in training augmentation.
    """
    rotated = np.rot90(features, k=k, axes=(2, 3)).copy()
    if k % 2 == 1:
        rotated[:, [_H_IDX, _V_IDX]] = rotated[:, [_V_IDX, _H_IDX]]
    return rotated


def predict_proba_tta(model: CongestionModel, features: np.ndarray) -> np.ndarray:
    """Rotation-averaged softmax probabilities, ``(N, 8, H, W)``.

    Requires square inputs (H = W), which all the pipeline's rasters are.
    """
    features = np.asarray(features)
    if features.ndim != 4:
        raise ValueError(f"expected (N, 6, H, W), got shape {features.shape}")
    if features.shape[2] != features.shape[3]:
        raise ValueError("TTA requires square feature maps")
    total = None
    for k in range(4):
        proba = model.predict_proba(_rotate_features(features, k))
        # Rotate the prediction back into the original frame.
        proba = np.rot90(proba, k=-k, axes=(2, 3))
        total = proba if total is None else total + proba
    return total / 4.0


def predict_levels_tta(model: CongestionModel, features: np.ndarray) -> np.ndarray:
    """Rotation-averaged hard level map, ``(N, H, W)``."""
    return predict_proba_tta(model, features).argmax(axis=1)


def predict_expected_tta(model: CongestionModel, features: np.ndarray) -> np.ndarray:
    """Rotation-averaged expected (real-valued) levels, ``(N, H, W)``."""
    proba = predict_proba_tta(model, features)
    levels = np.arange(proba.shape[1]).reshape(1, -1, 1, 1)
    return (proba * levels).sum(axis=1)
