"""Evaluation metrics of Table I: ACC, R² and NRMS.

Following [6] (which the paper adopts):

* **ACC** — fraction of grid cells classified into the correct
  congestion level.
* **R²** — coefficient of determination of predicted vs. true levels,
  treating levels as a continuous quantity.
* **NRMS** — root mean square error normalized by the level range
  (``num_levels − 1 = 7``), measuring predicted-map quality.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "r_squared",
    "nrms",
    "evaluate_predictions",
    "confusion_matrix",
    "per_level_recall",
]

_LEVEL_RANGE = 7.0


def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    """Fraction of cells with the exact correct level."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float((pred == target).mean())


def r_squared(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination (1 − SS_res / SS_tot)."""
    # Metric reductions stay float64 on purpose: squared-error sums over
    # full maps need the headroom, and metrics are off the hot path.
    pred = np.asarray(pred, dtype=np.float64)  # noqa: REPRO301
    target = np.asarray(target, dtype=np.float64)  # noqa: REPRO301
    ss_res = float(((target - pred) ** 2).sum())
    ss_tot = float(((target - target.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def nrms(pred: np.ndarray, target: np.ndarray) -> float:
    """RMSE normalized by the congestion level range (7)."""
    pred = np.asarray(pred, dtype=np.float64)  # noqa: REPRO301
    target = np.asarray(target, dtype=np.float64)  # noqa: REPRO301
    return float(np.sqrt(((pred - target) ** 2).mean()) / _LEVEL_RANGE)


def evaluate_predictions(pred: np.ndarray, target: np.ndarray) -> dict[str, float]:
    """All three Table-I metrics at once."""
    return {
        "ACC": accuracy(pred, target),
        "R2": r_squared(pred, target),
        "NRMS": nrms(pred, target),
    }


def confusion_matrix(
    pred: np.ndarray, target: np.ndarray, num_classes: int = 8
) -> np.ndarray:
    """``C[i, j]`` = number of cells with true level ``i`` predicted ``j``.

    The paper argues the transformer "improves the difference between
    various congestion levels"; the confusion matrix is how that shows
    up — mass concentrating on the diagonal for the rare high levels.
    """
    pred = np.asarray(pred, dtype=np.int64).ravel()
    target = np.asarray(target, dtype=np.int64).ravel()
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if (
        pred.min(initial=0) < 0
        or target.min(initial=0) < 0
        or pred.max(initial=0) >= num_classes
        or target.max(initial=0) >= num_classes
    ):
        raise ValueError(f"levels outside [0, {num_classes})")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (target, pred), 1)
    return matrix


def per_level_recall(
    pred: np.ndarray, target: np.ndarray, num_classes: int = 8
) -> np.ndarray:
    """Recall per congestion level (NaN for levels absent from target).

    Distinguishing the *penalized* levels (≥ 4) is what drives Eq. 1, so
    per-level recall is the metric that separates "accurate overall"
    from "accurate where it matters".
    """
    matrix = confusion_matrix(pred, target, num_classes)
    support = matrix.sum(axis=1)
    with np.errstate(invalid="ignore"):
        recall = np.diag(matrix) / support
    return np.where(support > 0, recall, np.nan)
