"""Dataset generation for congestion prediction (Section V-A).

The paper builds its training set by running the macro placement flow
with varying parameters — 30 placements per benchmark — labelling each
placement with the Vivado initial router's congestion levels, and
augmenting by 90°/180°/270° rotations (30 × 4 = 120 sets per design,
1200 total).  This module reproduces that pipeline on our substrates:

* placements come from :func:`repro.placement.place_design` with varied
  seeds, inflation rounds and estimator gains;
* labels come from the global router's congestion level map;
* rotations transform both features and labels — with the subtlety that
  a 90° rotation swaps the horizontal and vertical net density channels.

``placements_per_design`` is scale-controlled (paper: 30; benches use
fewer) — see DESIGN.md §2 on scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features import FEATURE_NAMES, FeatureExtractor, resize_map
from ..netlist import Design, DesignSpec, generate_design
from ..placement import PlacerConfig, RudyEstimator, place_design
from ..routing import congestion_report, route_design

__all__ = ["Sample", "DatasetConfig", "generate_samples", "CongestionDataset", "rotate_sample"]

_H_IDX = FEATURE_NAMES.index("h_net_density")
_V_IDX = FEATURE_NAMES.index("v_net_density")


@dataclass
class Sample:
    """One training example: feature stack + integer congestion levels."""

    features: np.ndarray  # (6, G, G) float
    labels: np.ndarray  # (G, G) int levels 0-7
    design_name: str
    rotation: int = 0  # quarter-turns applied


def rotate_sample(sample: Sample, quarter_turns: int) -> Sample:
    """Rotate a sample by ``quarter_turns`` × 90°.

    Feature maps are indexed ``[x, y]``; a 90° rotation maps horizontal
    routing demand onto vertical tracks and vice versa, so the H/V net
    density channels are swapped for odd quarter-turns.
    """
    k = quarter_turns % 4
    if k == 0:
        return sample
    features = np.rot90(sample.features, k=k, axes=(1, 2)).copy()
    labels = np.rot90(sample.labels, k=k).copy()
    if k % 2 == 1:
        features[[_H_IDX, _V_IDX]] = features[[_V_IDX, _H_IDX]]
    return Sample(features, labels, sample.design_name, rotation=k)


@dataclass
class DatasetConfig:
    """Dataset-generation knobs."""

    grid: int = 64
    placements_per_design: int = 6
    augment: bool = True
    eval_fraction: float = 0.25
    seed: int = 0
    design_scale: float = 1.0 / 64.0
    gp_iters: int = 400
    stage2_iters: int = 120


def _varied_placer_config(
    rng: np.random.Generator, cfg: DatasetConfig, gp_seed: int | None = None
) -> PlacerConfig:
    """A placement configuration drawn from the paper's parameter sweep."""
    from ..placement.sweep import sample_placer_config

    return sample_placer_config(
        rng, gp_iters=cfg.gp_iters, stage2_iters=cfg.stage2_iters, gp_seed=gp_seed
    )


def generate_samples(
    design_or_spec: Design | DesignSpec,
    config: DatasetConfig,
    rng: np.random.Generator | None = None,
    seed_seq: np.random.SeedSequence | None = None,
) -> list[Sample]:
    """Run the placement sweep for one design and label every placement.

    A fresh design instance is generated per placement (placement state
    is mutated by the flow), each placed with varied parameters, routed,
    and converted to a (features, levels) pair on the ``grid`` raster.

    With ``seed_seq`` every placement draws from its own spawned child
    stream — independent of how many placements ran before it — which
    is what lets :meth:`CongestionDataset.build` generate designs in
    parallel workers and still reproduce the serial dataset bitwise.
    The legacy ``rng`` path threads one generator through the whole
    sweep and is kept for direct callers.
    """
    if seed_seq is None:
        rng = rng or np.random.default_rng(config.seed)
        draws = [(rng, None) for _ in range(config.placements_per_design)]
    else:
        draws = []
        for child in seed_seq.spawn(config.placements_per_design):
            cfg_seq, gp_seq = child.spawn(2)
            gp_seed = int(gp_seq.generate_state(1)[0] % 1_000_000)
            draws.append((np.random.default_rng(cfg_seq), gp_seed))
    extractor = FeatureExtractor(grid=config.grid)
    samples: list[Sample] = []
    for draw_rng, gp_seed in draws:
        if isinstance(design_or_spec, DesignSpec):
            design = generate_design(design_or_spec, scale=config.design_scale)
        else:
            design = generate_design(
                _spec_of(design_or_spec), scale=config.design_scale,
                device=design_or_spec.device,
            )
        placer_cfg = _varied_placer_config(draw_rng, config, gp_seed=gp_seed)
        estimator = RudyEstimator(
            grid=design.device.tile_cols, gain=float(draw_rng.uniform(0.7, 1.3))
        )
        place_design(design, estimator=estimator, config=placer_cfg)

        features = extractor(design)
        routing = route_design(design)
        report = congestion_report(routing)
        labels = resize_map(
            report.level_map.astype(np.float32), config.grid, config.grid
        )
        labels = np.clip(np.rint(labels), 0, 7).astype(np.int64)
        samples.append(Sample(features, labels, design.name))
    return samples


def _design_samples_job(
    spec: DesignSpec, config: DatasetConfig, seed_seq=None
) -> list[Sample]:
    """Orchestrated per-design sweep (runs inside a worker process)."""
    return generate_samples(spec, config, seed_seq=seed_seq)


def _spec_of(design: Design) -> DesignSpec:
    from ..netlist.generator import MLCAD2023_SPECS

    if design.name in MLCAD2023_SPECS:
        return MLCAD2023_SPECS[design.name]
    raise ValueError(
        f"cannot regenerate unknown design {design.name!r}; pass a DesignSpec"
    )


@dataclass
class CongestionDataset:
    """Per-design train/eval splits with optional rotation augmentation."""

    train: list[Sample] = field(default_factory=list)
    eval: list[Sample] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        specs: list[DesignSpec],
        config: DatasetConfig,
        parallel: int = 0,
    ) -> "CongestionDataset":
        """Generate the full multi-design dataset (paper Section V-A).

        Each design draws from its own ``SeedSequence`` child (spawned
        from ``config.seed`` by position), so the dataset is a pure
        function of the config — independent of generation order.
        ``parallel=N`` fans the per-design sweeps across N supervised
        worker processes (:mod:`repro.orchestrate`); because the
        runtime spawns the identical child per job index, the parallel
        dataset is bitwise-identical to the serial one.
        """
        if parallel and parallel > 0:
            from ..orchestrate import JobSpec, RuntimeConfig, run_jobs

            jobs = [
                JobSpec(
                    key=spec.name,
                    fn="repro.train.dataset:_design_samples_job",
                    args=(spec, config),
                )
                for spec in specs
            ]
            report = run_jobs(
                jobs,
                RuntimeConfig(
                    workers=int(parallel), seed=config.seed,
                    deadline=3600.0, max_attempts=2,
                ),
            )
            if not report.complete:
                failed = [o.key for o in report.outcomes if o.status != "done"]
                raise RuntimeError(
                    f"dataset generation failed for design(s) {failed}; "
                    "see the run's orchestration incidents"
                )
            per_design = [outcome.result for outcome in report.outcomes]
        else:
            children = np.random.SeedSequence(config.seed).spawn(len(specs))
            per_design = [
                generate_samples(spec, config, seed_seq=child)
                for spec, child in zip(specs, children)
            ]

        dataset = cls()
        for samples in per_design:
            n_eval = max(1, int(round(config.eval_fraction * len(samples))))
            eval_part = samples[:n_eval]
            train_part = samples[n_eval:]
            dataset.eval.extend(eval_part)
            for sample in train_part:
                dataset.train.append(sample)
                if config.augment:
                    for k in (1, 2, 3):
                        dataset.train.append(rotate_sample(sample, k))
        return dataset

    def class_frequencies(self, num_classes: int = 8) -> np.ndarray:
        """Level histogram of the training labels (for loss weighting)."""
        counts = np.zeros(num_classes, dtype=np.float32)
        for sample in self.train:
            counts += np.bincount(sample.labels.ravel(), minlength=num_classes)
        return counts

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ):
        """Yield shuffled ``(features, labels)`` batches for one epoch."""
        order = rng.permutation(len(self.train))
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            feats = np.stack([self.train[i].features for i in chunk])
            labels = np.stack([self.train[i].labels for i in chunk])
            yield feats, labels

    def eval_by_design(self) -> dict[str, list[Sample]]:
        """Evaluation samples grouped per design (Table I is per-design)."""
        grouped: dict[str, list[Sample]] = {}
        for sample in self.eval:
            grouped.setdefault(sample.design_name, []).append(sample)
        return grouped

    def split_by_design(
        self, holdout: set[str] | frozenset[str]
    ) -> tuple["CongestionDataset", "CongestionDataset"]:
        """Leave-designs-out split for generalization experiments.

        Returns ``(seen, unseen)``: ``seen`` keeps only samples of
        designs *not* in ``holdout`` (train + eval), while ``unseen``
        holds every sample of the held-out designs in its eval list.
        The paper trains and evaluates on the same ten designs; this
        split measures transfer to designs never seen in training.
        """
        seen = CongestionDataset(
            train=[s for s in self.train if s.design_name not in holdout],
            eval=[s for s in self.eval if s.design_name not in holdout],
        )
        unseen_eval = [
            s
            for s in self.train + self.eval
            if s.design_name in holdout and s.rotation == 0
        ]
        unseen = CongestionDataset(train=[], eval=unseen_eval)
        return seen, unseen
