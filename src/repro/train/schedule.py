"""Learning-rate schedules for the training loop.

The paper trains with a fixed Adam lr of 1e-3; cosine and step decay
are provided for the longer bench runs, where they measurably stabilize
the deeper models (PROS 2.0, the proposed model).
"""

from __future__ import annotations

import numpy as np

__all__ = ["lr_at_epoch", "SCHEDULES"]

SCHEDULES = ("constant", "cosine", "step")


def lr_at_epoch(
    base_lr: float,
    epoch: int,
    total_epochs: int,
    schedule: str = "constant",
    min_lr_fraction: float = 0.05,
    step_every: int = 20,
    step_gamma: float = 0.5,
) -> float:
    """Learning rate for ``epoch`` (0-based) under the given schedule.

    ``constant`` — the paper's setting.
    ``cosine``   — cosine decay from ``base_lr`` to
                   ``base_lr * min_lr_fraction`` over ``total_epochs``.
    ``step``     — multiply by ``step_gamma`` every ``step_every`` epochs.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; use one of {SCHEDULES}")
    if epoch < 0 or total_epochs <= 0:
        raise ValueError("epoch must be >= 0 and total_epochs > 0")
    if schedule == "constant":
        return base_lr
    if schedule == "cosine":
        floor = base_lr * min_lr_fraction
        progress = min(epoch / max(total_epochs - 1, 1), 1.0)
        return floor + 0.5 * (base_lr - floor) * (1 + np.cos(np.pi * progress))
    # step
    return base_lr * step_gamma ** (epoch // step_every)
