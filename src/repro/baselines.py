"""Shared baseline check/update machinery.

Every analysis package pins its deterministic output slice to a JSON
file under ``benchmarks/`` and diffs against it in CI.  Before this
module, each package (``ir``, ``adjoint``, ``perf``, ``schedule``,
``concheck``, ``scaling``) carried its own copy of the same three
moves; they now share one implementation:

* :func:`diff_entries` — keyed-record comparison driven by the
  *baseline's* fields, so an older baseline that pins fewer numbers
  still checks cleanly against a richer report.
* :func:`diff_counts` — per-key count comparison for ``by_code`` /
  ``effect_summary``-style dicts.
* :func:`load_baseline` / :func:`write_baseline` — read and atomically
  write (temp file + fsync + rename) the JSON documents, with
  :func:`write_baselines` renaming a whole set into place only after
  every document serialized, so ``repro check --update-baselines``
  never leaves a half-refreshed benchmarks directory.
"""

from __future__ import annotations

import json
import os
import sys

__all__ = [
    "diff_entries",
    "diff_counts",
    "load_baseline",
    "carry_sections",
    "write_baseline",
    "write_baselines",
    "apply_baseline_flags",
]


def _fmt_change(want, got) -> str:
    if isinstance(want, int) and isinstance(got, int) and not (
        isinstance(want, bool) or isinstance(got, bool)
    ):
        return f"{want} -> {got} ({got - want:+d})"
    return f"{want} -> {got}"


def diff_entries(
    expected: list[dict],
    current: list[dict],
    *,
    key: tuple[str, ...] = ("model", "preset", "grid"),
    verb: str = "analyzed",
    missing_field_hint: str | None = None,
) -> list[str]:
    """Diff keyed record lists; comparison fields come from the baseline.

    ``verb`` names the action that produced ``current`` ("analyzed",
    "checked", "planned", ...), preserving each package's established
    message wording.
    """

    def keyed(entries: list[dict]) -> dict[tuple, dict]:
        return {tuple(e[k] for k in key): e for e in entries}

    def name_of(k: tuple) -> str:
        parts = [str(v) for v in k]
        if key[-1] == "grid":
            parts[-1] = f"grid{parts[-1]}"
        return "/".join(parts)

    want_by_key = keyed(expected)
    got_by_key = keyed(current)
    problems: list[str] = []
    for k in sorted(set(want_by_key) | set(got_by_key)):
        name = name_of(k)
        if k not in got_by_key:
            problems.append(f"{name}: in baseline but not {verb}")
            continue
        if k not in want_by_key:
            problems.append(
                f"{name}: {verb} but missing from baseline "
                "(run with --update-baseline)"
            )
            continue
        for field in want_by_key[k]:
            if field in key:
                continue
            if field not in got_by_key[k]:
                hint = f" ({missing_field_hint})" if missing_field_hint else ""
                problems.append(
                    f"{name}: baseline pins {field!r} but the report has no "
                    f"such field{hint}"
                )
                continue
            got, want = got_by_key[k][field], want_by_key[k][field]
            if got != want:
                problems.append(
                    f"{name}: {field} changed {_fmt_change(want, got)}"
                )
    return problems


def diff_counts(
    expected: dict, current: dict, *, label: str = "{key} count changed"
) -> list[str]:
    """Diff count dicts; missing keys count as zero."""
    problems = []
    for k in sorted(set(expected) | set(current)):
        got, want = current.get(k, 0), expected.get(k, 0)
        if got != want:
            problems.append(
                f"{label.format(key=k)} {want} -> {got} ({got - want:+d})"
            )
    return problems


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _serialize(doc: dict) -> str:
    # Matches the historical CLI write format (json.dump + "\n") so
    # refreshing an unchanged baseline is a byte-level no-op.
    return json.dumps(doc, indent=2) + "\n"


def carry_sections(path: str, doc: dict, carry: tuple[str, ...]) -> dict:
    """Fold documented ride-along sections of an existing baseline into ``doc``.

    Some baselines carry sections the checker ignores but humans curate
    (perf's ``"fixes"`` before/after measurements); refreshing the
    deterministic slice must not destroy them.
    """
    if not carry or not os.path.exists(path):
        return doc
    try:
        old = load_baseline(path)
    except (OSError, ValueError):
        return doc
    merged = dict(doc)
    for section in carry:
        if section in old and section not in merged:
            merged[section] = old[section]
    return merged


def write_baseline(path: str, doc: dict, *, carry: tuple[str, ...] = ()) -> None:
    """Write one baseline durably: temp file, fsync, rename into place."""
    doc = carry_sections(path, doc, carry)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(_serialize(doc))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def write_baselines(docs: dict[str, dict]) -> None:
    """Atomically refresh a set of baselines: all serialize, then all land.

    Serialization (and therefore any failure in producing a document)
    happens before the first rename, so a crash mid-update can only
    leave temp files behind, never a mix of old and new baselines.
    """
    tmps = {}
    try:
        for path, doc in docs.items():
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                fh.write(_serialize(doc))
                fh.flush()
                os.fsync(fh.fileno())
            tmps[path] = tmp
    except BaseException:
        for tmp in tmps.values():
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise
    for path, tmp in tmps.items():
        os.replace(tmp, path)


def apply_baseline_flags(
    args,
    reduced: dict,
    differ,
    *,
    out=None,
    err=None,
    carry: tuple[str, ...] = (),
) -> bool:
    """Handle ``--update-baseline`` / ``--check-baseline`` uniformly.

    ``reduced`` is the package's deterministic slice; ``differ`` maps a
    loaded baseline document to a list of drift messages.  Returns True
    when drift was found (the caller maps that to its drift exit code).
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    drift = False
    if getattr(args, "update_baseline", None):
        write_baseline(args.update_baseline, reduced, carry=carry)
        print(f"baseline written: {args.update_baseline}", file=out)
    if getattr(args, "check_baseline", None):
        problems = differ(load_baseline(args.check_baseline))
        if problems:
            for problem in problems:
                print(f"baseline drift: {problem}", file=err)
            drift = True
        else:
            print(f"baseline OK ({args.check_baseline})", file=out)
    return drift
