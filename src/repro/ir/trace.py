"""Symbolic tracing: run a real ``Module.forward`` into a :class:`Graph`.

The tracer does not reimplement any layer.  It wraps
:class:`~repro.ir.symbolic.SymbolicArray` payloads in ordinary
:class:`~repro.nn.tensor.Tensor` objects and calls the module's own
``forward``, so the traced graph is — by construction — the exact
sequence of numpy operations the model executes at runtime, with real
shape arithmetic but no data.

Tracing conventions:

* The model is forced into ``eval()`` mode for the duration of the
  trace (and restored after).  The training-mode BatchNorm path updates
  running statistics in place, which has no meaning for a symbolic
  value; eval mode is also what the deployment-oriented analyses
  (memory planner, cost model) should describe.
* Gradients are disabled (``no_grad``), so no tape is recorded.
* Parameters and buffers are registered eagerly as ``param``/``buffer``
  nodes.  Any other concrete array the forward touches becomes a
  ``const`` node, deduplicated by underlying buffer.  Parameter value
  ranges are unbounded (they change during training); buffer and const
  ranges use the concrete values seen at trace time.
* Every emitted node records the innermost enclosing module (``scope``,
  a dotted path such as ``MFATransformerNet.dec2.block.conv1``) and the
  source line that executed the op (``src``), which is what lets
  analysis findings share ``# noqa`` suppression with :mod:`repro.lint`.
"""

from __future__ import annotations

import math
import os
import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.nn.module import Module, _set_call_hook
from repro.nn.tensor import (
    Tensor,
    _get_tape_hook,
    _register_abstract_array_type,
    _set_tape_hook,
    get_default_dtype,
    no_grad,
)

from .graph import Graph
from .symbolic import SymbolicArray, TraceError

__all__ = ["TapeEntry", "TraceSession", "trace", "trace_model", "trace_tape"]

_register_abstract_array_type(SymbolicArray)

UNBOUNDED = (-math.inf, math.inf)

# Frames from these directories are tracer/numpy machinery, not user
# code; call-site attribution skips past them.
_IR_DIR = os.path.dirname(os.path.abspath(__file__))
_SKIP_MARKERS = (_IR_DIR, os.sep + "numpy" + os.sep)


class TraceSession:
    """Mutable state for one trace: the graph plus attribution context.

    ``concrete_params`` switches parameter value ranges from the default
    unbounded interval (parameters move during training) to the concrete
    min/max of the values seen at trace time.  The rounding-error
    certifier (:mod:`repro.numcheck`) needs finite magnitudes through
    the whole graph, and its certificates are explicitly "at these
    weights", so the concrete interval is the sound choice there.
    """

    def __init__(self, *, concrete_params: bool = False) -> None:
        self.concrete_params = concrete_params
        self.graph = Graph()
        # Stack of (dotted name, unique call serial): the serial makes
        # each module *invocation* distinct, so lifetime analysis does
        # not merge repeated calls to the same module.
        self._scope: list[tuple[str, int]] = []
        self._serial = 0
        self._names: dict[int, str] = {}
        # id(buffer) -> (node, array).  Holding the array reference
        # pins its id() so the cache can never alias a freed temporary.
        self._consts: dict[int, tuple[Any, np.ndarray]] = {}
        self._scalars: dict[tuple[str, float], Any] = {}

    # -- module registration ---------------------------------------------------

    def register_module(self, module: Module, name: str = "") -> None:
        """Pre-register parameters/buffers and build the scope-name map."""
        root = name or type(module).__name__
        self._names[id(module)] = root
        for child_name, child in module._modules.items():
            self.register_module(child, f"{root}.{child_name}")
        if name:  # children are handled by the recursive calls above
            return
        for pname, param in module.named_parameters(prefix=f"{root}."):
            self._register_array(param.data, kind="param", name=pname)
        for bname, buf in module.named_buffers(prefix=f"{root}."):
            self._register_array(buf, kind="buffer", name=bname)

    def _register_array(self, array: np.ndarray, *, kind: str, name: str = ""):
        root = array
        while root.base is not None:
            root = root.base
        cached = self._consts.get(id(root))
        if cached is not None:
            return cached[0]
        if kind == "param" and not self.concrete_params:
            vrange = UNBOUNDED  # parameters move during training
        elif root.size == 0:
            vrange = (0.0, 0.0)
        else:
            vrange = (float(root.min()), float(root.max()))
        node = self.graph.add(
            kind,
            (),
            root.shape,
            root.dtype,
            bytes=root.nbytes,
            kind=kind,
            name=name,
            scope=self.current_scope(),
            src=self.call_site() if kind == "const" else "",
            meta={"vrange": vrange},
        )
        self._consts[id(root)] = (node, root)
        return node

    # -- symbolic-session protocol (used by SymbolicArray) ---------------------

    def const_node(self, value):
        """Node for a concrete operand: scalar, const array, param or buffer."""
        if isinstance(value, (bool, int, float)):  # includes numpy scalars
            key = (type(value).__name__, float(value))
            node = self._scalars.get(key)
            if node is None:
                arr = np.asarray(value)
                v = float(value)
                node = self.graph.add(
                    "const", (), (), arr.dtype, bytes=arr.nbytes, kind="const",
                    name=repr(value),
                    meta={
                        "vrange": (v, v),
                        # Exact python scalars promote "weakly" (NEP 50):
                        # they never widen an array dtype.  numpy scalars do.
                        "weak": type(value) in (bool, int, float),
                    },
                )
                self._scalars[key] = node
            return node
        return self._register_array(np.asarray(value), kind="const")

    def current_scope(self) -> str:
        return self._scope[-1][0] if self._scope else ""

    def scope_instance(self) -> tuple[int, int]:
        """(unique id of the innermost module call, nesting depth)."""
        if not self._scope:
            return (0, 0)
        return (self._scope[-1][1], len(self._scope))

    def call_site(self) -> str:
        """``path:line`` of the innermost non-tracer, non-numpy frame."""
        frame = sys._getframe(1)
        while frame is not None:
            filename = frame.f_code.co_filename
            if not any(marker in filename for marker in _SKIP_MARKERS):
                return f"{filename}:{frame.f_lineno}"
            frame = frame.f_back
        return ""

    def _hook(self, event: str, module: Module) -> None:
        if event == "enter":
            self._serial += 1
            name = self._names.get(id(module), type(module).__name__)
            self._scope.append((name, self._serial))
        else:
            self._scope.pop()


@dataclass(frozen=True)
class TapeEntry:
    """One recorded autograd op: the raw material of the adjoint graph.

    ``out``/``parents`` are node ids into the primal :class:`Graph`;
    ``captured`` lists every graph buffer the backward closure holds in
    its cells (the activations the tape *retains* until that closure
    runs — exactly what forward+backward memory planning needs).
    ``src`` is the ``path:line`` of the ``def backward`` that will
    produce this entry's adjoints, so findings anchor to the vjp's own
    source (and honour ``# noqa`` there).
    """

    index: int
    out: int
    op: str
    src: str
    parents: tuple[int, ...]
    parent_requires_grad: tuple[bool, ...]
    captured: tuple[int, ...]


def _op_of(backward) -> str:
    """Vjp attribution: ``Tensor.__add__.<locals>.backward`` -> ``__add__``."""
    qual = backward.__qualname__.split(".<locals>")[0]
    return qual.split(".")[-1]


def _flatten_outputs(out) -> list[Tensor]:
    if isinstance(out, Tensor):
        return [out]
    if isinstance(out, (tuple, list)):
        flat: list[Tensor] = []
        for item in out:
            flat.extend(_flatten_outputs(item))
        return flat
    raise TraceError(f"unsupported forward output type {type(out).__name__}")


def trace(
    module: Module,
    *input_shapes,
    dtype=None,
    input_vrange: tuple[float, float] = UNBOUNDED,
    name: str = "",
    concrete_params: bool = False,
) -> Graph:
    """Trace ``module.forward`` over symbolic inputs of the given shapes.

    Parameters
    ----------
    module:
        Any :class:`repro.nn.Module`.
    input_shapes:
        One shape tuple per positional forward argument.
    dtype:
        Input dtype; defaults to the substrate default dtype.
    input_vrange:
        Assumed value interval for the inputs.  The registry models
        consume normalized feature maps, so analyses pass a finite
        interval to get meaningful stability verdicts; the default is
        conservative (unbounded).
    concrete_params:
        Use the concrete min/max of each parameter as its value
        interval instead of the unbounded default (see
        :class:`TraceSession`).
    """
    if not input_shapes:
        raise ValueError("trace() needs at least one input shape")
    dtype = np.dtype(dtype if dtype is not None else get_default_dtype())
    sess = TraceSession(concrete_params=concrete_params)
    sess.graph.meta.update(
        {
            "model": name or type(module).__name__,
            "input_shapes": [tuple(int(d) for d in s) for s in input_shapes],
            "dtype": dtype.name,
        }
    )
    sess.register_module(module)

    was_training = [(m, m.training) for m in module.modules()]
    module.eval()
    _set_call_hook(sess._hook)
    try:
        with no_grad():
            args = []
            for i, shape in enumerate(input_shapes):
                node = sess.graph.add(
                    "input", (), tuple(shape), dtype,
                    bytes=int(np.prod(shape, dtype=object)) * dtype.itemsize,
                    kind="input", name=f"input{i}",
                    meta={"vrange": input_vrange},
                )
                args.append(Tensor(SymbolicArray(sess, node.id, shape, dtype)))
            out = module(*args)
    finally:
        _set_call_hook(None)
        for mod, mode in was_training:
            mod.training = mode

    for tensor in _flatten_outputs(out):
        payload = tensor.data
        if not isinstance(payload, SymbolicArray):
            raise TraceError(
                "forward returned a concrete array; symbolic inputs never "
                "reached this output"
            )
        sess.graph.outputs.append(payload.node_id)
    return sess.graph


def trace_tape(
    module: Module,
    *input_shapes,
    dtype=None,
    input_vrange: tuple[float, float] = UNBOUNDED,
    name: str = "",
    input_requires_grad: bool = False,
    concrete_params: bool = False,
) -> tuple[Graph, list[TapeEntry]]:
    """Trace a *grad-enabled* forward, capturing the backward tape.

    Unlike :func:`trace` this runs with gradients on, so every op that
    wires the autograd graph also emits a :class:`TapeEntry` (in
    execution = topological order).  The module still runs in ``eval``
    mode — the training-mode BatchNorm path mutates running statistics
    in place, which a symbolic value cannot represent — and the forward
    graph is identical to the one :func:`trace` produces, so forward
    analyses and baselines stay comparable.

    Returns the primal graph and the tape; feed both to
    :func:`repro.adjoint.build_adjoint_graph` /
    :func:`repro.adjoint.plan_training_memory`.
    """
    if not input_shapes:
        raise ValueError("trace_tape() needs at least one input shape")
    dtype = np.dtype(dtype if dtype is not None else get_default_dtype())
    sess = TraceSession(concrete_params=concrete_params)
    sess.graph.meta.update(
        {
            "model": name or type(module).__name__,
            "input_shapes": [tuple(int(d) for d in s) for s in input_shapes],
            "dtype": dtype.name,
        }
    )
    sess.register_module(module)
    entries: list[TapeEntry] = []

    def resolve(payload) -> int | None:
        if isinstance(payload, Tensor):
            payload = payload.data
        if isinstance(payload, SymbolicArray):
            return payload.node_id
        if isinstance(payload, np.ndarray):
            # Concrete operands (params, buffers, coerced scalars) were
            # registered eagerly; _register_array dedupes by buffer.
            return sess._register_array(payload, kind="const").id
        return None

    prev_hook = _get_tape_hook()

    def tape_hook(event, out, parents, backward) -> None:
        if prev_hook is not None:
            prev_hook(event, out, parents, backward)
        if event != "record":
            return
        code = backward.__code__
        captured = []
        for cell in backward.__closure__ or ():
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                continue
            if isinstance(value, (Tensor, SymbolicArray, np.ndarray)):
                nid = resolve(value)
                if nid is not None:
                    captured.append(nid)
        entries.append(
            TapeEntry(
                index=len(entries),
                out=resolve(out.data),
                op=_op_of(backward),
                src=f"{code.co_filename}:{code.co_firstlineno}",
                parents=tuple(resolve(p) for p in parents),
                parent_requires_grad=tuple(p.requires_grad for p in parents),
                captured=tuple(dict.fromkeys(captured)),
            )
        )

    was_training = [(m, m.training) for m in module.modules()]
    module.eval()
    _set_call_hook(sess._hook)
    _set_tape_hook(tape_hook)
    try:
        args = []
        for i, shape in enumerate(input_shapes):
            node = sess.graph.add(
                "input", (), tuple(shape), dtype,
                bytes=int(np.prod(shape, dtype=object)) * dtype.itemsize,
                kind="input", name=f"input{i}",
                meta={"vrange": input_vrange},
            )
            args.append(
                Tensor(
                    SymbolicArray(sess, node.id, shape, dtype),
                    requires_grad=input_requires_grad,
                )
            )
        out = module(*args)
    finally:
        _set_tape_hook(prev_hook)
        _set_call_hook(None)
        for mod, mode in was_training:
            mod.training = mode

    for tensor in _flatten_outputs(out):
        payload = tensor.data
        if not isinstance(payload, SymbolicArray):
            raise TraceError(
                "forward returned a concrete array; symbolic inputs never "
                "reached this output"
            )
        sess.graph.outputs.append(payload.node_id)
    sess.graph.meta["tape_entries"] = len(entries)
    return sess.graph, entries


def trace_model(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    in_channels: int = 6,
    seed: int = 0,
    input_vrange: tuple[float, float] = (0.0, 1.0),
) -> Graph:
    """Build a registry model and trace one forward pass.

    The default input interval ``(0, 1)`` matches the normalized feature
    maps produced by :mod:`repro.data.features`.
    """
    from repro.models.registry import build_model

    model = build_model(
        model_name, preset=preset, grid=grid, seed=seed, in_channels=in_channels
    )
    graph = trace(
        model,
        (batch, in_channels, grid, grid),
        input_vrange=input_vrange,
        name=model_name,
    )
    graph.meta.update({"preset": preset, "grid": grid, "batch": batch})
    return graph
