"""Analysis driver and machine-readable report (schema ``repro.ir/v1``).

``analyze_model`` traces one registry model at one grid, runs every
registered graph pass plus the source-level determinism audit, and
assembles a single JSON-serializable report.  ``analyze_registry``
sweeps models × grids.  ``check_baseline`` diffs the invariant slice of
a report set (FLOPs, peak activation bytes, parameter/node counts)
against a checked-in baseline so CI catches silent cost regressions.

Severity model: stability (``REPRO101``–``103``) and determinism
(``REPRO104``/``105``) findings are *failures* — ``repro analyze``
exits non-zero and ``build_model(analyze=True)`` raises
:class:`AnalysisError`.  Dead/duplicate subgraphs (``REPRO106``/``107``)
are *opportunities* and never fail anything.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.lint.rules import LintDiagnostic

from .determinism import audit_determinism
from .graph import Graph
from .passes import OPPORTUNITY_RULES, collect_findings, filter_noqa, run_passes
from .trace import trace_model

__all__ = [
    "SCHEMA",
    "AnalysisError",
    "analyze_graph",
    "analyze_model",
    "analyze_registry",
    "baseline_from_reports",
    "check_baseline",
    "serialize_finding",
]

SCHEMA = "repro.ir/v1"

_REPO_ROOT = Path(__file__).resolve().parents[3]


class AnalysisError(RuntimeError):
    """Raised when static analysis finds stability/determinism hazards."""

    def __init__(self, findings: list[LintDiagnostic]):
        self.findings = findings
        lines = "\n".join(f"  {f}" for f in findings)
        super().__init__(
            f"static analysis found {len(findings)} blocking finding(s):\n{lines}"
        )


def _rel(path: str) -> str:
    try:
        return os.path.relpath(path, _REPO_ROOT)
    except ValueError:  # different drive (windows); keep as-is
        return path


def serialize_finding(finding: LintDiagnostic) -> dict:
    return {
        "path": _rel(finding.path),
        "line": finding.line,
        "col": finding.col,
        "code": finding.code,
        "message": finding.message,
    }


def analyze_graph(graph: Graph, *, determinism: bool = True) -> dict:
    """Run all graph passes (and optionally the source audit) on ``graph``."""
    results = run_passes(graph)
    audit = audit_determinism() if determinism else {"audited_files": 0, "findings": []}
    audit["findings"] = filter_noqa(audit["findings"])

    failures = collect_findings(results) + [
        f for f in audit["findings"] if f.code not in OPPORTUNITY_RULES
    ]
    opportunities = [
        f
        for f in collect_findings(results, include_opportunities=True)
        if f.code in OPPORTUNITY_RULES
    ]

    return {
        "schema": SCHEMA,
        "model": graph.meta.get("model", ""),
        "preset": graph.meta.get("preset", ""),
        "grid": graph.meta.get("grid", 0),
        "batch": graph.meta.get("batch", 1),
        "dtype": graph.meta.get("dtype", ""),
        "graph": {
            "nodes": len(graph),
            "counts": graph.counts(),
            "output_shapes": [list(graph[i].shape) for i in graph.outputs],
        },
        "memory": results["memory"],
        "cost": results["cost"],
        "stability": {"findings": [serialize_finding(f) for f in results["stability"]["findings"]]},
        "determinism": {
            "audited_files": audit["audited_files"],
            "findings": [serialize_finding(f) for f in audit["findings"]],
        },
        "opportunities": {
            "dead": {k: v for k, v in results["dead"].items() if k != "findings"},
            "duplicates": {k: v for k, v in results["cse"].items() if k != "findings"},
            "findings": [serialize_finding(f) for f in opportunities],
        },
        "failures": [str(f) for f in failures],
    }


def analyze_model(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    determinism: bool = True,
    backward: bool = False,
) -> dict:
    """Trace + analyze one registry model; returns a ``repro.ir/v1`` report.

    With ``backward=True`` the report grows a ``"backward"`` section from
    :mod:`repro.adjoint`: tape/adjoint-graph statistics, gradient-flow
    findings (REPRO205–207, blocking ones join ``"failures"``) and the
    forward+backward training-memory plan.
    """
    graph = trace_model(model_name, preset=preset, grid=grid, batch=batch)
    report = analyze_graph(graph, determinism=determinism)
    if backward:
        # Function-level import: repro.adjoint builds on repro.ir.
        from repro.adjoint.report import backward_section

        report["backward"] = backward_section(
            model_name, preset=preset, grid=grid, batch=batch
        )
        report["failures"].extend(report["backward"]["failures"])
    return report


def analyze_registry(
    models: tuple[str, ...] | None = None,
    *,
    preset: str = "fast",
    grids: tuple[int, ...] = (64,),
    determinism: bool = True,
    backward: bool = False,
) -> dict:
    """Sweep models × grids.  The source audit runs once (it is per-repo)."""
    from repro.models.registry import MODEL_NAMES

    models = models or MODEL_NAMES
    reports = []
    for i, name in enumerate(models):
        for j, grid in enumerate(grids):
            reports.append(
                analyze_model(
                    name,
                    preset=preset,
                    grid=grid,
                    determinism=determinism and i == 0 and j == 0,
                    backward=backward,
                )
            )
    return {"schema": SCHEMA, "reports": reports}


# -- baseline diffing ----------------------------------------------------------


def baseline_from_reports(bundle: dict) -> dict:
    """Reduce a report bundle to the invariant slice CI checks.

    Reports carrying a ``"backward"`` section (``analyze --backward``)
    contribute the backward invariants too — tape length, adjoint node
    count and the planned training peak.
    """
    entries = []
    for report in bundle["reports"]:
        entry = {
            "model": report["model"],
            "preset": report["preset"],
            "grid": report["grid"],
            "total_flops": report["cost"]["total_flops"],
            "param_count": report["cost"]["param_count"],
            "peak_bytes": report["memory"]["peak_bytes"],
            "nodes": report["graph"]["nodes"],
        }
        if "backward" in report:
            back = report["backward"]
            entry.update(
                {
                    "tape_entries": back["tape_entries"],
                    "adjoint_nodes": back["adjoint_nodes"],
                    "train_peak_bytes": back["memory"]["train_peak_bytes"],
                    "grad_bytes_total": back["memory"]["grad_bytes_total"],
                }
            )
        entries.append(entry)
    return {"schema": SCHEMA, "entries": entries}


def check_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Exact-match diff of the invariant slice; returns mismatch messages.

    The comparison is driven by the *baseline's* fields, so one checker
    serves both the forward slice (``benchmarks/ir_baseline.json``) and
    the forward+backward slice (``benchmarks/adjoint_baseline.json``) —
    a baseline only pins the numbers it records.
    """
    from repro.baselines import diff_entries

    return diff_entries(
        baseline.get("entries", []),
        baseline_from_reports(bundle)["entries"],
        verb="analyzed",
        missing_field_hint="re-run with --backward?",
    )
