"""FLOP / byte cost model with per-layer and per-stage rollups.

FLOP counts are attached to nodes at trace time by the symbolic rules
(2·m·k·n for matmul, 2·∏extents for einsum contractions, output size
for elementwise ops, input size for reductions); this pass aggregates
them into a machine-readable summary:

* ``by_op`` — totals per primitive (einsum, matmul, exp, ...).
* ``by_stage`` — totals per top-level submodule (``down1``, ``pam``,
  ``transformer``, ...), the granularity Fig. 5 of the paper reports.
* ``by_layer`` — totals per innermost module scope, heaviest first.
"""

from __future__ import annotations

from .graph import Graph
from .passes import register_pass

__all__ = ["cost_model"]


def _stage_of(scope: str) -> str:
    parts = scope.split(".")
    return parts[1] if len(parts) > 1 else "(root)"


def cost_model(graph: Graph, top_layers: int = 10) -> dict:
    by_op: dict[str, dict] = {}
    by_stage: dict[str, dict] = {}
    by_layer: dict[str, dict] = {}
    total_flops = 0
    activation_bytes = 0

    for node in graph:
        if node.kind != "op":
            continue
        total_flops += node.flops
        activation_bytes += node.bytes
        for table, key in (
            (by_op, node.op),
            (by_stage, _stage_of(node.scope)),
            (by_layer, node.scope or "(root)"),
        ):
            row = table.setdefault(key, {"flops": 0, "bytes": 0, "nodes": 0})
            row["flops"] += node.flops
            row["bytes"] += node.bytes
            row["nodes"] += 1

    out_pixels = 0
    for out in graph.outputs:
        shape = graph[out].shape
        if len(shape) >= 2:
            out_pixels += int(shape[-1]) * int(shape[-2])

    def _ranked(table: dict[str, dict], limit: int | None = None) -> list[dict]:
        rows = [{"name": k, **v} for k, v in table.items()]
        rows.sort(key=lambda r: -r["flops"])
        return rows[:limit] if limit else rows

    return {
        "total_flops": total_flops,
        "activation_bytes": activation_bytes,
        "param_bytes": graph.param_bytes(),
        "param_count": sum(n.size for n in graph if n.kind == "param"),
        "flops_per_output_pixel": (total_flops // out_pixels) if out_pixels else 0,
        "by_op": _ranked(by_op),
        "by_stage": _ranked(by_stage),
        "by_layer": _ranked(by_layer, top_layers),
    }


@register_pass("cost")
def _cost_pass(graph: Graph) -> dict:
    return cost_model(graph)
