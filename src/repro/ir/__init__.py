"""Symbolic tensor IR and static analysis passes for :mod:`repro.nn`.

The third leg of the correctness tooling (after :mod:`repro.lint`'s AST
rules and runtime sanitizers): run any model's *own* ``forward`` over
data-free symbolic tensors to obtain a typed SSA graph
(:mod:`repro.ir.graph`), then analyze it statically —

* :mod:`repro.ir.memory` — liveness/peak activation-memory planner;
* :mod:`repro.ir.cost` — FLOP/byte cost model with stage/layer rollups;
* :mod:`repro.ir.stability` — interval-domain numerical-stability
  checks (REPRO101–103);
* :mod:`repro.ir.determinism` — unseeded-RNG / iteration-order audit of
  the training+placement call-graph (REPRO104–105);
* :mod:`repro.ir.dedup` — dead and duplicate subgraph detection
  (REPRO106–107, reported as optimization opportunities).

Entry points: ``repro analyze <model|all> --grid N --json`` on the
command line, ``build_model(name, analyze=True)`` in code, and
:func:`analyze_model` / :func:`analyze_registry` for programmatic use.
Findings share the diagnostic format, rule-code namespace and ``# noqa``
suppression of :mod:`repro.lint`.
"""

from .determinism import audit_determinism
from .graph import Graph, Node
from .memory import plan_memory
from .cost import cost_model
from .dedup import find_dead, find_duplicates
from .passes import (
    IR_RULES,
    OPPORTUNITY_RULES,
    collect_findings,
    register_pass,
    registered_passes,
    run_passes,
)
from .report import (
    SCHEMA,
    AnalysisError,
    analyze_graph,
    analyze_model,
    analyze_registry,
    baseline_from_reports,
    check_baseline,
)
from .stability import check_stability
from .symbolic import SymbolicArray, TraceError
from .trace import TapeEntry, TraceSession, trace, trace_model, trace_tape

__all__ = [
    "Graph",
    "Node",
    "SymbolicArray",
    "TapeEntry",
    "TraceError",
    "TraceSession",
    "trace",
    "trace_model",
    "trace_tape",
    "IR_RULES",
    "OPPORTUNITY_RULES",
    "register_pass",
    "registered_passes",
    "run_passes",
    "collect_findings",
    "plan_memory",
    "cost_model",
    "check_stability",
    "audit_determinism",
    "find_dead",
    "find_duplicates",
    "SCHEMA",
    "AnalysisError",
    "analyze_graph",
    "analyze_model",
    "analyze_registry",
    "baseline_from_reports",
    "check_baseline",
]
