"""Typed SSA-style tensor IR.

A :class:`Graph` is the result of symbolically tracing a
:class:`repro.nn.Module` forward pass (see :mod:`repro.ir.trace`): a
flat, topologically-ordered list of :class:`Node` records, one per
tensor-producing operation, with static shapes, dtypes, FLOP counts and
byte sizes — but no payload data.  Node ids are SSA values: every node
is defined exactly once, before any of its uses, so analysis passes can
do a single forward or backward sweep.

Aliasing is explicit: view-producing ops (reshape of a contiguous
array, transpose, slicing, ``broadcast_to``) carry ``alias_of`` pointing
at the node that owns the underlying buffer and report ``bytes == 0``;
the memory planner resolves views onto their buffers when computing
liveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = ["Node", "Graph"]

# Node kinds: "input" (caller-provided activation), "param" (trainable
# leaf), "buffer" (registered non-trainable state), "const" (any other
# concrete array touched by the forward), "op" (computed value).
KINDS = ("input", "param", "buffer", "const", "op")


@dataclass
class Node:
    """One SSA value: an operation and its statically-known result type."""

    id: int
    op: str
    inputs: tuple[int, ...]
    shape: tuple[int, ...]
    dtype: np.dtype
    flops: int = 0
    bytes: int = 0
    alias_of: int | None = None
    kind: str = "op"
    scope: str = ""
    src: str = ""
    name: str = ""
    # Structural attributes (axis, subscripts, pad widths, ...) — part of
    # the node's identity for CSE hashing, unlike the free-form analysis
    # annotations in ``meta`` (value ranges, pattern tags).
    attrs: tuple[tuple[str, Any], ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def vrange(self) -> tuple[float, float]:
        """Statically-inferred value interval ``(lo, hi)``."""
        return self.meta.get("vrange", (-np.inf, np.inf))

    def __str__(self) -> str:
        shape = "x".join(str(d) for d in self.shape) or "scalar"
        alias = f" (view of %{self.alias_of})" if self.alias_of is not None else ""
        return f"%{self.id} = {self.op}({', '.join(f'%{i}' for i in self.inputs)}) : {shape} {self.dtype}{alias}"


class Graph:
    """A traced program: nodes in SSA/topological order plus endpoints."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.nodes: list[Node] = []
        self.inputs: list[int] = []
        self.outputs: list[int] = []
        self.meta: dict[str, Any] = meta or {}

    # -- construction ---------------------------------------------------------

    def add(
        self,
        op: str,
        inputs: tuple[int, ...],
        shape: tuple[int, ...],
        dtype,
        *,
        flops: int = 0,
        bytes: int = 0,
        alias_of: int | None = None,
        kind: str = "op",
        scope: str = "",
        src: str = "",
        name: str = "",
        attrs: tuple[tuple[str, Any], ...] = (),
        meta: dict[str, Any] | None = None,
    ) -> Node:
        if kind not in KINDS:
            raise ValueError(f"unknown node kind {kind!r}")
        for i in inputs:
            if not 0 <= i < len(self.nodes):
                raise ValueError(
                    f"node input %{i} not yet defined (SSA order violated)"
                )
        node = Node(
            id=len(self.nodes),
            op=op,
            inputs=tuple(inputs),
            shape=tuple(int(d) for d in shape),
            dtype=np.dtype(dtype),
            flops=int(flops),
            bytes=int(bytes),
            alias_of=alias_of,
            kind=kind,
            scope=scope,
            src=src,
            name=name,
            attrs=attrs,
            meta=meta if meta is not None else {},
        )
        self.nodes.append(node)
        if kind == "input":
            self.inputs.append(node.id)
        return node

    # -- traversal ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def buffer_of(self, node_id: int) -> int:
        """Resolve a (possibly aliased) node to its buffer-owning node."""
        node = self.nodes[node_id]
        while node.alias_of is not None:
            node = self.nodes[node.alias_of]
        return node.id

    def users(self) -> dict[int, list[int]]:
        """Map each node id to the ids of nodes consuming it directly."""
        out: dict[int, list[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for i in node.inputs:
                out[i].append(node.id)
        return out

    def live_through_end(self) -> set[int]:
        """Buffer ids that must stay resident when the trace finishes."""
        return {self.buffer_of(i) for i in self.outputs}

    # -- summaries ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def total_flops(self) -> int:
        return sum(n.flops for n in self.nodes)

    def param_bytes(self) -> int:
        return sum(n.bytes for n in self.nodes if n.kind == "param")

    def pretty(self, limit: int | None = None) -> str:
        """Human-readable listing, optionally truncated to ``limit`` rows."""
        rows = [str(n) for n in self.nodes[: limit or len(self.nodes)]]
        if limit is not None and len(self.nodes) > limit:
            rows.append(f"... ({len(self.nodes) - limit} more nodes)")
        rows.append(f"outputs: {', '.join(f'%{i}' for i in self.outputs)}")
        return "\n".join(rows)
