"""Numerical-stability passes over the value-interval domain.

Every node carries a conservatively-propagated value interval
(:mod:`repro.ir.symbolic`).  These checks walk the graph and flag the
places where the interval proves a hazard *reachable* — and, just as
importantly, stay silent where a stabilization pattern (max-shift
before ``exp``, ``eps`` added under a root, a clamped normalizer)
provably bounds the operand:

* ``REPRO101`` — ``exp`` whose input's upper bound exceeds
  ``log(float_max)`` for the node dtype.  A softmax written as
  ``exp(x) / sum(exp(x))`` trips this; the substrate's max-shifted
  softmax does not, because ``x - max(x)`` is known ≤ 0.
* ``REPRO102`` — ``log`` with an operand interval reaching ≤ 0,
  division with 0 inside the divisor interval, or a negative power with
  0 inside the base interval.  ``log(sum(exp(x - max(x))))`` is exempt:
  the sum is known ≥ 1.
* ``REPRO103`` — implicit float-widening promotion: a float array
  operand combined into a wider float result dtype.  Exact python
  scalars (weak promotion) and bool/int masks are not flagged.
"""

from __future__ import annotations

import math

import numpy as np

from .graph import Graph, Node
from .passes import node_finding, register_pass

__all__ = ["check_stability"]

_DIV_OPS = ("divide",)
_LOG_OPS = ("log",)


def _exp_limit(dtype: np.dtype) -> float:
    try:
        return float(np.log(np.finfo(dtype).max))
    except ValueError:
        # Non-float dtype: numpy's exp upcasts integers to float64, so
        # the float64 bound is the one the runtime actually enforces.
        return float(np.log(np.finfo(np.float64).max))


def _is_weak(node: Node) -> bool:
    return bool(node.meta.get("weak")) and node.kind == "const"


def check_stability(graph: Graph, *, pins: dict | None = None) -> dict:
    """Interval-domain stability findings for ``graph``.

    ``pins`` optionally maps node id -> dtype name, as produced by an
    :class:`repro.schedule.ExecutionPlan`'s ``node_pins``.  Overflow
    thresholds are then evaluated at the *pinned* dtype: a graph traced
    at float64 but scheduled to execute at float32 must be checked
    against the float32 exp-overflow bound (~88.7), not the float64 one
    (~709.8) — otherwise a value that only overflows after the REPRO301
    demotion certifies clean.
    """
    findings = []
    pins = pins or {}

    def pinned_dtype(node: Node) -> np.dtype:
        name = pins.get(node.id)
        return np.dtype(name) if name else node.dtype

    for node in graph:
        if node.kind != "op":
            continue
        ins = [graph[i] for i in node.inputs]

        if node.op == "exp":
            hi = ins[0].vrange[1]
            limit = _exp_limit(pinned_dtype(node))
            if hi > limit:
                bound = "unbounded" if math.isinf(hi) else f"<= {hi:.3g}"
                findings.append(
                    node_finding(
                        node,
                        "REPRO101",
                        f"exp() of a value {bound} overflows "
                        f"{pinned_dtype(node)} "
                        f"(limit ~{limit:.1f}); subtract the max first "
                        "(numerically stable softmax/log-sum-exp)",
                    )
                )

        elif node.op in _LOG_OPS:
            lo = ins[0].vrange[0]
            if lo < 0.0 or (lo == 0.0 and not _excludes_zero(ins[0])):
                findings.append(
                    node_finding(
                        node,
                        "REPRO102",
                        f"log() operand interval [{lo:.3g}, "
                        f"{ins[0].vrange[1]:.3g}] reaches <= 0; add an eps "
                        "floor or stabilize the summand",
                    )
                )

        elif node.op in _DIV_OPS and len(ins) == 2:
            lo, hi = ins[1].vrange
            if lo <= 0.0 <= hi and not _excludes_zero(ins[1]):
                findings.append(
                    node_finding(
                        node,
                        "REPRO102",
                        f"divisor interval [{lo:.3g}, {hi:.3g}] contains 0; "
                        "clamp with eps before dividing",
                    )
                )

        elif node.op == "power" and len(ins) == 2:
            exp_lo, exp_hi = ins[1].vrange
            base_lo, base_hi = ins[0].vrange
            if exp_hi < 0.0 and base_lo <= 0.0 <= base_hi:
                findings.append(
                    node_finding(
                        node,
                        "REPRO102",
                        f"negative power of an interval [{base_lo:.3g}, "
                        f"{base_hi:.3g}] containing 0 diverges; add eps to "
                        "the base",
                    )
                )

        # REPRO103: implicit float widening.  Casts inserted explicitly
        # (op == "cast") are visible and intentional; flag only silent
        # promotion inside arithmetic.
        if node.op != "cast" and node.dtype.kind == "f":
            for src in ins:
                if (
                    src.dtype.kind == "f"
                    and src.dtype.itemsize < node.dtype.itemsize
                    and src.shape  # scalars promote weakly / harmlessly
                    and not _is_weak(src)
                ):
                    findings.append(
                        node_finding(
                            node,
                            "REPRO103",
                            f"{src.dtype} operand silently promoted to "
                            f"{node.dtype}; cast explicitly to keep the "
                            "compute dtype intentional",
                        )
                    )
                    break

    return {"findings": findings}


def _excludes_zero(node: Node) -> bool:
    """Whether a structural pattern proves the value is bounded away from 0.

    The interval domain cannot always carry a strict bound (e.g. the
    stabilized softmax denominator has lo exactly 1.0, which is fine and
    handled by the plain interval check); this hook exists for patterns
    whose *interval* includes 0 but whose structure excludes it.
    Currently: none needed — kept as the single extension point.
    """
    return False


@register_pass("stability")
def _stability_pass(graph: Graph) -> dict:
    return check_stability(graph)
