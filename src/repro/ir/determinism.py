"""Determinism audit: unseeded randomness and order-sensitive iteration.

A reproduction lives or dies by bit-for-bit repeatability, and the two
classic ways to lose it never crash:

* ``REPRO104`` — randomness without an explicit seed: calling
  ``np.random.default_rng()`` with no seed, any use of the legacy
  global ``np.random.*`` API (its state is process-global and shared),
  or the stdlib ``random`` module's global functions.  The fixed
  convention in this codebase is ``np.random.default_rng(seed)``
  threaded explicitly (see ``train.seed``/``placement``).
* ``REPRO105`` — iterating an unordered collection where the order can
  reach numeric results: ``for … in <set>``, iterating
  ``set(...)``/``frozenset(...)``/set unions, or ``os.listdir`` not
  wrapped in ``sorted()`` (directory order is filesystem-dependent).

This is an AST audit over the placement/training call-graph (not the
traced tensor graph — the traced forward is deterministic by
construction once dropout is off).  Findings use the shared lint
diagnostic format and honour ``# noqa``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.rules import LintDiagnostic, _noqa_lines

__all__ = ["audit_determinism", "audit_file", "DEFAULT_AUDIT_PACKAGES"]

# Packages audited by default, relative to the repro package root:
# everything whose results feed training, placement or the contest
# tables, where hidden nondeterminism corrupts results silently.  The
# worker-reachable closure additionally gets the call-graph-deep
# REPRO604-606 variants from repro.concheck.
DEFAULT_AUDIT_PACKAGES = (
    "placement", "train", "data", "models", "nn", "eval",
    "netlist", "routing", "contest", "features", "arch", "orchestrate",
    "resilience",
)

_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "seed", "get_state", "set_state",
}
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "uniform", "gauss", "choice",
    "choices", "shuffle", "sample", "seed",
}


def _dotted(node: ast.AST) -> str:
    """``np.random.default_rng`` -> "np.random.default_rng" (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Auditor(ast.NodeVisitor):
    def __init__(self, path: str, suppressed: dict) -> None:
        self.path = path
        self.suppressed = suppressed
        self.findings: list[LintDiagnostic] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.suppressed.get(line, ())
        if codes is None or (codes and code in codes):
            return
        self.findings.append(
            LintDiagnostic(self.path, line, getattr(node, "col_offset", 0), code, message)
        )

    # -- REPRO104 --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name.endswith("default_rng") and not node.args and not node.keywords:
            self._report(
                node,
                "REPRO104",
                "default_rng() without a seed draws from OS entropy; pass an "
                "explicit seed so runs are repeatable",
            )
        elif name.startswith(("np.random.", "numpy.random.")):
            tail = name.rsplit(".", 1)[-1]
            if tail in _LEGACY_NP_RANDOM:
                self._report(
                    node,
                    "REPRO104",
                    f"legacy global np.random.{tail}() shares process-wide "
                    "state; use an explicitly seeded np.random.default_rng "
                    "Generator",
                )
        elif name.startswith("random.") and name.split(".")[1] in _STDLIB_RANDOM:
            self._report(
                node,
                "REPRO104",
                f"stdlib {name}() uses the global random state; use a seeded "
                "np.random.default_rng Generator",
            )
        self.generic_visit(node)

    # -- REPRO105 --------------------------------------------------------------

    def _order_hazard(self, iter_node: ast.AST) -> str | None:
        if isinstance(iter_node, ast.Set) or isinstance(iter_node, ast.SetComp):
            return "a set literal"
        if isinstance(iter_node, ast.Call):
            name = _dotted(iter_node.func)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            if name.endswith(("os.listdir", "listdir")) and name.count(".") <= 1:
                return "os.listdir(...) (filesystem order)"
            if name.endswith((".union", ".intersection", ".difference",
                              ".symmetric_difference")):
                return f"{name.rsplit('.', 1)[-1]}(...) of sets"
        if isinstance(iter_node, ast.BinOp) and isinstance(
            iter_node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            left = self._order_hazard(iter_node.left)
            right = self._order_hazard(iter_node.right)
            if left or right:
                return "a set expression"
        return None

    def visit_For(self, node: ast.For) -> None:
        hazard = self._order_hazard(node.iter)
        if hazard:
            self._report(
                node,
                "REPRO105",
                f"iteration over {hazard} has no defined order; wrap in "
                "sorted(...) before results depend on it",
            )
        self.generic_visit(node)

    def visit_comprehension_iter(self, comp: ast.comprehension) -> None:
        hazard = self._order_hazard(comp.iter)
        if hazard:
            self._report(
                comp.iter,
                "REPRO105",
                f"comprehension over {hazard} has no defined order; wrap in "
                "sorted(...)",
            )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for comp in node.generators:
            self.visit_comprehension_iter(comp)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        for comp in node.generators:
            self.visit_comprehension_iter(comp)
        self.generic_visit(node)


def audit_file(path: str | Path) -> list[LintDiagnostic]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                str(path), exc.lineno or 0, exc.offset or 0, "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    auditor = _Auditor(str(path), _noqa_lines(source))
    auditor.visit(tree)
    return auditor.findings


def audit_determinism(paths: list[str | Path] | None = None) -> dict:
    """Audit python files (default: the training/placement packages)."""
    if paths is None:
        package_root = Path(__file__).resolve().parents[1]
        paths = [
            package_root / sub
            for sub in DEFAULT_AUDIT_PACKAGES
            if (package_root / sub).is_dir()
        ]
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    findings: list[LintDiagnostic] = []
    for f in files:
        findings.extend(audit_file(f))
    findings.sort(key=lambda d: (d.path, d.line, d.col))
    return {"audited_files": len(files), "findings": findings}
