"""Liveness analysis and activation-memory planning.

Computes, from the traced graph alone, how many bytes of activation
memory a forward pass needs: each materialized op node allocates its
buffer at definition and frees it after its last use.  Aliases (views)
are resolved onto the buffer they borrow, extending its live range
instead of allocating.

Two refinements make the estimate match the numpy runtime closely:

* **Scope-extended lifetimes.**  The substrate's functional ops bind
  intermediates (padded inputs, im2col columns) to Python locals that
  only die when the enclosing layer call returns, not at their last
  use.  A buffer born inside a (non-root) module call therefore lives
  at least until the last node of that same call.  Root-level buffers
  use plain last-use liveness — the model's ``forward`` rebinds its
  locals as it goes.
* **Outputs live to the end**, as do graph inputs (the caller holds
  them).

Parameter/buffer/const bytes are reported separately as persistent
memory — they exist before and after the forward.
"""

from __future__ import annotations

from .graph import Graph
from .passes import register_pass

__all__ = ["plan_memory"]


def plan_memory(graph: Graph, top_k: int = 5) -> dict:
    """Simulate allocation over the trace; return peak and live ranges."""
    n = len(graph)
    end = n  # sentinel "after the last node"

    # Last node of each module-call instance (for scope-extended frees).
    scope_end: dict[int, int] = {}
    for node in graph:
        sid = node.meta.get("scope_id", 0)
        scope_end[sid] = node.id

    born: dict[int, int] = {}
    size: dict[int, int] = {}
    dies: dict[int, int] = {}
    for node in graph:
        if node.kind == "op" and node.bytes > 0:
            born[node.id] = node.id
            size[node.id] = node.bytes
            dies[node.id] = node.id  # provisional: free after definition
        # Any use of a value — view or not — keeps its underlying buffer
        # alive; nodes are visited in order so this is monotone.  A use
        # inside a (non-root) module call additionally pins the buffer
        # until that call returns: forward methods hold their argument
        # and local references to the end, they do not free at last use.
        extend = (
            scope_end.get(node.meta.get("scope_id", 0), node.id)
            if node.meta.get("scope_depth", 0) >= 2
            else node.id
        )
        for input_id in node.inputs:
            buf = graph.buffer_of(input_id)
            if buf in dies:
                dies[buf] = max(dies[buf], extend)

    # The same holds for where a buffer is born: the creating call keeps
    # its locals alive until it returns.
    for buf in born:
        node = graph[buf]
        if node.meta.get("scope_depth", 0) >= 2:
            dies[buf] = max(dies[buf], scope_end.get(node.meta["scope_id"], dies[buf]))

    # Outputs (and anything they alias) survive the whole program.
    for out in graph.live_through_end():
        if out in dies:
            dies[out] = end

    input_bytes = sum(graph[i].bytes for i in graph.inputs)
    persistent = sum(
        node.bytes for node in graph if node.kind in ("param", "buffer", "const")
    )

    frees: dict[int, list[int]] = {}
    for buf, at in dies.items():
        frees.setdefault(at, []).append(buf)

    live = 0
    peak = 0
    peak_at = None
    for node in graph:
        if node.id in born:
            live += size[node.id]
        # Transient scratch (e.g. the GEMM-layout copies inside an
        # optimized einsum) exists only while this node executes.
        transient = node.meta.get("workspace_bytes", 0)
        if node.id in born and live + transient > peak:
            peak, peak_at = live + transient, node.id
        for buf in frees.get(node.id, ()):
            live -= size[buf]

    ranges = sorted(
        (
            {
                "node": buf,
                "op": graph[buf].op,
                "scope": graph[buf].scope,
                "src": graph[buf].src,
                "bytes": size[buf],
                "born": born[buf],
                "dies": dies[buf] if dies[buf] != end else None,
            }
            for buf in born
        ),
        key=lambda r: -r["bytes"],
    )

    return {
        "peak_bytes": peak,
        "peak_node": peak_at,
        "activation_bytes_total": sum(size.values()),
        "activation_buffers": len(born),
        "input_bytes": input_bytes,
        "persistent_bytes": persistent,
        "top_liveranges": ranges[:top_k],
    }


@register_pass("memory")
def _memory_pass(graph: Graph) -> dict:
    return plan_memory(graph)
