"""Dead-code and duplicate-subgraph (CSE) detection.

Both analyses feed the *optimization-opportunity* section of the
report — they describe wasted work, not bugs, so their findings
(``REPRO106``/``REPRO107``) never fail a build or the CI gate.

* **Dead subgraphs**: op nodes from which no graph output is reachable.
  The canonical source in this codebase is work done purely for the
  training backward (e.g. ``probs = np.exp(out_data)`` inside
  ``log_softmax``), which is wasted in inference.
* **Duplicate subgraphs**: structurally identical op trees (same op,
  attributes, dtype, shape, and recursively identical operands rooted
  at the same leaves) computed more than once.  Each extra copy is a
  common-subexpression-elimination opportunity worth its FLOPs/bytes.
"""

from __future__ import annotations

from .graph import Graph
from .passes import node_finding, register_pass

__all__ = ["find_dead", "find_duplicates"]

_MAX_REPORTED = 10


def find_dead(graph: Graph) -> dict:
    users = graph.users()
    reachable: set[int] = set()
    stack = [graph.buffer_of(i) for i in graph.outputs] + list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in reachable:
            continue
        reachable.add(nid)
        node = graph[nid]
        stack.extend(node.inputs)
        if node.alias_of is not None:
            stack.append(node.alias_of)

    dead = [n for n in graph if n.kind == "op" and n.id not in reachable]
    # Tips: dead nodes nothing consumes — each is the root of one wasted
    # computation chain and gets one finding.
    tips = [n for n in dead if not users[n.id]]
    findings = [
        node_finding(
            tip,
            "REPRO106",
            f"result is never used by any output ({tip.flops} flops, "
            f"{tip.bytes} bytes); if it only feeds the training backward, "
            "compute it lazily there",
        )
        for tip in tips[:_MAX_REPORTED]
    ]
    return {
        "dead_nodes": len(dead),
        "dead_flops": sum(n.flops for n in dead),
        "dead_bytes": sum(n.bytes for n in dead),
        "chains": len(tips),
        "findings": findings,
    }


def find_duplicates(graph: Graph) -> dict:
    # Structural hashing with interning: every distinct subtree gets a
    # small integer id, so keys stay shallow (op + operand ids) instead
    # of recursively embedding whole subtrees.  Leaves are identified by
    # node id — two params are never "the same value".
    interned: dict[tuple, int] = {}
    keys: dict[int, int] = {}
    groups: dict[int, list[int]] = {}
    for node in graph:
        if node.kind != "op":
            keys[node.id] = -node.id - 1  # distinct from interned ids
            continue
        key = (
            node.op,
            node.attrs,
            node.dtype.str,
            node.shape,
            tuple(keys[i] for i in node.inputs),
        )
        gid = interned.setdefault(key, len(interned))
        keys[node.id] = gid
        groups.setdefault(gid, []).append(node.id)

    duplicate_groups = [
        ids
        for key, ids in groups.items()
        if len(ids) > 1
        and (graph[ids[0]].flops > 0 or graph[ids[0]].bytes > 0)
    ]
    duplicate_groups.sort(
        key=lambda ids: -(len(ids) - 1) * (graph[ids[0]].flops + graph[ids[0]].bytes)
    )

    findings = []
    wasted_flops = 0
    wasted_bytes = 0
    for ids in duplicate_groups:
        first = graph[ids[0]]
        wasted_flops += (len(ids) - 1) * first.flops
        wasted_bytes += (len(ids) - 1) * first.bytes
        if len(findings) < _MAX_REPORTED:
            where = ", ".join(graph[i].scope or "<toplevel>" for i in ids[1:4])
            findings.append(
                node_finding(
                    graph[ids[-1]],
                    "REPRO107",
                    f"identical {first.op} computed {len(ids)}x (first at "
                    f"%{first.id} in {first.scope or '<toplevel>'}; repeats "
                    f"in {where}); cache the first result",
                )
            )

    return {
        "duplicate_groups": len(duplicate_groups),
        "wasted_flops": wasted_flops,
        "wasted_bytes": wasted_bytes,
        "findings": findings,
    }


@register_pass("dead")
def _dead_pass(graph: Graph) -> dict:
    return find_dead(graph)


@register_pass("cse")
def _cse_pass(graph: Graph) -> dict:
    return find_duplicates(graph)
