"""Symbolic (shape/dtype/interval-only) arrays for tracing forwards.

A :class:`SymbolicArray` stands in for ``numpy.ndarray`` inside a
:class:`~repro.nn.tensor.Tensor` during tracing: it carries a shape, a
dtype and a conservative value interval, but **no data**.  Every
operation applied to one — ufuncs via ``__array_ufunc__``, functions
like ``np.pad``/``np.einsum``/``np.concatenate`` via
``__array_function__``, and ndarray methods (``reshape``, ``sum``,
``max``, slicing) implemented directly — appends a typed
:class:`~repro.ir.graph.Node` to the active trace and returns a new
symbolic array, so running a model's real ``forward`` code produces the
program graph instead of activations.

Three design points worth knowing:

* **Aliasing is modelled.**  Views (transpose, contiguous reshape,
  slicing, ``broadcast_to``) produce zero-byte alias nodes; reshaping a
  non-contiguous array materializes a copy, exactly as numpy does.
  This is what makes the memory planner's peak match reality.
* **Value intervals** propagate through every op (interval arithmetic,
  conservatively widened to ``(-inf, inf)`` when unclear), which is what
  the numerical-stability passes consume.
* **Stabilization patterns** are recognized structurally: ``x - max(x,
  axis, keepdims=True)`` tags its result as max-shifted (so ``exp`` of
  it is bounded by 1), and summing those exps over the shifted axes is
  known to be ≥ 1 — the canonical softmax/log-sum-exp stabilization —
  so the stability pass flags only genuinely unguarded sites.

Attempting to *read* data (``float()``, ``bool()``, ``np.asarray``)
raises :class:`TraceError`: symbolic tracing cannot follow
data-dependent control flow, by construction.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

__all__ = ["SymbolicArray", "TraceError"]

INF = math.inf


class TraceError(RuntimeError):
    """An operation the symbolic tracer cannot represent."""


# -- interval arithmetic -------------------------------------------------------
# All helpers are conservative: any indeterminate form (inf - inf,
# 0 * inf, ...) widens to the unbounded interval.

UNBOUNDED = (-INF, INF)


def _clean(lo: float, hi: float) -> tuple[float, float]:
    if math.isnan(lo):
        lo = -INF
    if math.isnan(hi):
        hi = INF
    return (float(lo), float(hi))


def _rng_add(a, b):
    return _clean(a[0] + b[0], a[1] + b[1])


def _rng_sub(a, b):
    return _clean(a[0] - b[1], a[1] - b[0])


def _rng_neg(a):
    return (-a[1], -a[0])


def _rng_mul(a, b):
    cands = []
    for x in a:
        for y in b:
            v = x * y
            if math.isnan(v):  # 0 * inf — the product can be anything
                return UNBOUNDED
            cands.append(v)
    return (min(cands), max(cands))


def _rng_div(a, b):
    if b[0] <= 0.0 <= b[1]:
        return UNBOUNDED
    return _rng_mul(a, (1.0 / b[1], 1.0 / b[0]))


def _rng_abs(a):
    hi = max(abs(a[0]), abs(a[1]))
    lo = 0.0 if a[0] <= 0.0 <= a[1] else min(abs(a[0]), abs(a[1]))
    return (lo, hi)


def _rng_exp(a):
    with np.errstate(over="ignore"):
        return (float(np.exp(a[0])), float(np.exp(a[1])))


def _rng_log(a):
    lo = -INF if a[0] <= 0 else math.log(a[0])
    hi = -INF if a[1] <= 0 else math.log(a[1])
    return (lo, hi)


def _rng_sqrt(a):
    return (math.sqrt(max(a[0], 0.0)), math.sqrt(max(a[1], 0.0)))


def _rng_tanh(a):
    return (float(np.tanh(a[0])), float(np.tanh(a[1])))


def _rng_pow(a, b):
    bases = list(a) + ([0.0] if a[0] < 0.0 < a[1] else [])
    with np.errstate(all="ignore"):
        cands = [float(np.power(x, e)) for x in bases for e in b]
    if any(math.isnan(c) for c in cands):
        return UNBOUNDED
    return (min(cands), max(cands))


def _rng_union(a, b):
    return (min(a[0], b[0]), max(a[1], b[1]))


def _rng_contract(a, b):
    """Range for matmul/einsum-style contractions: only sign survives."""
    if a[0] >= 0 and b[0] >= 0:
        return (0.0, INF)
    return UNBOUNDED


def _rng_scale_widen(a, m: float):
    """Scatter-style range: up to ``m`` summed contributions, or none."""
    lo, hi = _rng_mul(a, (0.0, float(m)))
    return (min(lo, 0.0), max(hi, 0.0))


# -- operand coercion ----------------------------------------------------------


def _operands(sess, values):
    """Split op operands into (input node ids, dtype args, vranges)."""
    ids: list[int] = []
    dtype_args: list[Any] = []
    vranges: list[tuple[float, float]] = []
    for v in values:
        if isinstance(v, SymbolicArray):
            ids.append(v.node_id)
            dtype_args.append(v.dtype)
            vranges.append(v.vrange)
        elif isinstance(v, (bool, int, float)):
            ids.append(sess.const_node(v).id)
            dtype_args.append(v)  # weak (value-based) promotion
            vranges.append((float(v), float(v)))
        else:
            arr = np.asarray(v)
            node = sess.const_node(arr)
            ids.append(node.id)
            dtype_args.append(arr.dtype)
            vranges.append(node.vrange)
    return ids, dtype_args, vranges


def _session_of(values) -> "Any":
    for v in values:
        if isinstance(v, SymbolicArray):
            return v.sess
    raise TraceError("no symbolic operand found")  # pragma: no cover


def _shape_of(v) -> tuple[int, ...]:
    if isinstance(v, SymbolicArray):
        return v.shape
    if isinstance(v, (bool, int, float)):
        return ()
    return np.asarray(v).shape


def _resolve_shape(shape, size: int) -> tuple[int, ...]:
    shape = tuple(int(d) for d in shape)
    if -1 in shape:
        known = int(np.prod([d for d in shape if d != -1]))
        if shape.count(-1) > 1 or known == 0 or size % known:
            raise TraceError(f"cannot reshape size {size} into {shape}")
        shape = tuple(size // known if d == -1 else d for d in shape)
    total = int(np.prod(shape)) if shape else 1
    if total != size:
        raise TraceError(f"cannot reshape size {size} into {shape}")
    return shape


def _norm_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    axes = axis if isinstance(axis, tuple) else (axis,)
    return tuple(sorted(a % ndim for a in axes))


class SymbolicArray:
    """An ndarray stand-in holding only shape, dtype and a value interval."""

    __slots__ = ("sess", "node_id", "shape", "dtype", "contiguous")

    def __init__(self, sess, node_id: int, shape, dtype, contiguous: bool = True):
        self.sess = sess
        self.node_id = node_id
        self.shape = tuple(int(d) for d in shape)
        self.dtype = np.dtype(dtype)
        self.contiguous = contiguous

    # -- introspection ---------------------------------------------------------

    @property
    def node(self):
        return self.sess.graph[self.node_id]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def vrange(self) -> tuple[float, float]:
        return self.node.vrange

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolicArray(%{self.node_id}, shape={self.shape}, dtype={self.dtype})"

    # -- materialization guards ------------------------------------------------

    def _no_data(self, what: str):
        raise TraceError(
            f"cannot {what} a symbolic array: tracing is shape-only and "
            "cannot follow data-dependent control flow"
        )

    def __array__(self, dtype=None, copy=None):
        self._no_data("materialize")

    def __bool__(self):
        self._no_data("truth-test")

    def __float__(self):
        self._no_data("convert to float")

    def __int__(self):
        self._no_data("convert to int")

    def item(self):
        self._no_data("read a scalar from")

    # -- node construction -----------------------------------------------------

    def _emit(
        self,
        op: str,
        operands,
        shape,
        dtype,
        *,
        flops: int = 0,
        alias_of: int | None = None,
        contiguous: bool = True,
        attrs: tuple[tuple[str, Any], ...] = (),
        vrange: tuple[float, float] = UNBOUNDED,
        meta: dict | None = None,
    ) -> "SymbolicArray":
        sess = self.sess
        ids, _, _ = _operands(sess, operands)
        shape = tuple(int(d) for d in shape)
        dtype = np.dtype(dtype)
        nbytes = 0 if alias_of is not None else int(np.prod(shape or (1,))) * dtype.itemsize
        scope_id, scope_depth = sess.scope_instance()
        full_meta = {
            "vrange": _clean(*vrange),
            "scope_id": scope_id,
            "scope_depth": scope_depth,
        }
        if meta:
            full_meta.update(meta)
        node = sess.graph.add(
            op,
            tuple(ids),
            shape,
            dtype,
            flops=flops,
            bytes=nbytes,
            alias_of=alias_of,
            scope=sess.current_scope(),
            src=sess.call_site(),
            attrs=attrs,
            meta=full_meta,
        )
        return SymbolicArray(sess, node.id, shape, dtype, contiguous)

    # -- ufunc protocol --------------------------------------------------------

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__":
            raise TraceError(
                f"ufunc method {ufunc.__name__}.{method} is not supported in tracing"
            )
        if kwargs.get("out") is not None:
            raise TraceError("out= is not supported on symbolic arrays")
        handler = _UFUNCS.get(ufunc)
        if handler is None:
            raise TraceError(
                f"ufunc {ufunc.__name__!r} has no symbolic rule; add one in "
                "repro.ir.symbolic"
            )
        return handler(_session_of(inputs), inputs)

    # -- function protocol -----------------------------------------------------

    def __array_function__(self, func, types, args, kwargs):
        handler = _FUNCS.get(func)
        if handler is None:
            raise TraceError(
                f"numpy function {func.__name__!r} has no symbolic rule; add "
                "one in repro.ir.symbolic"
            )
        return handler(*args, **kwargs)

    # -- arithmetic dunders (delegate to ufuncs so rules live in one place) ----

    def __add__(self, other):
        return np.add(self, other)

    def __radd__(self, other):
        return np.add(other, self)

    def __sub__(self, other):
        return np.subtract(self, other)

    def __rsub__(self, other):
        return np.subtract(other, self)

    def __mul__(self, other):
        return np.multiply(self, other)

    def __rmul__(self, other):
        return np.multiply(other, self)

    def __truediv__(self, other):
        return np.true_divide(self, other)

    def __rtruediv__(self, other):
        return np.true_divide(other, self)

    def __pow__(self, other):
        return np.power(self, other)

    def __neg__(self):
        return np.negative(self)

    def __matmul__(self, other):
        return np.matmul(self, other)

    def __rmatmul__(self, other):
        return np.matmul(other, self)

    def __gt__(self, other):
        return np.greater(self, other)

    def __ge__(self, other):
        return np.greater_equal(self, other)

    def __lt__(self, other):
        return np.less(self, other)

    def __le__(self, other):
        return np.less_equal(self, other)

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = _resolve_shape(shape, self.size)
        if self.contiguous:
            return self._emit(
                "reshape", (self,), shape, self.dtype,
                alias_of=self.sess.graph.buffer_of(self.node_id),
                attrs=(("shape", shape),), vrange=self.vrange,
            )
        # numpy must copy to reshape a non-contiguous array.
        return self._emit(
            "copy_reshape", (self,), shape, self.dtype,
            attrs=(("shape", shape),), vrange=self.vrange,
        )

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        axes = tuple(a % self.ndim for a in axes)
        shape = tuple(self.shape[a] for a in axes)
        return self._emit(
            "transpose", (self,), shape, self.dtype,
            alias_of=self.sess.graph.buffer_of(self.node_id), contiguous=False,
            attrs=(("axes", axes),), vrange=self.vrange,
        )

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def astype(self, dtype, copy: bool = True):
        dtype = np.dtype(dtype)
        if dtype == self.dtype and not copy:
            return self
        return self._emit(
            "cast", (self,), self.shape, dtype, flops=self.size,
            attrs=(("dtype", dtype.name),), vrange=self.vrange,
            meta={"cast_from": self.dtype.name},
        )

    def copy(self):
        return self._emit("copy", (self,), self.shape, self.dtype, vrange=self.vrange)

    def __getitem__(self, index):
        shape = _slice_shape(self.shape, index)
        return self._emit(
            "slice", (self,), shape, self.dtype,
            alias_of=self.sess.graph.buffer_of(self.node_id), contiguous=False,
            attrs=(("index", repr(index)),), vrange=self.vrange,
        )

    # -- reductions ------------------------------------------------------------

    def _reduce(self, op: str, axis, keepdims: bool, vrange, meta=None):
        axes = _norm_axes(axis, self.ndim)
        if keepdims:
            shape = tuple(1 if i in axes else d for i, d in enumerate(self.shape))
        else:
            shape = tuple(d for i, d in enumerate(self.shape) if i not in axes)
        return self._emit(
            op, (self,), shape, self.dtype, flops=self.size,
            attrs=(("axes", axes), ("keepdims", keepdims)),
            vrange=vrange, meta=meta,
        )

    def sum(self, axis=None, keepdims: bool = False, dtype=None):
        axes = _norm_axes(axis, self.ndim)
        count = int(np.prod([self.shape[a] for a in axes])) if axes else 1
        lo, hi = _rng_mul(self.vrange, (float(count), float(count)))
        # Stabilized log-sum-exp: along max-shifted axes one exp is
        # exactly 1 and the rest are non-negative, so the sum is >= 1.
        unit_axes = self.node.meta.get("unit_max_axes")
        if unit_axes is not None and set(axes) <= set(unit_axes):
            lo = max(lo, 1.0)
        return self._reduce("sum", axis, keepdims, (lo, hi))

    def mean(self, axis=None, keepdims: bool = False, dtype=None):
        return self._reduce("mean", axis, keepdims, self.vrange)

    def var(self, axis=None, keepdims: bool = False, ddof: int = 0):
        return self._reduce("var", axis, keepdims, (0.0, INF))

    def max(self, axis=None, keepdims: bool = False):
        meta = None
        if axis is not None and keepdims:
            meta = {"max_of": (self.node_id, _norm_axes(axis, self.ndim))}
        return self._reduce("max", axis, keepdims, self.vrange, meta=meta)

    def min(self, axis=None, keepdims: bool = False):
        return self._reduce("min", axis, keepdims, self.vrange)

    # -- repro.nn structured-op hooks ------------------------------------------

    def __symbolic_im2col__(self, kernel: int, stride: int):
        n, c, h, w = self.shape
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        cols = self._emit(
            "im2col", (self,), (n, c * kernel * kernel, out_h * out_w), self.dtype,
            attrs=(("kernel", kernel), ("stride", stride)), vrange=self.vrange,
        )
        return cols, out_h, out_w

    def __symbolic_col2im__(self, shape, kernel: int, stride: int):
        return self._emit(
            "col2im", (self,), shape, self.dtype, flops=self.size,
            attrs=(("kernel", kernel), ("stride", stride)),
            vrange=_rng_scale_widen(self.vrange, kernel * kernel),
        )


def _slice_shape(shape: tuple[int, ...], index) -> tuple[int, ...]:
    if not isinstance(index, tuple):
        index = (index,)
    if any(i is None or isinstance(i, (list, np.ndarray)) for i in index):
        raise TraceError("only basic (slice/int) indexing is supported in tracing")
    n_explicit = sum(1 for i in index if i is not Ellipsis)
    expanded: list[Any] = []
    for i in index:
        if i is Ellipsis:
            expanded.extend([slice(None)] * (len(shape) - n_explicit))
        else:
            expanded.append(i)
    expanded.extend([slice(None)] * (len(shape) - len(expanded)))
    out: list[int] = []
    for dim, idx in zip(shape, expanded):
        if isinstance(idx, int):
            if not -dim <= idx < dim:
                raise TraceError(f"index {idx} out of bounds for axis of size {dim}")
            continue  # integer indexing drops the axis
        out.append(len(range(*idx.indices(dim))))
    return tuple(out)


# -- ufunc rules ---------------------------------------------------------------


def _elementwise(op: str, rng_fn: Callable | None, *, boolean: bool = False):
    def handler(sess, inputs):
        _, dtype_args, vranges = _operands(sess, inputs)
        shape = np.broadcast_shapes(*(_shape_of(v) for v in inputs))
        dtype = np.dtype(bool) if boolean else np.result_type(*dtype_args)
        vrange = (0.0, 1.0) if boolean else rng_fn(*vranges)
        sym = next(v for v in inputs if isinstance(v, SymbolicArray))
        meta = None
        if op == "subtract":
            meta = _max_shift_meta(inputs)
            if meta:
                vrange = (vrange[0], min(vrange[1], 0.0))
        elif op == "exp":
            meta = _unit_max_meta(inputs)
        return sym._emit(
            op, inputs, shape, dtype,
            flops=int(np.prod(shape)) if shape else 1,
            vrange=vrange, meta=meta,
        )

    return handler


def _max_shift_meta(inputs):
    """Tag ``x - max(x, axis, keepdims=True)`` as a stabilization shift."""
    a, b = inputs
    if not (isinstance(a, SymbolicArray) and isinstance(b, SymbolicArray)):
        return None
    max_of = b.node.meta.get("max_of")
    if max_of is not None and max_of[0] == a.node_id:
        return {"max_shifted": max_of[1]}
    return None


def _unit_max_meta(inputs):
    """``exp`` of a max-shifted value attains exactly 1 along those axes."""
    (x,) = inputs
    if isinstance(x, SymbolicArray):
        shifted = x.node.meta.get("max_shifted")
        if shifted is not None and x.vrange[1] <= 0.0:
            return {"unit_max_axes": shifted}
    return None


def _matmul_handler(sess, inputs):
    a, b = inputs
    sa, sb = _shape_of(a), _shape_of(b)
    if len(sa) < 2 or len(sb) < 2:
        raise TraceError(f"matmul needs 2-d+ operands, got {sa} @ {sb}")
    if sa[-1] != sb[-2]:
        raise TraceError(f"matmul inner-dimension mismatch: {sa} @ {sb}")
    batch = np.broadcast_shapes(sa[:-2], sb[:-2])
    shape = batch + (sa[-2], sb[-1])
    _, dtype_args, vranges = _operands(sess, inputs)
    flops = 2 * int(np.prod(batch + (sa[-2], sa[-1], sb[-1]), dtype=object))
    sym = next(v for v in inputs if isinstance(v, SymbolicArray))
    return sym._emit(
        "matmul", inputs, shape, np.result_type(*dtype_args),
        flops=flops, vrange=_rng_contract(*vranges),
    )


_UFUNCS: dict[Any, Callable] = {
    np.add: _elementwise("add", _rng_add),
    np.subtract: _elementwise("subtract", _rng_sub),
    np.multiply: _elementwise("multiply", _rng_mul),
    np.true_divide: _elementwise("divide", _rng_div),
    np.negative: _elementwise("negative", _rng_neg),
    np.exp: _elementwise("exp", _rng_exp),
    np.log: _elementwise("log", _rng_log),
    np.sqrt: _elementwise("sqrt", _rng_sqrt),
    np.tanh: _elementwise("tanh", _rng_tanh),
    np.absolute: _elementwise("abs", _rng_abs),
    np.power: _elementwise("power", _rng_pow),
    np.maximum: _elementwise("maximum", lambda a, b: (max(a[0], b[0]), max(a[1], b[1]))),
    np.minimum: _elementwise("minimum", lambda a, b: (min(a[0], b[0]), min(a[1], b[1]))),
    np.greater: _elementwise("greater", None, boolean=True),
    np.greater_equal: _elementwise("greater_equal", None, boolean=True),
    np.less: _elementwise("less", None, boolean=True),
    np.less_equal: _elementwise("less_equal", None, boolean=True),
    np.matmul: _matmul_handler,
}


# -- numpy function rules ------------------------------------------------------


def _f_pad(array, pad_width, mode="constant", **kwargs):
    if mode != "constant":
        raise TraceError(f"np.pad mode {mode!r} is not supported in tracing")
    ndim = array.ndim
    if isinstance(pad_width, int):
        pads = ((pad_width, pad_width),) * ndim
    else:
        pads = tuple(
            (int(p[0]), int(p[1])) if not isinstance(p, int) else (p, p)
            for p in pad_width
        )
        if len(pads) == 1:
            pads = pads * ndim
    shape = tuple(d + a + b for d, (a, b) in zip(array.shape, pads))
    lo, hi = array.vrange
    return array._emit(
        "pad", (array,), shape, array.dtype,
        attrs=(("pads", pads),), vrange=(min(lo, 0.0), max(hi, 0.0)),
    )


def _parse_einsum(subscripts: str, operands) -> tuple[tuple[int, ...], int, dict]:
    subscripts = subscripts.replace(" ", "")
    if "..." in subscripts:
        raise TraceError("einsum ellipsis is not supported in tracing")
    if "->" not in subscripts:
        raise TraceError("einsum without explicit '->' is not supported in tracing")
    lhs, rhs = subscripts.split("->")
    terms = lhs.split(",")
    if len(terms) != len(operands):
        raise TraceError(
            f"einsum {subscripts!r} expects {len(terms)} operands, "
            f"got {len(operands)}"
        )
    extents: dict[str, int] = {}
    for term, op in zip(terms, operands):
        shape = _shape_of(op)
        if len(term) != len(shape):
            raise TraceError(
                f"einsum term {term!r} does not match operand of rank {len(shape)}"
            )
        for label, dim in zip(term, shape):
            if extents.setdefault(label, dim) != dim:
                raise TraceError(
                    f"einsum label {label!r} bound to both "
                    f"{extents[label]} and {dim}"
                )
    out_shape = tuple(extents[label] for label in rhs)
    volume = int(np.prod(list(extents.values()), dtype=object)) if extents else 1
    flops = (2 if len(terms) >= 2 else 1) * volume
    return out_shape, flops, extents


def _f_einsum(subscripts, *operands, **kwargs):
    if not isinstance(subscripts, str):
        raise TraceError("einsum interleaved-operand form is not supported")
    sess = _session_of(operands)
    shape, flops, _ = _parse_einsum(subscripts, operands)
    ids, dtype_args, vranges = _operands(sess, operands)
    vrange = UNBOUNDED
    if all(r[0] >= 0 for r in vranges):
        vrange = (0.0, INF)
    sym = next(o for o in operands if isinstance(o, SymbolicArray))
    # The optimized einsum path lowers to tensordot/GEMM, which copies
    # any operand whose axes are not already in matrix layout; rank-3+
    # operands are the ones that get transposed in practice.  The
    # memory planner accounts for this transient workspace.
    workspace = sum(
        _shape_bytes(_shape_of(op), d)
        for op, d in zip(operands, dtype_args)
        if len(_shape_of(op)) >= 3
    )
    return sym._emit(
        "einsum", operands, shape, np.result_type(*dtype_args),
        flops=flops, attrs=(("subscripts", subscripts),), vrange=vrange,
        meta={"workspace_bytes": int(workspace)},
    )


def _shape_bytes(shape, dtype_arg) -> int:
    itemsize = np.dtype(dtype_arg).itemsize if not np.isscalar(dtype_arg) else 8
    return int(np.prod(shape, dtype=object)) * itemsize if shape else itemsize


def _f_concatenate(arrays, axis=0, **kwargs):
    sess = _session_of(arrays)
    first = next(a for a in arrays if isinstance(a, SymbolicArray))
    ndim = first.ndim
    axis = axis % ndim
    shape = list(first.shape)
    shape[axis] = sum(_shape_of(a)[axis] for a in arrays)
    ids, dtype_args, vranges = _operands(sess, arrays)
    vrange = vranges[0]
    for r in vranges[1:]:
        vrange = _rng_union(vrange, r)
    return first._emit(
        "concatenate", tuple(arrays), tuple(shape), np.result_type(*dtype_args),
        attrs=(("axis", axis),), vrange=vrange,
    )


def _f_stack(arrays, axis=0, **kwargs):
    sess = _session_of(arrays)
    first = next(a for a in arrays if isinstance(a, SymbolicArray))
    axis = axis % (first.ndim + 1)
    shape = first.shape[:axis] + (len(list(arrays)),) + first.shape[axis:]
    ids, dtype_args, vranges = _operands(sess, arrays)
    vrange = vranges[0]
    for r in vranges[1:]:
        vrange = _rng_union(vrange, r)
    return first._emit(
        "stack", tuple(arrays), shape, np.result_type(*dtype_args),
        attrs=(("axis", axis),), vrange=vrange,
    )


def _f_repeat(a, repeats, axis=None):
    if axis is None or not isinstance(repeats, int):
        raise TraceError("np.repeat needs an integer count and explicit axis")
    axis = axis % a.ndim
    shape = tuple(d * repeats if i == axis else d for i, d in enumerate(a.shape))
    return a._emit(
        "repeat", (a,), shape, a.dtype,
        attrs=(("repeats", repeats), ("axis", axis)), vrange=a.vrange,
    )


def _f_broadcast_to(array, shape, **kwargs):
    return array._emit(
        "broadcast", (array,), tuple(shape), array.dtype,
        alias_of=array.sess.graph.buffer_of(array.node_id), contiguous=False,
        attrs=(("shape", tuple(shape)),), vrange=array.vrange,
    )


def _f_swapaxes(a, axis1, axis2):
    return a.swapaxes(axis1, axis2)


def _f_transpose(a, axes=None):
    return a.transpose(axes) if axes is not None else a.transpose()


def _f_reshape(a, shape, **kwargs):
    return a.reshape(shape)


def _f_squeeze(a, axis=None):
    if axis is None:
        shape = tuple(d for d in a.shape if d != 1)
    else:
        axes = _norm_axes(axis, a.ndim)
        for ax in axes:
            if a.shape[ax] != 1:
                raise TraceError(f"cannot squeeze axis {ax} of size {a.shape[ax]}")
        shape = tuple(d for i, d in enumerate(a.shape) if i not in axes)
    return a._emit(
        "squeeze", (a,), shape, a.dtype,
        alias_of=a.sess.graph.buffer_of(a.node_id), contiguous=a.contiguous,
        vrange=a.vrange,
    )


def _f_expand_dims(a, axis):
    axes = _norm_axes(axis, a.ndim + (1 if isinstance(axis, int) else len(axis)))
    shape = list(a.shape)
    for ax in axes:
        shape.insert(ax, 1)
    return a._emit(
        "expand_dims", (a,), tuple(shape), a.dtype,
        alias_of=a.sess.graph.buffer_of(a.node_id), contiguous=a.contiguous,
        vrange=a.vrange,
    )


def _f_where(condition, x=None, y=None):
    if x is None or y is None:
        raise TraceError("np.where without branches is not supported in tracing")
    sess = _session_of((condition, x, y))
    shape = np.broadcast_shapes(
        _shape_of(condition), _shape_of(x), _shape_of(y)
    )
    ids, dtype_args, vranges = _operands(sess, (condition, x, y))
    sym = next(v for v in (condition, x, y) if isinstance(v, SymbolicArray))
    return sym._emit(
        "where", (condition, x, y), shape, np.result_type(*dtype_args[1:]),
        flops=int(np.prod(shape)) if shape else 1,
        vrange=_rng_union(vranges[1], vranges[2]),
    )


def _f_sum(a, axis=None, keepdims=False, **kwargs):
    return a.sum(axis=axis, keepdims=keepdims)


def _f_mean(a, axis=None, keepdims=False, **kwargs):
    return a.mean(axis=axis, keepdims=keepdims)


def _f_var(a, axis=None, keepdims=False, **kwargs):
    return a.var(axis=axis, keepdims=keepdims)


def _f_amax(a, axis=None, keepdims=False, **kwargs):
    return a.max(axis=axis, keepdims=keepdims)


def _f_amin(a, axis=None, keepdims=False, **kwargs):
    return a.min(axis=axis, keepdims=keepdims)


_FUNCS: dict[Any, Callable] = {
    np.pad: _f_pad,
    np.einsum: _f_einsum,
    np.concatenate: _f_concatenate,
    np.stack: _f_stack,
    np.repeat: _f_repeat,
    np.broadcast_to: _f_broadcast_to,
    np.swapaxes: _f_swapaxes,
    np.transpose: _f_transpose,
    np.reshape: _f_reshape,
    np.squeeze: _f_squeeze,
    np.expand_dims: _f_expand_dims,
    np.where: _f_where,
    np.sum: _f_sum,
    np.mean: _f_mean,
    np.var: _f_var,
    np.amax: _f_amax,
    np.max: _f_amax,
    np.amin: _f_amin,
    np.min: _f_amin,
}
