"""Analysis-pass framework over the tensor IR.

A pass is a function ``pass_fn(graph) -> dict`` (a JSON-ready result)
registered under a short name with :func:`register_pass`.  Passes that
detect problems put a list of :class:`repro.lint.rules.LintDiagnostic`
under the ``"findings"`` key of their result; the framework reuses the
lint diagnostic format (``path:line:col: CODE message``) and the shared
``REPROxxx`` code namespace, and honours the same ``# noqa`` comment
suppression — a finding whose source line carries ``# noqa: REPRO101``
(or a bare ``# noqa``) is dropped.

Rule codes 1xx belong to the IR analyses (the AST lint rules own 0xx):

* ``REPRO101`` — ``exp`` reachable with an unbounded (or too large)
  positive input: overflow to ``inf``; the canonical fix is a
  max-shift, which the tracer recognizes structurally.
* ``REPRO102`` — ``log`` / division / negative power whose operand
  interval contains zero: ``-inf``/``nan`` reachable.
* ``REPRO103`` — implicit mixed-float promotion: a float array operand
  is silently widened by the op's result dtype.
* ``REPRO104`` — random numbers drawn from an unseeded or global
  generator (AST audit of the training/placement call-graph).
* ``REPRO105`` — iteration order of an unordered collection (set,
  ``os.listdir``) can leak into numeric results (AST audit).
* ``REPRO106`` — dead subgraph: computed during the forward but
  unreachable from any output (optimization opportunity, not an error).
* ``REPRO107`` — duplicate subgraph: structurally identical computation
  performed more than once (CSE opportunity, not an error).

Codes and messages are allocated centrally in :mod:`repro.diagnostics`;
``IR_RULES`` is the ir-component view and ``OPPORTUNITY_RULES`` the
non-blocking subset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.diagnostics import all_codes, codes_for
from repro.lint.rules import LintDiagnostic, _noqa_lines

from .graph import Graph, Node

__all__ = [
    "IR_RULES",
    "OPPORTUNITY_RULES",
    "register_pass",
    "run_passes",
    "registered_passes",
    "node_finding",
    "filter_noqa",
    "collect_findings",
]

IR_RULES = codes_for("ir")

# Codes that report *opportunities*: they appear in the report but are
# never treated as failures by ``repro analyze`` or ``build_model``.
OPPORTUNITY_RULES = tuple(
    code
    for code, spec in all_codes().items()
    if spec.component == "ir" and not spec.blocking
)

_PASSES: dict[str, Callable[[Graph], dict]] = {}


def register_pass(name: str):
    """Register an analysis pass under ``name`` (decorator)."""

    def decorator(fn: Callable[[Graph], dict]):
        if name in _PASSES:
            raise ValueError(f"pass {name!r} already registered")
        _PASSES[name] = fn
        return fn

    return decorator


def registered_passes() -> tuple[str, ...]:
    return tuple(_PASSES)


def run_passes(graph: Graph, names: tuple[str, ...] | None = None) -> dict[str, dict]:
    """Run the named passes (default: all registered) over ``graph``."""
    selected = names if names is not None else tuple(_PASSES)
    results: dict[str, dict] = {}
    for name in selected:
        if name not in _PASSES:
            raise KeyError(
                f"unknown pass {name!r}; registered: {', '.join(_PASSES)}"
            )
        result = _PASSES[name](graph)
        if "findings" in result:
            result["findings"] = filter_noqa(result["findings"])
        results[name] = result
    return results


def node_finding(node: Node, code: str, message: str) -> LintDiagnostic:
    """Build a lint-format diagnostic anchored at a graph node's call site."""
    path, line = "<traced>", 0
    if node.src:
        path, _, lineno = node.src.rpartition(":")
        if lineno.isdigit():
            line = int(lineno)
        else:
            path = node.src
    where = f" [%{node.id} {node.op} in {node.scope or '<toplevel>'}]"
    return LintDiagnostic(path, line, 0, code, message + where)


_NOQA_CACHE: dict[str, dict[int, set[str] | None]] = {}


def _suppressions(path: str) -> dict[int, set[str] | None]:
    if path not in _NOQA_CACHE:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            _NOQA_CACHE[path] = {}
        else:
            _NOQA_CACHE[path] = _noqa_lines(source)
    return _NOQA_CACHE[path]


def filter_noqa(findings: list[LintDiagnostic]) -> list[LintDiagnostic]:
    """Drop findings whose source line suppresses their code via # noqa."""
    kept = []
    for f in findings:
        codes = _suppressions(f.path).get(f.line, ())
        if codes is None or (codes and f.code in codes):
            continue
        kept.append(f)
    return kept


def collect_findings(
    results: dict[str, dict], *, include_opportunities: bool = False
) -> list[LintDiagnostic]:
    """All findings across pass results, most severe (non-opportunity) first."""
    findings: list[LintDiagnostic] = []
    for result in results.values():
        findings.extend(result.get("findings", ()))
    if not include_opportunities:
        findings = [f for f in findings if f.code not in OPPORTUNITY_RULES]
    return sorted(
        findings,
        key=lambda f: (f.code in OPPORTUNITY_RULES, f.code, f.path, f.line),
    )
