"""Rendering of congestion/feature maps without plotting dependencies."""

from .floorplan import SITE_GLYPHS, floorplan_ascii, floorplan_image
from .render import ascii_heatmap, level_colormap, to_grayscale, write_pgm, write_ppm

__all__ = [
    "ascii_heatmap",
    "to_grayscale",
    "level_colormap",
    "write_pgm",
    "write_ppm",
    "floorplan_ascii",
    "floorplan_image",
    "SITE_GLYPHS",
]
