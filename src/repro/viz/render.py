"""Dependency-free map rendering: ASCII heatmaps and PGM/PPM images.

The environment ships no plotting library, so congestion/feature maps
are rendered either as ASCII shades (for terminals and text artifacts)
or as binary PGM/PPM images (viewable by any image tool).  The color
ramp for congestion levels mimics the paper's Fig. 1: light yellow for
low levels darkening to red-brown for penalized levels.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["ascii_heatmap", "to_grayscale", "level_colormap", "write_pgm", "write_ppm"]

_SHADES = " .:-=+*#%@"

# Fig. 1-style ramp: levels 0-7 from near-white yellow to dark red.
_LEVEL_COLORS = np.array(
    [
        [255, 255, 224],
        [255, 240, 170],
        [255, 220, 120],
        [255, 190, 80],
        [250, 140, 50],
        [230, 90, 40],
        [190, 40, 30],
        [130, 10, 20],
    ],
    dtype=np.uint8,
)


def ascii_heatmap(data: np.ndarray, vmax: float | None = None) -> str:
    """Render a 2-D ``[x, y]`` map as ASCII shades, row 0 at the bottom."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D map, got shape {data.shape}")
    vmax = vmax if vmax is not None else max(float(data.max()), 1e-9)
    scaled = np.clip(data / vmax * (len(_SHADES) - 1), 0, len(_SHADES) - 1)
    chars = scaled.astype(int)
    rows = []
    for j in reversed(range(data.shape[1])):
        rows.append("".join(_SHADES[chars[i, j]] for i in range(data.shape[0])))
    return "\n".join(rows)


def to_grayscale(data: np.ndarray, vmax: float | None = None) -> np.ndarray:
    """Scale a 2-D map into uint8 grayscale (0 = black, 255 = white)."""
    data = np.asarray(data, dtype=np.float64)
    vmax = vmax if vmax is not None else max(float(data.max()), 1e-9)
    return np.clip(data / vmax * 255.0, 0, 255).astype(np.uint8)


def level_colormap(levels: np.ndarray) -> np.ndarray:
    """Map integer congestion levels (0-7) to RGB (Fig. 1 ramp).

    Returns an ``(H, W, 3)`` uint8 array in image orientation
    (row 0 at the top = highest y).
    """
    levels = np.asarray(levels)
    clipped = np.clip(levels.astype(np.int64), 0, 7)
    # [x, y] map -> image rows top-down.
    image = _LEVEL_COLORS[clipped.T[::-1]]
    return image


def write_pgm(data: np.ndarray, path: str | os.PathLike) -> str:
    """Write a 2-D ``[x, y]`` map as a binary PGM (P5) grayscale image."""
    gray = to_grayscale(data)
    image = gray.T[::-1]  # image orientation
    h, w = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return str(path)


def write_ppm(image: np.ndarray, path: str | os.PathLike) -> str:
    """Write an ``(H, W, 3)`` uint8 RGB array as a binary PPM (P6) image."""
    image = np.asarray(image, dtype=np.uint8)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB, got {image.shape}")
    h, w, _ = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return str(path)
