"""Device floorplan rendering: column types as ASCII or RGB.

UltraScale+-style devices are column-striped; seeing the CLB/DSP/BRAM/
URAM stripes makes macro-legalization and congestion artifacts much
easier to interpret.  ``floorplan_ascii`` prints one character per
column; ``floorplan_image`` produces an ``(H, W, 3)`` RGB array for
:func:`repro.viz.write_ppm`, optionally overlaying a placement.
"""

from __future__ import annotations

import numpy as np

from ..arch import FPGADevice, SiteType

__all__ = ["floorplan_ascii", "floorplan_image", "SITE_GLYPHS"]

SITE_GLYPHS = {
    SiteType.CLB: ".",
    SiteType.DSP: "D",
    SiteType.BRAM: "B",
    SiteType.URAM: "U",
    SiteType.IO: "I",
}

_SITE_COLORS = {
    SiteType.CLB: np.array([225, 225, 225], dtype=np.uint8),
    SiteType.DSP: np.array([90, 140, 255], dtype=np.uint8),
    SiteType.BRAM: np.array([90, 200, 120], dtype=np.uint8),
    SiteType.URAM: np.array([200, 120, 220], dtype=np.uint8),
    SiteType.IO: np.array([160, 160, 160], dtype=np.uint8),
}


def floorplan_ascii(device: FPGADevice, rows: int = 8) -> str:
    """ASCII stripe view: ``rows`` identical lines of column glyphs."""
    line = "".join(SITE_GLYPHS[t] for t in device.column_types)
    legend = "  ".join(
        f"{glyph}={site.value}" for site, glyph in SITE_GLYPHS.items()
    )
    return "\n".join([line] * rows + [legend])


def floorplan_image(
    device: FPGADevice,
    x: np.ndarray | None = None,
    y: np.ndarray | None = None,
    marker: np.ndarray | None = None,
) -> np.ndarray:
    """RGB floorplan, one pixel per site, optional instance overlay.

    ``x``/``y`` are instance coordinates in site units; ``marker`` is an
    optional boolean mask selecting which instances to draw (default:
    all).  Placed instances darken their site pixel.
    """
    width, height = device.num_cols, device.num_rows
    image = np.zeros((height, width, 3), dtype=np.uint8)
    for col, site_type in enumerate(device.column_types):
        image[:, col] = _SITE_COLORS[site_type]
    if x is not None and y is not None:
        x = np.asarray(x)
        y = np.asarray(y)
        if marker is None:
            marker = np.ones(x.shape[0], dtype=bool)
        sel_x = np.clip(x[marker].astype(np.int64), 0, width - 1)
        sel_y = np.clip(y[marker].astype(np.int64), 0, height - 1)
        # Image row 0 is the top (highest y).
        image[height - 1 - sel_y, sel_x] = (
            image[height - 1 - sel_y, sel_x] * 0.35
        ).astype(np.uint8)
    return image
